package server

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	stg "gosrb/internal/storage"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// zone is a two-server federation over one shared MCAT, as SRB 1.x
// deploys: srb1 owns disk1, srb2 owns disk2.
type zone struct {
	cat          *mcat.Catalog
	b1, b2       *core.Broker
	s1, s2       *Server
	addr1, addr2 string
	authn        *auth.Authenticator
	t            *testing.T
}

const zoneSecret = "npaci-zone-secret"

func newZone(t *testing.T, mode FederationMode) *zone {
	t.Helper()
	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.MkColl("/home", "admin")
	cat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(cat, "srb1")
	b2 := core.New(cat, "srb2")
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		t.Fatal(err)
	}

	// One authenticator for the zone: single sign-on.
	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	s1 := New(b1, authn, mode)
	s2 := New(b2, authn, mode)
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.AddPeer("srb2", addr2, zoneSecret)
	s2.AddPeer("srb1", addr1, zoneSecret)
	t.Cleanup(func() { s1.Close(); s2.Close() })
	return &zone{cat: cat, b1: b1, b2: b2, s1: s1, s2: s2, addr1: addr1, addr2: addr2, authn: authn, t: t}
}

func (z *zone) client(addr, user, pw string) *client.Client {
	z.t.Helper()
	cl, err := client.Dial(addr, user, pw)
	if err != nil {
		z.t.Fatal(err)
	}
	z.t.Cleanup(func() { cl.Close() })
	return cl
}

func TestLoginAndBasicOps(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	if cl.Server() != "srb1" {
		t.Errorf("server = %q", cl.Server())
	}
	if err := cl.Mkdir("/home/proj"); err != nil {
		t.Fatal(err)
	}
	o, err := cl.Put("/home/proj/f.txt", []byte("over the wire"), client.PutOpts{
		Resource: "disk1",
		Meta:     []types.AVU{{Name: "k", Value: "v"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Size != 13 || o.Owner != "alice" {
		t.Errorf("put result = %+v", o)
	}
	data, err := cl.Get("/home/proj/f.txt")
	if err != nil || string(data) != "over the wire" {
		t.Errorf("get = %q, %v", data, err)
	}
	stats, err := cl.List("/home/proj")
	if err != nil || len(stats) != 1 {
		t.Errorf("list = %+v, %v", stats, err)
	}
	avus, err := cl.GetMeta("/home/proj/f.txt", types.MetaUser)
	if err != nil || len(avus) != 1 || avus[0].Value != "v" {
		t.Errorf("meta = %+v, %v", avus, err)
	}
	hits, err := cl.Query(mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "k", Op: "=", Value: "v"}}})
	if err != nil || len(hits) != 1 {
		t.Errorf("query = %+v, %v", hits, err)
	}
	names, err := cl.QueryAttrNames("/home")
	if err != nil || len(names) != 1 {
		t.Errorf("attr names = %v, %v", names, err)
	}
	// Error mapping across the wire.
	if _, err := cl.Get("/home/missing"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing get error = %v", err)
	}
	st, err := cl.ServerStats()
	if err != nil || st.Server != "srb1" || st.Objects != 1 {
		t.Errorf("stats = %+v, %v", st, err)
	}
}

func TestBadPasswordRejected(t *testing.T) {
	z := newZone(t, Proxy)
	if _, err := client.Dial(z.addr1, "alice", "wrong"); !errors.Is(err, types.ErrAuth) {
		t.Errorf("bad login = %v", err)
	}
	if _, err := client.Dial(z.addr1, "ghost", "x"); !errors.Is(err, types.ErrAuth) {
		t.Errorf("unknown user = %v", err)
	}
}

func TestFederationProxy(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	// Ingest onto disk2 (owned by srb2) while connected to srb1: the
	// request proxies to the owning server.
	o, err := cl.Put("/home/remote.dat", []byte("stored at caltech"), client.PutOpts{Resource: "disk2"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Replicas[0].Resource != "disk2" {
		t.Errorf("replica = %+v", o.Replicas)
	}
	// The bytes really live on srb2's driver.
	d2, err := z.b2.Driver("disk2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Stat(o.Replicas[0].PhysicalPath); err != nil {
		t.Errorf("bytes not on disk2: %v", err)
	}
	// Reading back through srb1 proxies from srb2 (location
	// transparency, §3.1): the client stays connected to srb1.
	data, err := cl.Get("/home/remote.dat")
	if err != nil || string(data) != "stored at caltech" {
		t.Errorf("proxied get = %q, %v", data, err)
	}
	if cl.Server() != "srb1" {
		t.Errorf("proxy mode must not move the client: %q", cl.Server())
	}
}

func TestFederationRedirect(t *testing.T) {
	z := newZone(t, Redirect)
	// Seed via a direct connection to srb2.
	cl2 := z.client(z.addr2, "alice", "alicepw")
	if _, err := cl2.Put("/home/r.dat", []byte("redirect me"), client.PutOpts{Resource: "disk2"}); err != nil {
		t.Fatal(err)
	}
	// Connect to srb1 and fetch: the server issues a redirect, the
	// client transparently reconnects to srb2 and retries.
	cl1 := z.client(z.addr1, "alice", "alicepw")
	data, err := cl1.Get("/home/r.dat")
	if err != nil || string(data) != "redirect me" {
		t.Fatalf("redirected get = %q, %v", data, err)
	}
	if cl1.Server() != "srb2" {
		t.Errorf("client should now be on srb2: %q", cl1.Server())
	}
}

func TestFailoverAcrossServers(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl.Put("/home/ha.dat", []byte("replicated"), client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Replicate("/home/ha.dat", "disk2"); err != nil {
		t.Fatal(err)
	}
	// disk1 (local to srb1) goes down; the read fails over to the
	// replica on srb2 via federation.
	z.cat.SetResourceOnline("disk1", false)
	data, err := cl.Get("/home/ha.dat")
	if err != nil || string(data) != "replicated" {
		t.Errorf("failover get = %q, %v", data, err)
	}
}

func TestParallelGet(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := cl.Put("/home/big.bin", payload, client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	for _, streams := range []int{1, 2, 4, 8} {
		got, err := cl.ParallelGet("/home/big.bin", streams)
		if err != nil {
			t.Fatalf("streams=%d: %v", streams, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("streams=%d: payload corrupted", streams)
		}
	}
	// Range reads line up with offsets.
	part, err := cl.GetRange("/home/big.bin", 100, 50)
	if err != nil || !bytes.Equal(part, payload[100:150]) {
		t.Errorf("range read mismatch: %v", err)
	}
}

func TestWireLocksAndAnnotations(t *testing.T) {
	z := newZone(t, Proxy)
	z.authn.Register("bob", "bobpw")
	z.cat.AddUser(types.User{Name: "bob", Domain: "x"})
	alice := z.client(z.addr1, "alice", "alicepw")
	bob := z.client(z.addr1, "bob", "bobpw")

	alice.Put("/home/doc", []byte("v1"), client.PutOpts{Resource: "disk1"})
	alice.Chmod("/home/doc", "bob", "write")
	if err := alice.Lock("/home/doc", "shared", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := bob.Reput("/home/doc", []byte("v2")); !errors.Is(err, types.ErrLocked) {
		t.Errorf("locked reput = %v", err)
	}
	if err := alice.Unlock("/home/doc"); err != nil {
		t.Fatal(err)
	}
	if err := bob.Reput("/home/doc", []byte("v2")); err != nil {
		t.Errorf("unlocked reput = %v", err)
	}
	// Annotations over the wire.
	if err := bob.Annotate("/home/doc", types.Annotation{Text: "looks good", Kind: "comment"}); err != nil {
		t.Fatal(err)
	}
	anns, err := alice.Annotations("/home/doc")
	if err != nil || len(anns) != 1 || anns[0].Author != "bob" {
		t.Errorf("annotations = %+v, %v", anns, err)
	}
	// Checkout/checkin over the wire.
	if err := alice.Checkout("/home/doc"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Checkin("/home/doc", []byte("v3"), "note"); err != nil {
		t.Fatal(err)
	}
	data, _ := alice.Get("/home/doc")
	if string(data) != "v3" {
		t.Errorf("after checkin = %q", data)
	}
}

func TestWireSQLAndContainers(t *testing.T) {
	z := newZone(t, Proxy)
	db := dbfs.New()
	if err := z.b1.AddPhysicalResource("admin", "db1", types.ClassDatabase, "dbfs", db); err != nil {
		t.Fatal(err)
	}
	db.Database().Exec("CREATE TABLE t (a)")
	db.Database().Exec("INSERT INTO t VALUES ('wired')")

	cl := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl.RegisterSQL("/home/q", types.SQLSpec{Resource: "db1", Query: "SELECT a FROM t", Template: "XMLREL"}); err != nil {
		t.Fatal(err)
	}
	out, err := cl.ExecSQL("/home/q", "")
	if err != nil || !bytes.Contains(out, []byte("wired")) {
		t.Errorf("execsql = %q, %v", out, err)
	}
	// Containers over the wire.
	if _, err := cl.MkContainer("/home/cc", "disk1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("/home/member", []byte("inside"), client.PutOpts{Container: "/home/cc"}); err != nil {
		t.Fatal(err)
	}
	data, err := cl.Get("/home/member")
	if err != nil || string(data) != "inside" {
		t.Errorf("container member = %q, %v", data, err)
	}
	// URL objects over the wire.
	z.b1.Fetcher().RegisterMemBytes("mem://x", []byte("url data"))
	if _, err := cl.RegisterURL("/home/u", "mem://x"); err != nil {
		t.Fatal(err)
	}
	data, err = cl.Get("/home/u")
	if err != nil || string(data) != "url data" {
		t.Errorf("url get = %q, %v", data, err)
	}
}

func TestMoveCopyDeleteOverWire(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	cl.Mkdir("/home/a")
	cl.Mkdir("/home/b")
	cl.Put("/home/a/f", []byte("x"), client.PutOpts{Resource: "disk1"})
	if err := cl.Move("/home/a/f", "/home/b/g"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Copy("/home/b/g", "/home/b/h", ""); err != nil {
		t.Fatal(err)
	}
	if err := cl.Link("/home/b/g", "/home/a/lnk"); err != nil {
		t.Fatal(err)
	}
	data, err := cl.Get("/home/a/lnk")
	if err != nil || string(data) != "x" {
		t.Errorf("link get = %q, %v", data, err)
	}
	if err := cl.Delete("/home/b/h"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("/home/b/h"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("deleted get = %v", err)
	}
	// Extraction over the wire.
	cl.Put("/home/hdr.fits", []byte("OBJECT  = 'M31'\nEND\n"), client.PutOpts{Resource: "disk1", DataType: "fits image"})
	n, err := cl.Extract("/home/hdr.fits", "fits-cards", "")
	if err != nil || n != 1 {
		t.Errorf("extract = %d, %v", n, err)
	}
}

func TestTicketDelegatedAccess(t *testing.T) {
	z := newZone(t, Proxy)
	z.authn.Register("bob", "bobpw")
	z.cat.AddUser(types.User{Name: "bob", Domain: "x"})
	alice := z.client(z.addr1, "alice", "alicepw")
	bob := z.client(z.addr1, "bob", "bobpw")

	alice.Put("/home/secret.txt", []byte("for ticket holders"), client.PutOpts{Resource: "disk1"})
	// Without a grant or ticket, bob is denied.
	if _, err := bob.Get("/home/secret.txt"); !errors.Is(err, types.ErrPermission) {
		t.Fatalf("ungranted get = %v", err)
	}
	// Alice issues a 2-use read ticket; bob redeems it.
	tk, err := alice.IssueTicket("/home/secret.txt", "read", 2, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	data, err := bob.GetWithTicket("/home/secret.txt", tk)
	if err != nil || string(data) != "for ticket holders" {
		t.Fatalf("ticket get = %q, %v", data, err)
	}
	if _, err := bob.GetWithTicket("/home/secret.txt", tk); err != nil {
		t.Fatalf("second use: %v", err)
	}
	// The ticket is exhausted; a third use fails.
	if _, err := bob.GetWithTicket("/home/secret.txt", tk); !errors.Is(err, types.ErrAuth) {
		t.Errorf("exhausted ticket = %v", err)
	}
	// Tickets are path-scoped.
	alice.Put("/home/other.txt", []byte("x"), client.PutOpts{Resource: "disk1"})
	tk2, _ := alice.IssueTicket("/home/secret.txt", "read", -1, time.Hour)
	if _, err := bob.GetWithTicket("/home/other.txt", tk2); !errors.Is(err, types.ErrPermission) {
		t.Errorf("out-of-scope ticket = %v", err)
	}
	// Only owners may issue.
	if _, err := bob.IssueTicket("/home/secret.txt", "read", 1, time.Hour); !errors.Is(err, types.ErrPermission) {
		t.Errorf("non-owner issue = %v", err)
	}
	// Collection tickets cover the subtree.
	alice.Mkdir("/home/pub")
	alice.Put("/home/pub/a.txt", []byte("A"), client.PutOpts{Resource: "disk1"})
	tk3, err := alice.IssueTicket("/home/pub", "read", -1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	data, err = bob.GetWithTicket("/home/pub/a.txt", tk3)
	if err != nil || string(data) != "A" {
		t.Errorf("subtree ticket = %q, %v", data, err)
	}
}

func TestShadowAndAddUserOverWire(t *testing.T) {
	z := newZone(t, Proxy)
	// Seed a physical cone on disk1 and register it as a shadow dir.
	d1, _ := z.b1.Driver("disk1")
	stg.WriteAll(d1, "/cone/a.txt", []byte("A"))
	stg.WriteAll(d1, "/cone/sub/b.txt", []byte("B"))
	if _, err := z.b1.RegisterDirectory("alice", "/home/shadow", "disk1", "/cone"); err != nil {
		t.Fatal(err)
	}
	alice := z.client(z.addr1, "alice", "alicepw")
	infos, err := alice.ShadowList("/home/shadow", ".")
	if err != nil || len(infos) != 2 {
		t.Fatalf("ShadowList = %+v, %v", infos, err)
	}
	data, err := alice.ShadowOpen("/home/shadow", "sub/b.txt")
	if err != nil || string(data) != "B" {
		t.Errorf("ShadowOpen = %q, %v", data, err)
	}
	// Remote user administration: admin only.
	if err := alice.AddUser("eve", "x", "pw", false); !errors.Is(err, types.ErrPermission) {
		t.Errorf("non-admin adduser = %v", err)
	}
	admin := z.client(z.addr1, "admin", "adminpw")
	if err := admin.AddUser("carol", "caltech", "carolpw", false); err != nil {
		t.Fatal(err)
	}
	// The new user can authenticate immediately (single sign-on zone)
	// and, once granted, read.
	if err := admin.Chmod("/home", "carol", "read"); err != nil {
		t.Fatal(err)
	}
	carol := z.client(z.addr2, "carol", "carolpw")
	if _, err := carol.List("/home"); err != nil {
		t.Errorf("new user list: %v", err)
	}
}

func TestConcurrentClientsStress(t *testing.T) {
	z := newZone(t, Proxy)
	admin := z.client(z.addr1, "admin", "adminpw")
	admin.Chmod("/home", "alice", "write")
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			cl, err := client.Dial(z.addr1, "alice", "alicepw")
			if err != nil {
				done <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 25; i++ {
				p := fmt.Sprintf("/home/w%d-f%d", w, i)
				if _, err := cl.Put(p, []byte(p), client.PutOpts{
					Resource: "disk1",
					Meta:     []types.AVU{{Name: "w", Value: fmt.Sprint(w)}},
				}); err != nil {
					done <- err
					return
				}
				data, err := cl.Get(p)
				if err != nil || string(data) != p {
					done <- fmt.Errorf("get %s = %q, %v", p, data, err)
					return
				}
				if _, err := cl.Query(mcat.Query{Scope: "/home",
					Conds: []mcat.Condition{{Attr: "w", Op: "=", Value: fmt.Sprint(w)}}}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st, err := admin.ServerStats()
	if err != nil || st.Objects != workers*25 {
		t.Errorf("stats after stress = %+v, %v", st, err)
	}
}

func TestFederatedSQLExecution(t *testing.T) {
	z := newZone(t, Proxy)
	// The database resource lives on srb2.
	db := dbfs.New()
	if err := z.b2.AddPhysicalResource("admin", "db2", types.ClassDatabase, "dbfs", db); err != nil {
		t.Fatal(err)
	}
	db.Database().Exec("CREATE TABLE t (a)")
	db.Database().Exec("INSERT INTO t VALUES ('remote row')")
	cl := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl.RegisterSQL("/home/q", types.SQLSpec{
		Resource: "db2", Query: "SELECT a FROM t", Template: "XMLREL",
	}); err != nil {
		t.Fatal(err)
	}
	// Executing through srb1 federates to the database's owner.
	out, err := cl.ExecSQL("/home/q", "")
	if err != nil || !bytes.Contains(out, []byte("remote row")) {
		t.Errorf("federated execsql = %q, %v", out, err)
	}
}

func TestParallelGetThroughProxy(t *testing.T) {
	z := newZone(t, Proxy)
	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	// Data on srb2; client connected to srb1 throughout.
	cl2 := z.client(z.addr2, "alice", "alicepw")
	if _, err := cl2.Put("/home/big", payload, client.PutOpts{Resource: "disk2"}); err != nil {
		t.Fatal(err)
	}
	cl1 := z.client(z.addr1, "alice", "alicepw")
	got, err := cl1.ParallelGet("/home/big", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("proxied parallel get corrupted the payload")
	}
	if cl1.Server() != "srb1" {
		t.Errorf("client moved to %q in proxy mode", cl1.Server())
	}
	// Redirect mode: the streams chase the owner instead.
	zr := newZone(t, Redirect)
	r2 := zr.client(zr.addr2, "alice", "alicepw")
	if _, err := r2.Put("/home/big", payload, client.PutOpts{Resource: "disk2"}); err != nil {
		t.Fatal(err)
	}
	r1 := zr.client(zr.addr1, "alice", "alicepw")
	got, err = r1.ParallelGet("/home/big", 4)
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("redirected parallel get: %v", err)
	}
}

func TestResourcesOverWire(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	rs, err := cl.Resources()
	if err != nil || len(rs) != 2 {
		t.Fatalf("resources = %+v, %v", rs, err)
	}
	names := map[string]string{}
	for _, r := range rs {
		names[r.Name] = r.Server
	}
	if names["disk1"] != "srb1" || names["disk2"] != "srb2" {
		t.Errorf("resource ownership = %v", names)
	}
}
