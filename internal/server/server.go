// Package server implements srbd, the federated SRB server: it exposes
// the broker over the wire protocol, authenticates users and zone peers
// with challenge–response, and federates access to data held by other
// servers — by proxying bytes or by redirecting the client, the paper's
// "users can connect to any SRB server to access data from any other
// SRB server" (§3.1).
//
// As in SRB 1.x, a federation shares one MCAT: every server is built
// over the same catalog, while each server mounts drivers only for the
// resources it owns (types.Resource.Server names the owner).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/core"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/obs"
	"gosrb/internal/resilience"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// FederationMode selects how non-local data is served.
type FederationMode int

const (
	// Proxy relays the bytes through this server.
	Proxy FederationMode = iota
	// Redirect tells the client to reconnect to the owning server.
	Redirect
)

// Server is one srbd instance.
type Server struct {
	broker *core.Broker
	authn  *auth.Authenticator
	name   string
	mode   FederationMode

	mu    sync.RWMutex
	peers map[string]peer // server name -> address + secret

	tickets *auth.TicketStore

	// dialTimeout bounds peer connection establishment. It defaults to
	// resilience.DialTimeout, the one tunable the client shares.
	dialTimeout time.Duration
	// peerDial, when set, replaces the TCP dialer for peer connections
	// (fault injection wraps it to script peer crashes).
	peerDial func(addr string) (net.Conn, error)
	// peerPool reuses peer-authenticated connections across federation
	// calls — the dial-per-call model this replaces cost a full dial +
	// handshake round trip on every proxied op.
	peerPool *wire.Pool
	// retry shapes federation retries for idempotent proxied ops.
	retry resilience.Policy
	sleep func(time.Duration)

	// slowOp holds the slow-operation threshold in nanoseconds (0 =
	// disabled). Requests whose dispatch span exceeds it get their full
	// local span tree written to the log (srbd's -slow-op flag).
	slowOp atomic.Int64

	ln net.Listener
	wg sync.WaitGroup
	// connsMu guards conns, the set of live inbound connections. Close
	// shuts them down explicitly: pooled peer and client connections
	// stay open across calls, so waiting for EOF would wait forever.
	connsMu   sync.Mutex
	conns     map[net.Conn]struct{}
	closed    chan struct{}
	closeOnce sync.Once
	admin     *adminServer
	// Logger receives connection and operation errors with op,
	// remote-addr and trace-ID context. Defaults to stderr at LevelError
	// so failures are never silently swallowed; srbd raises it to
	// LevelInfo (or back down with -quiet).
	Logger *obs.Logger
}

type peer struct {
	addr   string
	secret string
}

// New returns a server over the broker. name must match the broker's
// server name so resource ownership resolves consistently.
func New(b *core.Broker, a *auth.Authenticator, mode FederationMode) *Server {
	s := &Server{
		broker:      b,
		authn:       a,
		name:        b.ServerName(),
		mode:        mode,
		peers:       make(map[string]peer),
		conns:       make(map[net.Conn]struct{}),
		tickets:     auth.NewTicketStore(),
		closed:      make(chan struct{}),
		dialTimeout: resilience.DialTimeout,
		retry:       resilience.DefaultPolicy,
		sleep:       time.Sleep,
		Logger:      obs.NewLogger(os.Stderr, b.ServerName(), obs.LevelError),
	}
	s.peerPool = wire.NewPool(wire.PoolConfig{
		Dial:    s.dialPeerMux,
		Metrics: b.Metrics(),
		Prefix:  "federation.pool",
		Gate:    s.peerGate,
	})
	return s
}

// peerGate makes checkout breaker-aware: a pooled connection to a peer
// whose breaker is open fails fast at the pool, before any frame moves.
func (s *Server) peerGate(addr string) wire.Gate {
	name := s.peerNameByAddr(addr)
	if name == "" {
		return nil
	}
	return s.peerBreaker(name)
}

// peerNameByAddr reverse-resolves a peer address to its server name.
func (s *Server) peerNameByAddr(addr string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, p := range s.peers {
		if p.addr == addr {
			return name
		}
	}
	return ""
}

// PeerPoolStats reports the federation connection pool's occupancy and
// lifetime dial/eviction/reap counters (chaos tests and status pages).
func (s *Server) PeerPoolStats() wire.PoolStats { return s.peerPool.Stats() }

// SetDialTimeout tunes how long peer dials may take (srbd's
// -dial-timeout flag).
func (s *Server) SetDialTimeout(d time.Duration) {
	if d > 0 {
		s.dialTimeout = d
	}
}

// SetPeerDialer replaces the transport used to reach peers (tests and
// fault injection). nil restores plain TCP. Pooled connections dialed
// under the old transport are dropped so the swap takes effect
// immediately.
func (s *Server) SetPeerDialer(dial func(addr string) (net.Conn, error)) {
	s.peerDial = dial
	s.flushPeerPool()
}

// flushPeerPool closes every pooled peer connection (transport swap).
func (s *Server) flushPeerPool() {
	s.peerPool.Flush()
}

// SetRetryPolicy tunes federation retries for idempotent proxied ops.
func (s *Server) SetRetryPolicy(p resilience.Policy) {
	if p.MaxAttempts > 0 {
		s.retry = p
	}
}

// SetSlowOpThreshold enables the slow-op log: any request taking at
// least d gets its full local span tree logged (0 disables).
func (s *Server) SetSlowOpThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.slowOp.Store(int64(d))
}

// Name returns the server's federation name.
func (s *Server) Name() string { return s.name }

// Tickets exposes the server's delegated-access ticket store.
func (s *Server) Tickets() *auth.TicketStore { return s.tickets }

// AddPeer registers a federated peer and the shared zone secret used
// for server-to-server authentication.
func (s *Server) AddPeer(name, addr, secret string) {
	s.mu.Lock()
	s.peers[name] = peer{addr: addr, secret: secret}
	s.mu.Unlock()
	s.authn.RegisterPeer(name, secret)
}

// PeerAddr resolves a peer's address.
func (s *Server) PeerAddr(name string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.peers[name]
	return p.addr, ok
}

// Listen starts accepting connections on addr ("host:0" picks a port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener (and the admin endpoint, when serving) and
// waits for active connections to finish. It is safe to call more than
// once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.ln != nil {
			err = s.ln.Close()
		}
		s.closeAdmin()
		s.peerPool.Close()
		s.connsMu.Lock()
		for nc := range s.conns {
			nc.Close()
		}
		s.connsMu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.Logger.Errorf("accept: %v", err)
				return
			}
		}
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.connsMu.Lock()
				delete(s.conns, conn)
				s.connsMu.Unlock()
			}()
			// net.ErrClosed covers both a client dropping a pooled conn
			// and Close force-closing tracked conns: routine teardown,
			// not an error worth logging.
			if err := s.handleConn(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logger.Errorf("conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// connWriter serializes response-stream writes on one connection.
// Pipelined handlers finish out of order; the mutex makes each
// response (and its trailing data frames) one atomic unit on the wire.
// A write error is latched and the conn closed, so the reader loop
// unblocks and every later write fails fast.
type connWriter struct {
	mu  sync.Mutex
	c   *wire.Conn
	nc  net.Conn
	err error
}

// send runs one response write under the lock.
func (w *connWriter) send(fn func(c *wire.Conn) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := fn(w.c); err != nil {
		w.err = err
		w.nc.Close()
		return err
	}
	return nil
}

// session is the state of one request on an authenticated connection.
// The identity fields (user/peer/remote/w) are shared by every request
// on the conn; the rest is per-request, forked fresh so pipelined
// handlers never share mutable state.
type session struct {
	user   string // authenticated end user, or "" on peer connections
	peer   string // authenticated peer server, or ""
	isPeer bool
	remote string // remote address, for log and trace context
	// w is the conn's mutex-serialized response writer.
	w *connWriter
	// reqID is the request's correlation ID, echoed on every response
	// (zero = serial protocol).
	reqID uint64
	// pre holds the request's inbound bulk-data stream, drained by the
	// reader loop before dispatch (the stream belongs between the
	// request and the next one; a pipelined handler reads it here).
	pre    []byte
	hasPre bool
	// opErr records the handler error of the request being dispatched;
	// the dispatch shim reads it to attribute errors to the op's
	// metrics, span record and log line.
	opErr error
	// deadline is the current request's time budget (zero = unbounded),
	// started at dispatch from wire.Request.TimeoutMillis; federation
	// hops forward only what remains of it.
	deadline time.Time
	// span is the current request's trace span; handlers and the layers
	// beneath them annotate it with retry/breaker/failover events.
	span *obs.Span
	// acctUser is the resolved effective user of the current request,
	// recorded by dispatchOp for usage accounting ("" = unresolved).
	acctUser string
	// bytesIn / bytesOut count bulk-data bytes received and sent while
	// serving the current request, for the usage accounting ledger.
	bytesIn  int64
	bytesOut int64
	// enqueued is when the reader loop finished reading a pipelined
	// request (zero on the serial path). The dispatch shim backdates the
	// request span to it and attributes the gap to the queue.wait phase.
	enqueued time.Time
}

// fork builds the per-request session for one dispatched request.
func (ss *session) fork(reqID uint64) *session {
	return &session{
		user: ss.user, peer: ss.peer, isPeer: ss.isPeer,
		remote: ss.remote, w: ss.w, reqID: reqID,
	}
}

// expired reports whether the request's budget has run out.
func (ss *session) expired() bool {
	return !ss.deadline.IsZero() && !time.Now().Before(ss.deadline)
}

// recvData hands the handler its request's pre-read bulk data stream.
func (ss *session) recvData(w io.Writer) (int64, error) {
	if !ss.hasPre {
		return 0, types.E("recvdata", "", types.ErrInvalid)
	}
	n, err := w.Write(ss.pre)
	return int64(n), err
}

// reply sends a success response with body.
func (ss *session) reply(body any) error {
	resp, err := wire.OkResponse(body, false)
	if err != nil {
		return err
	}
	resp.ID = ss.reqID
	return ss.w.send(func(c *wire.Conn) error {
		return c.WriteJSON(wire.MsgResponse, resp)
	})
}

// rawReply sends a success response with a pre-marshalled body (proxied
// replies relay the owning server's bytes untouched).
func (ss *session) rawReply(body json.RawMessage) error {
	resp := wire.Response{ID: ss.reqID, OK: true, Body: body}
	return ss.w.send(func(c *wire.Conn) error {
		return c.WriteJSON(wire.MsgResponse, resp)
	})
}

// fail reports a handler failure to the client and records it for the
// dispatch shim.
func (ss *session) fail(err error) error {
	ss.opErr = err
	resp := wire.ErrResponse(err)
	resp.ID = ss.reqID
	return ss.w.send(func(c *wire.Conn) error {
		return c.WriteJSON(wire.MsgResponse, resp)
	})
}

// replyData sends a success response announcing size, then the data —
// one atomic unit under the conn writer lock — and accounts the sent
// bytes to the session's usage ledger.
func (ss *session) replyData(data []byte) error {
	resp, err := wire.OkResponse(wire.SizeReply{Size: int64(len(data))}, true)
	if err != nil {
		return err
	}
	resp.ID = ss.reqID
	ss.bytesOut += int64(len(data))
	return ss.w.send(func(c *wire.Conn) error {
		if err := c.WriteJSON(wire.MsgResponse, resp); err != nil {
			return err
		}
		return c.SendData(bytes.NewReader(data))
	})
}

// replyDataBody is replyData with a custom response body (batch ops
// announce per-item manifests instead of one size).
func (ss *session) replyDataBody(body any, data []byte) error {
	resp, err := wire.OkResponse(body, true)
	if err != nil {
		return err
	}
	resp.ID = ss.reqID
	ss.bytesOut += int64(len(data))
	return ss.w.send(func(c *wire.Conn) error {
		if err := c.WriteJSON(wire.MsgResponse, resp); err != nil {
			return err
		}
		return c.SendData(bytes.NewReader(data))
	})
}

// redirect hands the client the owning server's address.
func (ss *session) redirect(server, addr string) error {
	rd := wire.Redirect{ID: ss.reqID, Server: server, Addr: addr}
	return ss.w.send(func(c *wire.Conn) error {
		return c.WriteJSON(wire.MsgRedirect, rd)
	})
}

// effectiveUser resolves the user an operation runs as.
func (ss *session) effectiveUser(req *wire.Request) (string, error) {
	if ss.isPeer {
		if req.OnBehalf == "" {
			return "", types.E(req.Op, "", types.ErrAuth)
		}
		return req.OnBehalf, nil
	}
	return ss.user, nil
}

// maxPipelined bounds concurrently dispatched requests per connection;
// beyond it the reader loop applies backpressure by not reading the
// next request until a handler slot frees.
const maxPipelined = 64

func (s *Server) handleConn(nc net.Conn) error {
	c := wire.NewConn(nc)
	base, err := s.handshake(c)
	if err != nil {
		return err
	}
	base.remote = nc.RemoteAddr().String()
	base.w = &connWriter{c: c, nc: nc}
	reg := s.broker.Metrics()
	depthHist := reg.Op("server.pipeline.depth")
	pipeGauge := reg.Gauge("server.pipeline.inflight")
	var wg sync.WaitGroup
	defer wg.Wait()
	sem := make(chan struct{}, maxPipelined)
	var inflight atomic.Int64
	for {
		var req wire.Request
		if err := c.ReadJSON(wire.MsgRequest, &req); err != nil {
			return err
		}
		ss := base.fork(req.ID)
		if wire.StreamsIn(req.Op) {
			// The op's bulk data sits between this request and the next;
			// drain it here so the reader can move on while a pipelined
			// handler works. (This also keeps framing healthy when the
			// handler rejects the op before touching the data.)
			var buf bytes.Buffer
			if _, err := c.RecvData(&buf); err != nil {
				return err
			}
			ss.pre, ss.hasPre = buf.Bytes(), true
		}
		if req.ID == 0 {
			// Serial protocol: dispatch inline, strictly in order.
			if err := s.dispatch(ss, &req); err != nil {
				return err
			}
			continue
		}
		// Pipelined: dispatch concurrently, bounded by maxPipelined.
		// The depth histogram records how deep the pipeline actually
		// runs (depth encoded as microseconds in the pow-2 buckets).
		depth := inflight.Add(1)
		depthHist.Observe(time.Duration(depth)*time.Microsecond, nil)
		pipeGauge.Add(1)
		ss.enqueued = time.Now()
		sem <- struct{}{}
		wg.Add(1)
		go func(req wire.Request, ss *session) {
			defer wg.Done()
			defer func() { <-sem; inflight.Add(-1); pipeGauge.Add(-1) }()
			if err := s.dispatch(ss, &req); err != nil {
				// Transport failure writing the response: the writer
				// latched it and closed the conn, unblocking the reader.
				s.Logger.Errorf("conn %s: pipelined %s: %v", ss.remote, req.Op, err)
			}
		}(req, ss)
	}
}

// handshake runs challenge–response authentication.
func (s *Server) handshake(c *wire.Conn) (*session, error) {
	nonce, err := auth.NewChallenge()
	if err != nil {
		return nil, err
	}
	if err := c.WriteJSON(wire.MsgChallenge, wire.Challenge{Server: s.name, Nonce: nonce}); err != nil {
		return nil, err
	}
	var a wire.Auth
	if err := c.ReadJSON(wire.MsgAuth, &a); err != nil {
		return nil, err
	}
	ss := &session{}
	switch {
	case a.Peer != "":
		if !s.authn.VerifyPeer(a.Peer, nonce, a.Response) {
			c.WriteJSON(wire.MsgResponse, wire.ErrResponse(types.E("auth", a.Peer, types.ErrAuth)))
			return nil, types.E("auth", a.Peer, types.ErrAuth)
		}
		ss.peer, ss.isPeer = a.Peer, true
	default:
		if !s.authn.VerifyUser(a.User, nonce, a.Response) {
			c.WriteJSON(wire.MsgResponse, wire.ErrResponse(types.E("auth", a.User, types.ErrAuth)))
			return nil, types.E("auth", a.User, types.ErrAuth)
		}
		ss.user = a.User
	}
	// Mux:true advertises that this server echoes correlation IDs, so
	// clients may pipeline requests over this connection.
	return ss, c.WriteJSON(wire.MsgAuthOK, wire.AuthOK{Server: s.name, Mux: true})
}

// decode unmarshals request args.
func decode[T any](req *wire.Request) (T, error) {
	var v T
	if len(req.Args) == 0 {
		return v, nil
	}
	err := json.Unmarshal(req.Args, &v)
	return v, err
}

// localityOf classifies where a file object's clean replicas live:
// "" means local (or not a plain file), otherwise the owning peer name.
func (s *Server) localityOf(path string) string {
	o, err := s.broker.Cat.GetObject(path)
	if err != nil || o.Kind != types.KindFile {
		return ""
	}
	check := o
	if o.Container != "" {
		cont, err := s.broker.Cat.GetObject(o.Container)
		if err != nil {
			return ""
		}
		check = cont
	}
	remote := ""
	for _, r := range check.Replicas {
		if r.Status != types.ReplicaClean {
			continue
		}
		res, err := s.broker.Cat.GetResource(r.Resource)
		if err != nil || !res.Online {
			continue
		}
		if res.Server == s.name || res.Server == "" {
			// A local clean replica counts only while its resource
			// breaker passes traffic; a tripped local resource sends
			// the read to a surviving remote replica instead.
			if s.broker.Breakers().For("resource." + r.Resource).Allow() {
				return ""
			}
			continue
		}
		remote = res.Server
	}
	return remote
}

// resourceOwner names the peer owning resource, or "" when local.
func (s *Server) resourceOwner(resource string) string {
	res, err := s.broker.Cat.GetResource(resource)
	if err != nil || res.Server == "" || res.Server == s.name {
		return ""
	}
	if res.Kind == types.ResourceLogical && len(res.Members) > 0 {
		m, err := s.broker.Cat.GetResource(res.Members[0])
		if err == nil && (m.Server == "" || m.Server == s.name) {
			return ""
		}
	}
	return res.Server
}

// federate serves a get-style request for data owned by peerName:
// proxy mode relays the bytes, redirect mode hands the client the
// owning server's address. The forwarded request keeps req.Trace, so
// the same trace ID lands in both servers' records.
func (s *Server) federate(ss *session, peerName, user string, req *wire.Request) error {
	addr, ok := s.PeerAddr(peerName)
	if !ok {
		return ss.fail(types.E(req.Op, peerName, types.ErrOffline))
	}
	if s.mode == Redirect {
		return ss.redirect(peerName, addr)
	}
	// Serving a read through a peer is the federation-level failover:
	// either the data only lives there, or the local replica's resource
	// breaker routed around a failing driver.
	ss.span.Event(obs.EventFailover, "read via peer "+peerName)
	data, err := s.proxyGet(peerName, addr, user, req, ss.deadline, ss.span)
	if err != nil {
		return ss.fail(err)
	}
	return ss.replyData(data)
}

// peerBreaker returns the circuit breaker guarding one federated peer.
func (s *Server) peerBreaker(name string) *resilience.Breaker {
	return s.broker.Breakers().For("peer." + name)
}

// peerDo runs one attempt against a peer: breaker gate, remaining-
// budget rewrite, pooled checkout, and outcome recording. Only
// conn-level failures (dial refused, conn dropped, I/O deadline) count
// against the breaker — a peer answering with an application error is
// alive. A transport failure also evicts the checked-out connection so
// no later federation call inherits a broken conn.
func (s *Server) peerDo(peerName, addr string, deadline time.Time, req *wire.Request, sp *obs.Span, fn func(*peerConn) error) error {
	br := s.peerBreaker(peerName)
	switch br.State() {
	case resilience.Open:
		s.broker.Metrics().Counter("federation.fastfail").Inc()
		sp.Event(obs.EventBreakerFast, "peer."+peerName)
		return types.E(req.Op, peerName, fmt.Errorf("peer breaker open: %w", types.ErrOffline))
	case resilience.HalfOpen:
		sp.Event(obs.EventBreakerProbe, "peer."+peerName)
	}
	if err := shrinkBudget(req, deadline); err != nil {
		return err
	}
	// The span the peer opens for this request becomes a child of ours,
	// so the federated hop shows up as a subtree when reassembled.
	req.Span = sp.SpanID()
	m, err := s.peerPool.Get(addr)
	if err != nil {
		if br.Failure() {
			sp.Event(obs.EventBreakerTrip, "peer."+peerName)
		}
		return types.E(req.Op, peerName, err)
	}
	pc := &peerConn{m: m, deadline: deadline}
	start := time.Now()
	err = fn(pc)
	hop := time.Since(start)
	sp.Phase(obs.PhaseFederationHop, hop)
	failed := err != nil && resilience.Transport(err)
	// Feed the transfer observatory: every peer round trip contributes
	// latency, moved bytes and transport-level outcome to the per-peer
	// history (an application error proves the peer alive).
	s.broker.Metrics().Peers().Record(peerName, "", hop, pc.bytes, failed)
	if failed {
		s.peerPool.Fail(m)
		if br.Failure() {
			sp.Event(obs.EventBreakerTrip, "peer."+peerName)
		}
	} else {
		s.peerPool.Put(m)
		br.Success()
	}
	if err != nil {
		return types.E(req.Op, peerName, err)
	}
	return nil
}

// retrier builds the federation retry loop for one idempotent request.
// Each retry lands as both a counter tick and an event on sp.
func (s *Server) retrier(deadline time.Time, sp *obs.Span) resilience.Retrier {
	return resilience.Retrier{
		Policy:   s.retry,
		Sleep:    s.sleep,
		Deadline: deadline,
		OnRetry: func(attempt int, err error) {
			s.broker.Metrics().Counter("federation.retries").Inc()
			sp.Event(obs.EventRetry, fmt.Sprintf("federation attempt %d: %v", attempt+1, err))
		},
	}
}

// shrinkBudget rewrites req's time budget to what remains before
// deadline — the budget shrinks on every federation hop, so a slow
// peer cannot stall the whole chain. An exhausted budget fails here,
// before any bytes cross the wire.
func shrinkBudget(req *wire.Request, deadline time.Time) error {
	if deadline.IsZero() {
		return nil
	}
	left := time.Until(deadline)
	if left <= 0 {
		return types.E(req.Op, "", types.ErrTimeout)
	}
	ms := left.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	req.TimeoutMillis = ms
	return nil
}

// proxyGet relays a data-returning request to a peer over a
// peer-authenticated connection, retrying idempotent ops under the
// server's backoff policy.
func (s *Server) proxyGet(peerName, addr, user string, req *wire.Request, deadline time.Time, sp *obs.Span) ([]byte, error) {
	var data []byte
	do := func() error {
		fwd := *req
		fwd.OnBehalf = user
		return s.peerDo(peerName, addr, deadline, &fwd, sp, func(pc *peerConn) error {
			d, err := pc.roundTripData(&fwd)
			data = d
			return err
		})
	}
	if !wire.Idempotent(req.Op) {
		if err := do(); err != nil {
			return nil, err
		}
		return data, nil
	}
	r := s.retrier(deadline, sp)
	if err := r.Do(do); err != nil {
		return nil, err
	}
	return data, nil
}

// proxyCall relays a non-data request to a peer.
func (s *Server) proxyCall(peerName, user string, req *wire.Request, deadline time.Time, sp *obs.Span) (json.RawMessage, error) {
	addr, ok := s.PeerAddr(peerName)
	if !ok {
		return nil, types.E(req.Op, peerName, types.ErrOffline)
	}
	var body json.RawMessage
	do := func() error {
		fwd := *req
		fwd.OnBehalf = user
		return s.peerDo(peerName, addr, deadline, &fwd, sp, func(pc *peerConn) error {
			b, err := pc.roundTrip(&fwd)
			body = b
			return err
		})
	}
	if !wire.Idempotent(req.Op) {
		if err := do(); err != nil {
			return nil, err
		}
		return body, nil
	}
	r := s.retrier(deadline, sp)
	if err := r.Do(do); err != nil {
		return nil, err
	}
	return body, nil
}

// peerConn is one checked-out federation call slot: a pooled Mux plus
// the request's deadline. The Mux enforces the deadline per call (a
// peer that stops answering mid-exchange fails the request instead of
// hanging it) and lets many federation calls share one authenticated
// connection.
type peerConn struct {
	m        *wire.Mux
	deadline time.Time
	// bytes counts bulk payload moved on this call (either direction),
	// for the peer transfer observatory's bandwidth EWMA.
	bytes int64
}

// dialPeerMux connects and peer-authenticates to addr, wrapping the
// conn in a Mux for pooling. The zone secret is resolved from the peer
// table by address at dial time, and s.peerDial is read per dial so a
// transport swapped in by fault injection applies to new connections.
func (s *Server) dialPeerMux(addr string) (*wire.Mux, error) {
	name := s.peerNameByAddr(addr)
	s.mu.RLock()
	secret := s.peers[name].secret
	s.mu.RUnlock()
	dial := s.peerDial
	if dial == nil {
		dial = func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, s.dialTimeout)
		}
	}
	nc, err := dial(addr)
	if err != nil {
		return nil, err
	}
	c := wire.NewConn(nc)
	var ch wire.Challenge
	if err := c.ReadJSON(wire.MsgChallenge, &ch); err != nil {
		nc.Close()
		return nil, err
	}
	resp := auth.Respond(auth.DeriveKey("peer:"+s.name, secret), ch.Nonce)
	if err := c.WriteJSON(wire.MsgAuth, wire.Auth{Peer: s.name, Response: resp}); err != nil {
		nc.Close()
		return nil, err
	}
	var ok wire.AuthOK
	if err := c.ReadJSON(wire.MsgAuthOK, &ok); err != nil {
		nc.Close()
		return nil, types.E("peerauth", addr, types.ErrAuth)
	}
	return wire.NewMux(nc, c, ok.Server, ok.Mux), nil
}

func (p *peerConn) roundTrip(req *wire.Request) (json.RawMessage, error) {
	res, err := p.m.Call(req, nil, p.deadline)
	if err != nil {
		return nil, err
	}
	if res.Redirect != nil {
		return nil, types.E(req.Op, "", types.ErrInvalid)
	}
	if !res.Resp.OK {
		return nil, res.Resp.Err()
	}
	return res.Resp.Body, nil
}

func (p *peerConn) roundTripData(req *wire.Request) ([]byte, error) {
	res, err := p.m.Call(req, nil, p.deadline)
	if err != nil {
		return nil, err
	}
	if res.Redirect != nil {
		return nil, types.E(req.Op, "", types.ErrInvalid)
	}
	if !res.Resp.OK {
		return nil, res.Resp.Err()
	}
	if !res.Resp.DataFollows {
		return nil, types.E(req.Op, "", types.ErrInvalid)
	}
	p.bytes += int64(len(res.Data))
	return res.Data, nil
}

// roundTripIngest relays an ingest (request, then data, then response).
func (p *peerConn) roundTripIngest(req *wire.Request, data []byte) (json.RawMessage, error) {
	res, err := p.m.Call(req, bytes.NewReader(data), p.deadline)
	if err != nil {
		return nil, err
	}
	if res.Redirect != nil {
		return nil, types.E(req.Op, "", types.ErrInvalid)
	}
	if !res.Resp.OK {
		return nil, res.Resp.Err()
	}
	p.bytes += int64(len(data))
	return res.Resp.Body, nil
}

// parseLockKind maps wire lock names.
func parseLockKind(s string) (types.LockKind, error) {
	switch strings.ToLower(s) {
	case "shared":
		return types.LockShared, nil
	case "exclusive":
		return types.LockExclusive, nil
	default:
		return types.LockNone, types.E("lock", s, types.ErrInvalid)
	}
}

// Stats builds the server stats reply.
func (s *Server) stats() wire.StatsReply {
	st := s.broker.Cat.Stats()
	return wire.StatsReply{
		Server: s.name, Objects: st.Objects, Collections: st.Collections,
		Resources: st.Resources, Users: st.Users,
	}
}

// Telemetry snapshots the broker registry for the OpStats wire op, the
// admin /metrics endpoint and the MySRB status page. Audit-ring drops
// are folded in as a gauge just before snapshotting so every exposure
// path reports them.
func (s *Server) Telemetry() wire.OpStatsReply {
	reg := s.broker.Metrics()
	reg.Gauge("audit.dropped").Set(s.broker.Cat.AuditLog().Dropped())
	s.broker.Breakers().Publish()
	pool := s.peerPool.Stats()
	return wire.OpStatsReply{Server: s.name, Snapshot: reg.Snapshot(), PeerPool: &pool}
}

// gatherTrace collects every retained span of one trace: this server's
// ring, and — when fanout is set — each zone peer's ring via OpTrace.
// Peer queries are best-effort (an unreachable peer just contributes
// nothing) and are sent without a trace ID of their own, so fetching a
// trace never pollutes the trace being fetched. Requests arriving from
// a peer answer locally only (fanout=false), which bounds the fan-out
// to one hop.
func (s *Server) gatherTrace(user, id string, fanout bool) wire.TraceReply {
	spans := s.broker.Metrics().Traces().ForTrace(id)
	if fanout {
		s.mu.RLock()
		names := make([]string, 0, len(s.peers))
		for n := range s.peers {
			names = append(names, n)
		}
		s.mu.RUnlock()
		sort.Strings(names)
		for _, pn := range names {
			args, err := json.Marshal(wire.TraceArgs{ID: id})
			if err != nil {
				continue
			}
			req := &wire.Request{Op: wire.OpTrace, Args: args}
			body, err := s.proxyCall(pn, user, req, time.Time{}, nil)
			if err != nil {
				continue
			}
			var rep wire.TraceReply
			if json.Unmarshal(body, &rep) == nil {
				spans = append(spans, rep.Spans...)
			}
		}
	}
	return wire.TraceReply{Server: s.name, Spans: spans}
}

// Readiness reports whether the server is fully serviceable and a set
// of detail lines. Degrading conditions: any open circuit breaker (a
// peer or storage resource being routed around), an offline local
// resource, or a wedged repair engine (tasks pending with no worker
// alive to drain them). When a repair engine is attached, the detail
// always carries one informational line with the queue backlog and the
// oldest task's age — a backlog alone is normal operation, not a
// degradation; likewise a firing SLO rule adds a "warn:" line without
// degrading (an objective miss is an alerting concern, not downtime).
// The admin /healthz endpoint turns !ok into HTTP 503.
func (s *Server) Readiness() (bool, []string) {
	return readiness(s.broker, s.name)
}

// readiness is the broker-level readiness check behind Readiness,
// shared with the standalone admin handler mysrbd mounts (which has no
// Server).
func readiness(b *core.Broker, name string) (bool, []string) {
	var degraded []string
	for key, st := range b.Breakers().States() {
		if st == resilience.Open {
			degraded = append(degraded, "breaker "+key+" open")
		}
	}
	for _, r := range b.Cat.Resources() {
		if r.Kind != types.ResourcePhysical || r.Online {
			continue
		}
		if r.Server == "" || r.Server == name {
			degraded = append(degraded, "resource "+r.Name+" offline")
		}
	}
	eng := b.Repair()
	if eng != nil && eng.Wedged() {
		degraded = append(degraded, "repair engine wedged (non-empty queue, no workers alive)")
	}
	sort.Strings(degraded)
	detail := degraded
	if eng != nil {
		st := eng.Status()
		line := fmt.Sprintf("repair backlog=%d oldest_age=%s", st.Backlog, st.OldestAge.Truncate(time.Second))
		if st.Paused {
			line += " paused"
		}
		detail = append(detail, line)
	}
	for _, st := range b.SLO().Status() {
		if st.Violating {
			detail = append(detail, fmt.Sprintf("warn: slo %s violating (burn %.0f%%)", st.Rule, st.BurnPct))
		}
	}
	// Shard replication lag mirrors the repair-backlog treatment: when a
	// replag SLO rule is declared and a shard's exported lag gauge
	// exceeds its threshold, warn without degrading — lag is an alerting
	// concern, not downtime. The gauges (refreshed by the shard-sync and
	// advisor jobs) are read as exported, so the probe agrees with what
	// /metrics and the SLO evaluator saw.
	if th, declared := replagThreshold(b.SLO()); declared {
		gauges := b.Metrics().Snapshot().Gauges
		var warns []string
		for name, v := range gauges {
			if strings.HasPrefix(name, "mcat.shard.") && strings.HasSuffix(name, ".replag_seconds") && float64(v) >= th {
				warns = append(warns, fmt.Sprintf("warn: %s at %ds exceeds slo threshold %.0fs (replication lag)", name, v, th))
			}
		}
		sort.Strings(warns)
		detail = append(detail, warns...)
	}
	return len(degraded) == 0, detail
}

// replagThreshold returns the tightest declared replag_seconds ceiling,
// and whether any replag rule exists at all.
func replagThreshold(ev *obs.SLOEvaluator) (float64, bool) {
	th, found := 0.0, false
	for _, r := range ev.Rules() {
		if r.Metric != obs.SLOReplag || !r.Less {
			continue
		}
		if !found || r.Threshold < th {
			th, found = r.Threshold, true
		}
	}
	return th, found
}

// repairStatus snapshots the repair engine for the repairstatus wire op
// and the admin /repair endpoint.
func (s *Server) repairStatus() wire.RepairStatusReply {
	return repairStatusOf(s.broker, s.name)
}

func repairStatusOf(b *core.Broker, name string) wire.RepairStatusReply {
	rep := wire.RepairStatusReply{Server: name}
	eng := b.Repair()
	if eng == nil {
		return rep
	}
	st := eng.Status()
	rep.Enabled = true
	rep.Status = wire.RepairStatus{
		Running:      st.Running,
		Paused:       st.Paused,
		Wedged:       st.Wedged,
		Workers:      st.Workers,
		WorkersAlive: st.WorkersAlive,
		Backlog:      st.Backlog,
		OldestAge:    st.OldestAge,
		Done:         st.Done,
		Failed:       st.Failed,
		Retries:      st.Retries,
	}
	for _, j := range st.Jobs {
		rep.Status.Jobs = append(rep.Status.Jobs, wire.RepairJobStatus{
			Name:     j.Name,
			Interval: j.Interval,
			Runs:     j.Runs,
			Errors:   j.Errors,
			LastRun:  j.LastRun,
			LastErr:  j.LastErr,
		})
	}
	return rep
}

// staleFraction: a member's window is flagged stale when its retained
// rollup history covers less than this fraction of the requested
// window (a just-started server, or retention shorter than the ask).
const staleFraction = 0.8

// localGridMember builds this server's own contribution to a grid
// snapshot: the windowed view of its registry, honestly flagged stale
// when the ring doesn't span the window yet.
func (s *Server) localGridMember(window time.Duration) wire.GridMember {
	ws := s.broker.Metrics().Window(window)
	m := wire.GridMember{Server: s.name, Window: ws}
	if ws.CoveredSeconds < staleFraction*ws.WindowSeconds {
		m.Stale = true
	}
	return m
}

// gridStatOnce sends one grid-stat hop with a single attempt — no
// retry loop. Partial answers are the point of the grid gather: a dead
// peer must cost one failed dial inside the caller's deadline (and a
// breaker fast-fail on later scrapes), not a backoff cycle.
func (s *Server) gridStatOnce(peerName, user string, req *wire.Request, deadline time.Time, sp *obs.Span) (json.RawMessage, error) {
	addr, ok := s.PeerAddr(peerName)
	if !ok {
		return nil, types.E(req.Op, peerName, types.ErrOffline)
	}
	var body json.RawMessage
	fwd := *req
	fwd.OnBehalf = user
	err := s.peerDo(peerName, addr, deadline, &fwd, sp, func(pc *peerConn) error {
		b, err := pc.roundTrip(&fwd)
		body = b
		return err
	})
	return body, err
}

// gatherGridStat merges the zone's windowed stats: this server's view
// plus — when fanout is set — every peer's, gathered best-effort with
// LocalOnly set so the fan-out is bounded to one hop (the same shape
// as gatherTrace). Unreachable peers keep their member slot with the
// error instead of silently vanishing, so a partial aggregate is
// visibly partial. The grid aggregate recomputes quantiles from the
// merged bucket deltas of the reachable members.
func (s *Server) gatherGridStat(user string, window time.Duration, fanout bool, deadline time.Time, sp *obs.Span) wire.GridStatReply {
	if window <= 0 {
		window = 5 * time.Minute
	}
	members := []wire.GridMember{s.localGridMember(window)}
	if fanout {
		s.mu.RLock()
		names := make([]string, 0, len(s.peers))
		for n := range s.peers {
			names = append(names, n)
		}
		s.mu.RUnlock()
		sort.Strings(names)
		for _, pn := range names {
			args, err := json.Marshal(wire.GridStatArgs{WindowSeconds: int64(window / time.Second), LocalOnly: true})
			if err != nil {
				continue
			}
			req := &wire.Request{Op: wire.OpGridStat, Args: args}
			body, err := s.gridStatOnce(pn, user, req, deadline, sp)
			if err != nil {
				members = append(members, wire.GridMember{Server: pn, Unreachable: true, Err: err.Error()})
				continue
			}
			var rep wire.GridStatReply
			if err := json.Unmarshal(body, &rep); err != nil || len(rep.Members) == 0 {
				members = append(members, wire.GridMember{Server: pn, Unreachable: true, Err: "malformed grid-stat reply"})
				continue
			}
			m := rep.Members[0]
			m.Server = pn
			members = append(members, m)
		}
	}
	wins := make([]obs.WindowStats, 0, len(members))
	for _, m := range members {
		if !m.Unreachable {
			wins = append(wins, m.Window)
		}
	}
	return wire.GridStatReply{
		Server:        s.name,
		WindowSeconds: window.Seconds(),
		Members:       members,
		Grid:          obs.MergeWindows(wins),
	}
}

// alerts snapshots the SLO evaluator for the alerts wire op and the
// admin /alerts endpoint.
func (s *Server) alerts() wire.AlertsReply {
	return alertsOf(s.broker, s.name)
}

func alertsOf(b *core.Broker, name string) wire.AlertsReply {
	rep := wire.AlertsReply{Server: name}
	ev := b.SLO()
	if ev == nil {
		return rep
	}
	rep.Enabled = true
	rep.Rules = ev.Status()
	rep.Alerts = ev.AlertLog().Recent(0)
	return rep
}

func (s *Server) incidents() wire.IncidentsReply {
	return incidentsOf(s.broker, s.name)
}

func incidentsOf(b *core.Broker, name string) wire.IncidentsReply {
	rep := wire.IncidentsReply{Server: name}
	ir := b.Incidents()
	if ir == nil {
		return rep
	}
	rep.Enabled = true
	rep.Incidents = ir.List()
	return rep
}

func (s *Server) incidentGet(id string) (wire.IncidentGetReply, error) {
	ir := s.broker.Incidents()
	if ir == nil {
		return wire.IncidentGetReply{}, types.E(wire.OpIncidentGet, id, fmt.Errorf("flight recorder disabled: %w", types.ErrUnsupported))
	}
	meta, files, err := ir.Get(id)
	if err != nil {
		return wire.IncidentGetReply{}, types.E(wire.OpIncidentGet, id, fmt.Errorf("%v: %w", err, types.ErrNotFound))
	}
	return wire.IncidentGetReply{Server: s.name, Meta: meta, Files: files}, nil
}

func (s *Server) incidentCapture(reason string) (wire.IncidentCaptureReply, error) {
	ir := s.broker.Incidents()
	if ir == nil {
		return wire.IncidentCaptureReply{}, types.E(wire.OpIncidentCapture, "", fmt.Errorf("flight recorder disabled: %w", types.ErrUnsupported))
	}
	if reason == "" {
		reason = "manual"
	}
	meta, err := ir.Capture(time.Now(), "manual", "manual", reason, 0)
	if err != nil {
		return wire.IncidentCaptureReply{}, types.E(wire.OpIncidentCapture, "", err)
	}
	return wire.IncidentCaptureReply{Server: s.name, Meta: meta}, nil
}

func (s *Server) peersReply() wire.PeersReply {
	return peersOf(s.broker, s.name)
}

func peersOf(b *core.Broker, name string) wire.PeersReply {
	return wire.PeersReply{Server: name, Peers: b.Metrics().Peers().Snapshot()}
}

// heatRouter is the slice of the shard Router the heat surfaces use.
// Declared as an interface so the monolithic catalog degrades to a
// keys/objects-only reply.
type heatRouter interface {
	Statuses() []shard.Status
	Advise(rows []obs.HeatStat, now time.Time) shard.Plan
	LastPlan() *shard.Plan
}

func (s *Server) heat() wire.HeatReply {
	return heatOf(s.broker, s.name)
}

// heatOf builds the heat-observatory reply: top-K tables always; shard
// statuses and the advisor plan only when the catalog is sharded. The
// advisor job keeps a plan stored on the router; when none exists yet
// (job not wired, or first run pending) a fresh one is computed so the
// reply is never planless on a sharded catalog.
func heatOf(b *core.Broker, name string) wire.HeatReply {
	reg := b.Metrics()
	rep := wire.HeatReply{
		Server:  name,
		Keys:    reg.HeatKeys().Snapshot(),
		Objects: reg.HeatObjects().Snapshot(),
	}
	if rt, ok := b.Cat.(heatRouter); ok {
		rep.Shards = rt.Statuses()
		p := rt.LastPlan()
		if p == nil {
			fresh := rt.Advise(rep.Keys, time.Now())
			p = &fresh
		}
		rep.Plan = p
	}
	return rep
}
