// Package server implements srbd, the federated SRB server: it exposes
// the broker over the wire protocol, authenticates users and zone peers
// with challenge–response, and federates access to data held by other
// servers — by proxying bytes or by redirecting the client, the paper's
// "users can connect to any SRB server to access data from any other
// SRB server" (§3.1).
//
// As in SRB 1.x, a federation shares one MCAT: every server is built
// over the same catalog, while each server mounts drivers only for the
// resources it owns (types.Resource.Server names the owner).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/core"
	"gosrb/internal/obs"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// FederationMode selects how non-local data is served.
type FederationMode int

const (
	// Proxy relays the bytes through this server.
	Proxy FederationMode = iota
	// Redirect tells the client to reconnect to the owning server.
	Redirect
)

// Server is one srbd instance.
type Server struct {
	broker *core.Broker
	authn  *auth.Authenticator
	name   string
	mode   FederationMode

	mu    sync.RWMutex
	peers map[string]peer // server name -> address + secret

	tickets *auth.TicketStore

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	admin     *adminServer
	// Logger receives connection and operation errors with op,
	// remote-addr and trace-ID context. Defaults to stderr at LevelError
	// so failures are never silently swallowed; srbd raises it to
	// LevelInfo (or back down with -quiet).
	Logger *obs.Logger
}

type peer struct {
	addr   string
	secret string
}

// New returns a server over the broker. name must match the broker's
// server name so resource ownership resolves consistently.
func New(b *core.Broker, a *auth.Authenticator, mode FederationMode) *Server {
	return &Server{
		broker:  b,
		authn:   a,
		name:    b.ServerName(),
		mode:    mode,
		peers:   make(map[string]peer),
		tickets: auth.NewTicketStore(),
		closed:  make(chan struct{}),
		Logger:  obs.NewLogger(os.Stderr, b.ServerName(), obs.LevelError),
	}
}

// Name returns the server's federation name.
func (s *Server) Name() string { return s.name }

// Tickets exposes the server's delegated-access ticket store.
func (s *Server) Tickets() *auth.TicketStore { return s.tickets }

// AddPeer registers a federated peer and the shared zone secret used
// for server-to-server authentication.
func (s *Server) AddPeer(name, addr, secret string) {
	s.mu.Lock()
	s.peers[name] = peer{addr: addr, secret: secret}
	s.mu.Unlock()
	s.authn.RegisterPeer(name, secret)
}

// PeerAddr resolves a peer's address.
func (s *Server) PeerAddr(name string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.peers[name]
	return p.addr, ok
}

// Listen starts accepting connections on addr ("host:0" picks a port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener (and the admin endpoint, when serving) and
// waits for active connections to finish. It is safe to call more than
// once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.ln != nil {
			err = s.ln.Close()
		}
		s.closeAdmin()
		s.wg.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.Logger.Errorf("accept: %v", err)
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handleConn(conn); err != nil && !errors.Is(err, io.EOF) {
				s.Logger.Errorf("conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// session is the authenticated state of one connection.
type session struct {
	user   string // authenticated end user, or "" on peer connections
	peer   string // authenticated peer server, or ""
	isPeer bool
	remote string // remote address, for log and trace context
	// opErr records the handler error of the request being dispatched
	// (connections are served by one goroutine, so this is race-free);
	// the dispatch shim reads it to attribute errors to the op's
	// metrics, span record and log line.
	opErr error
}

// fail reports a handler failure to the client and records it for the
// dispatch shim.
func (ss *session) fail(c *wire.Conn, err error) error {
	ss.opErr = err
	return replyErr(c, err)
}

// effectiveUser resolves the user an operation runs as.
func (ss *session) effectiveUser(req *wire.Request) (string, error) {
	if ss.isPeer {
		if req.OnBehalf == "" {
			return "", types.E(req.Op, "", types.ErrAuth)
		}
		return req.OnBehalf, nil
	}
	return ss.user, nil
}

func (s *Server) handleConn(nc net.Conn) error {
	c := wire.NewConn(nc)
	ss, err := s.handshake(c)
	if err != nil {
		return err
	}
	ss.remote = nc.RemoteAddr().String()
	for {
		var req wire.Request
		if err := c.ReadJSON(wire.MsgRequest, &req); err != nil {
			return err
		}
		if err := s.dispatch(c, ss, &req); err != nil {
			return err
		}
	}
}

// handshake runs challenge–response authentication.
func (s *Server) handshake(c *wire.Conn) (*session, error) {
	nonce, err := auth.NewChallenge()
	if err != nil {
		return nil, err
	}
	if err := c.WriteJSON(wire.MsgChallenge, wire.Challenge{Server: s.name, Nonce: nonce}); err != nil {
		return nil, err
	}
	var a wire.Auth
	if err := c.ReadJSON(wire.MsgAuth, &a); err != nil {
		return nil, err
	}
	ss := &session{}
	switch {
	case a.Peer != "":
		if !s.authn.VerifyPeer(a.Peer, nonce, a.Response) {
			c.WriteJSON(wire.MsgResponse, wire.ErrResponse(types.E("auth", a.Peer, types.ErrAuth)))
			return nil, types.E("auth", a.Peer, types.ErrAuth)
		}
		ss.peer, ss.isPeer = a.Peer, true
	default:
		if !s.authn.VerifyUser(a.User, nonce, a.Response) {
			c.WriteJSON(wire.MsgResponse, wire.ErrResponse(types.E("auth", a.User, types.ErrAuth)))
			return nil, types.E("auth", a.User, types.ErrAuth)
		}
		ss.user = a.User
	}
	return ss, c.WriteJSON(wire.MsgAuthOK, struct{ Server string }{s.name})
}

// reply sends a success response with body.
func reply(c *wire.Conn, body any) error {
	resp, err := wire.OkResponse(body, false)
	if err != nil {
		return err
	}
	return c.WriteJSON(wire.MsgResponse, resp)
}

// replyErr sends a failure response (protocol stays healthy).
func replyErr(c *wire.Conn, err error) error {
	return c.WriteJSON(wire.MsgResponse, wire.ErrResponse(err))
}

// replyData sends a success response announcing size, then the data.
func replyData(c *wire.Conn, data []byte) error {
	resp, err := wire.OkResponse(wire.SizeReply{Size: int64(len(data))}, true)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(wire.MsgResponse, resp); err != nil {
		return err
	}
	return c.SendData(bytes.NewReader(data))
}

// decode unmarshals request args.
func decode[T any](req *wire.Request) (T, error) {
	var v T
	if len(req.Args) == 0 {
		return v, nil
	}
	err := json.Unmarshal(req.Args, &v)
	return v, err
}

// localityOf classifies where a file object's clean replicas live:
// "" means local (or not a plain file), otherwise the owning peer name.
func (s *Server) localityOf(path string) string {
	o, err := s.broker.Cat.GetObject(path)
	if err != nil || o.Kind != types.KindFile {
		return ""
	}
	check := o
	if o.Container != "" {
		cont, err := s.broker.Cat.GetObject(o.Container)
		if err != nil {
			return ""
		}
		check = cont
	}
	remote := ""
	for _, r := range check.Replicas {
		if r.Status != types.ReplicaClean {
			continue
		}
		res, err := s.broker.Cat.GetResource(r.Resource)
		if err != nil || !res.Online {
			continue
		}
		if res.Server == s.name || res.Server == "" {
			return "" // a local clean replica exists
		}
		remote = res.Server
	}
	return remote
}

// resourceOwner names the peer owning resource, or "" when local.
func (s *Server) resourceOwner(resource string) string {
	res, err := s.broker.Cat.GetResource(resource)
	if err != nil || res.Server == "" || res.Server == s.name {
		return ""
	}
	if res.Kind == types.ResourceLogical && len(res.Members) > 0 {
		m, err := s.broker.Cat.GetResource(res.Members[0])
		if err == nil && (m.Server == "" || m.Server == s.name) {
			return ""
		}
	}
	return res.Server
}

// federate serves a get-style request for data owned by peerName:
// proxy mode relays the bytes, redirect mode hands the client the
// owning server's address. The forwarded request keeps req.Trace, so
// the same trace ID lands in both servers' records.
func (s *Server) federate(c *wire.Conn, ss *session, peerName, user string, req *wire.Request) error {
	addr, ok := s.PeerAddr(peerName)
	if !ok {
		return ss.fail(c, types.E(req.Op, peerName, types.ErrOffline))
	}
	if s.mode == Redirect {
		return c.WriteJSON(wire.MsgRedirect, wire.Redirect{Server: peerName, Addr: addr})
	}
	data, err := s.proxyGet(peerName, addr, user, req)
	if err != nil {
		return ss.fail(c, err)
	}
	return replyData(c, data)
}

// proxyGet relays a data-returning request to a peer over a
// peer-authenticated connection.
func (s *Server) proxyGet(peerName, addr, user string, req *wire.Request) ([]byte, error) {
	s.mu.RLock()
	secret := s.peers[peerName].secret
	s.mu.RUnlock()
	pc, err := dialPeer(addr, s.name, secret)
	if err != nil {
		return nil, types.E(req.Op, peerName, err)
	}
	defer pc.close()
	fwd := *req
	fwd.OnBehalf = user
	return pc.roundTripData(&fwd)
}

// proxyCall relays a non-data request to a peer.
func (s *Server) proxyCall(peerName, user string, req *wire.Request) (json.RawMessage, error) {
	addr, ok := s.PeerAddr(peerName)
	if !ok {
		return nil, types.E(req.Op, peerName, types.ErrOffline)
	}
	s.mu.RLock()
	secret := s.peers[peerName].secret
	s.mu.RUnlock()
	pc, err := dialPeer(addr, s.name, secret)
	if err != nil {
		return nil, types.E(req.Op, peerName, err)
	}
	defer pc.close()
	fwd := *req
	fwd.OnBehalf = user
	return pc.roundTrip(&fwd)
}

// peerConn is a minimal peer-authenticated client used for proxying.
type peerConn struct {
	nc net.Conn
	c  *wire.Conn
}

func dialPeer(addr, selfName, secret string) (*peerConn, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := wire.NewConn(nc)
	var ch wire.Challenge
	if err := c.ReadJSON(wire.MsgChallenge, &ch); err != nil {
		nc.Close()
		return nil, err
	}
	resp := auth.Respond(auth.DeriveKey("peer:"+selfName, secret), ch.Nonce)
	if err := c.WriteJSON(wire.MsgAuth, wire.Auth{Peer: selfName, Response: resp}); err != nil {
		nc.Close()
		return nil, err
	}
	var ok struct{ Server string }
	if err := c.ReadJSON(wire.MsgAuthOK, &ok); err != nil {
		nc.Close()
		return nil, types.E("peerauth", addr, types.ErrAuth)
	}
	return &peerConn{nc: nc, c: c}, nil
}

func (p *peerConn) close() { p.nc.Close() }

func (p *peerConn) roundTrip(req *wire.Request) (json.RawMessage, error) {
	if err := p.c.WriteJSON(wire.MsgRequest, req); err != nil {
		return nil, err
	}
	var resp wire.Response
	if err := p.c.ReadJSON(wire.MsgResponse, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, resp.Err()
	}
	return resp.Body, nil
}

func (p *peerConn) roundTripData(req *wire.Request) ([]byte, error) {
	if err := p.c.WriteJSON(wire.MsgRequest, req); err != nil {
		return nil, err
	}
	var resp wire.Response
	if err := p.c.ReadJSON(wire.MsgResponse, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, resp.Err()
	}
	if !resp.DataFollows {
		return nil, types.E(req.Op, "", types.ErrInvalid)
	}
	var buf bytes.Buffer
	if _, err := p.c.RecvData(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// roundTripIngest relays an ingest (request, then data, then response).
func (p *peerConn) roundTripIngest(req *wire.Request, data []byte) (json.RawMessage, error) {
	if err := p.c.WriteJSON(wire.MsgRequest, req); err != nil {
		return nil, err
	}
	if err := p.c.SendData(bytes.NewReader(data)); err != nil {
		return nil, err
	}
	var resp wire.Response
	if err := p.c.ReadJSON(wire.MsgResponse, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, resp.Err()
	}
	return resp.Body, nil
}

// parseLockKind maps wire lock names.
func parseLockKind(s string) (types.LockKind, error) {
	switch strings.ToLower(s) {
	case "shared":
		return types.LockShared, nil
	case "exclusive":
		return types.LockExclusive, nil
	default:
		return types.LockNone, types.E("lock", s, types.ErrInvalid)
	}
}

// Stats builds the server stats reply.
func (s *Server) stats() wire.StatsReply {
	st := s.broker.Cat.Stats()
	return wire.StatsReply{
		Server: s.name, Objects: st.Objects, Collections: st.Collections,
		Resources: st.Resources, Users: st.Users,
	}
}

// Telemetry snapshots the broker registry for the OpStats wire op, the
// admin /metrics endpoint and the MySRB status page. Audit-ring drops
// are folded in as a gauge just before snapshotting so every exposure
// path reports them.
func (s *Server) Telemetry() wire.OpStatsReply {
	reg := s.broker.Metrics()
	reg.Gauge("audit.dropped").Set(s.broker.Cat.Audit.Dropped())
	return wire.OpStatsReply{Server: s.name, Snapshot: reg.Snapshot()}
}
