package server

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"gosrb/internal/client"
	"gosrb/internal/resilience"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// seedRemote puts one object on disk2 (owned by srb2) through srb2
// directly, so reads through srb1 must federate.
func seedRemote(z *zone, path string, data []byte) {
	z.t.Helper()
	// Dial directly and close right away: a lingering conn would make a
	// later mid-test s2.Close() wait on its handler forever.
	cl, err := client.Dial(z.addr2, "alice", "alicepw")
	if err != nil {
		z.t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Put(path, data, client.PutOpts{Resource: "disk2"}); err != nil {
		z.t.Fatal(err)
	}
}

// oneShot makes a client fail immediately instead of masking server
// behavior with its own retries.
func oneShot(cl *client.Client) {
	cl.SetRetryPolicy(resilience.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
}

// TestFederationBreakerTripsOnDeadPeer: once srb2 dies, srb1's dial
// failures trip the peer breaker; further reads fast-fail without
// touching the network.
func TestFederationBreakerTripsOnDeadPeer(t *testing.T) {
	z := newZone(t, Proxy)
	seedRemote(z, "/home/remote.txt", []byte("on disk2"))

	cl := z.client(z.addr1, "alice", "alicepw")
	oneShot(cl)
	if data, err := cl.Get("/home/remote.txt"); err != nil || string(data) != "on disk2" {
		t.Fatalf("federated get = %q, %v", data, err)
	}

	z.b1.Breakers().SetConfig(resilience.BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	z.s1.SetRetryPolicy(resilience.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	z.s1.sleep = func(time.Duration) {}
	z.s2.Close()

	for i := 0; i < 2; i++ {
		if _, err := cl.Get("/home/remote.txt"); err == nil {
			t.Fatal("get must fail while the peer is down")
		}
	}
	if st := z.s1.peerBreaker("srb2").State(); st != resilience.Open {
		t.Fatalf("peer breaker = %v, want Open after repeated dial failures", st)
	}

	// Open breaker: the next read fails fast, counted, offline-shaped.
	before := z.b1.Metrics().Counter("federation.fastfail").Value()
	_, err := cl.Get("/home/remote.txt")
	if !errors.Is(err, types.ErrOffline) {
		t.Fatalf("fast-fail err = %v, want offline", err)
	}
	if got := z.b1.Metrics().Counter("federation.fastfail").Value(); got != before+1 {
		t.Errorf("federation.fastfail = %d, want %d", got, before+1)
	}
}

// TestFederationRetriesFlakyDial: a dial that fails once is absorbed
// by the federation retrier; the client sees success and the retry
// counter records the recovery.
func TestFederationRetriesFlakyDial(t *testing.T) {
	z := newZone(t, Proxy)
	seedRemote(z, "/home/flaky.txt", []byte("eventually"))

	var dials atomic.Int64
	z.s1.SetPeerDialer(func(addr string) (net.Conn, error) {
		if dials.Add(1) == 1 {
			return nil, io.ErrUnexpectedEOF
		}
		return net.DialTimeout("tcp", addr, time.Second)
	})
	z.s1.SetRetryPolicy(resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	z.s1.sleep = func(time.Duration) {}

	cl := z.client(z.addr1, "alice", "alicepw")
	oneShot(cl)
	data, err := cl.Get("/home/flaky.txt")
	if err != nil || string(data) != "eventually" {
		t.Fatalf("get through flaky dial = %q, %v", data, err)
	}
	if got := z.b1.Metrics().Counter("federation.retries").Value(); got < 1 {
		t.Errorf("federation.retries = %d, want >= 1", got)
	}
	if st := z.s1.peerBreaker("srb2").State(); st != resilience.Closed {
		t.Errorf("peer breaker = %v, want Closed after recovery", st)
	}
}

// TestLocalityFailoverOnTrippedResource: a clean local replica whose
// resource breaker is open no longer pins the read locally — srb1
// routes it to the surviving replica's owner.
func TestLocalityFailoverOnTrippedResource(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl.Put("/home/both.txt", []byte("replicated"), client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Replicate("/home/both.txt", "disk2"); err != nil {
		t.Fatal(err)
	}

	// Healthy local resource: the read is served by srb1 itself.
	srb2Gets := func() int64 { return z.b2.Metrics().Op("server." + wire.OpGet).Count() }
	before := srb2Gets()
	if data, err := cl.Get("/home/both.txt"); err != nil || string(data) != "replicated" {
		t.Fatalf("local get = %q, %v", data, err)
	}
	if got := srb2Gets(); got != before {
		t.Fatalf("healthy local read reached srb2 (%d gets)", got)
	}

	// Trip disk1's breaker: same read now federates to srb2.
	z.b1.Breakers().SetConfig(resilience.BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	z.b1.Breakers().For("resource.disk1").Failure()
	before = srb2Gets()
	if data, err := cl.Get("/home/both.txt"); err != nil || string(data) != "replicated" {
		t.Fatalf("failover get = %q, %v", data, err)
	}
	if got := srb2Gets(); got != before+1 {
		t.Errorf("srb2 server.get count = %d, want %d (read must federate)", got, before+1)
	}
}

// TestShrinkBudget: the remaining time budget shrinks per federation
// hop and an exhausted budget fails before touching the wire.
func TestShrinkBudget(t *testing.T) {
	req := &wire.Request{Op: wire.OpGet, TimeoutMillis: 9999}
	if err := shrinkBudget(req, time.Time{}); err != nil || req.TimeoutMillis != 9999 {
		t.Fatalf("no deadline: err=%v, budget=%d (must be untouched)", err, req.TimeoutMillis)
	}

	if err := shrinkBudget(req, time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if req.TimeoutMillis <= 0 || req.TimeoutMillis > 2000 {
		t.Errorf("shrunk budget = %dms, want (0, 2000]", req.TimeoutMillis)
	}

	if err := shrinkBudget(req, time.Now().Add(-time.Second)); !errors.Is(err, types.ErrTimeout) {
		t.Errorf("expired deadline: err = %v, want ErrTimeout", err)
	}
}
