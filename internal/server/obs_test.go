package server

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gosrb/internal/audit"
	"gosrb/internal/client"
	"gosrb/internal/obs"
)

// traceIDs collects the trace IDs recorded for op on one server.
func traceIDs(s *Server, op string) map[string]bool {
	out := make(map[string]bool)
	for _, rec := range s.broker.Metrics().Traces().Recent(0) {
		if rec.Op == op {
			out[rec.Trace] = true
		}
	}
	return out
}

// TestTraceSpansFederation proves end-to-end trace propagation: a Get
// served by proxy must appear under the same trace ID in the origin
// server's span records and in the owning peer's.
func TestTraceSpansFederation(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl.Put("/home/traced.dat", []byte("follow me"), client.PutOpts{Resource: "disk2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("/home/traced.dat"); err != nil {
		t.Fatal(err)
	}
	ids1 := traceIDs(z.s1, "get")
	ids2 := traceIDs(z.s2, "get")
	if len(ids1) == 0 || len(ids2) == 0 {
		t.Fatalf("missing get spans: srb1=%d srb2=%d", len(ids1), len(ids2))
	}
	shared := false
	for id := range ids1 {
		if ids2[id] {
			shared = true
			break
		}
	}
	if !shared {
		t.Errorf("no shared trace ID across the proxy hop: srb1=%v srb2=%v", ids1, ids2)
	}
}

// TestTraceSpansRedirect checks the other federation mode: the client
// keeps its trace ID when it reconnects to the owning server, so both
// servers record the same ID even though the bytes never proxied.
func TestTraceSpansRedirect(t *testing.T) {
	z := newZone(t, Redirect)
	cl2 := z.client(z.addr2, "alice", "alicepw")
	if _, err := cl2.Put("/home/rt.dat", []byte("x"), client.PutOpts{Resource: "disk2"}); err != nil {
		t.Fatal(err)
	}
	cl1 := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl1.Get("/home/rt.dat"); err != nil {
		t.Fatal(err)
	}
	ids1 := traceIDs(z.s1, "get")
	ids2 := traceIDs(z.s2, "get")
	shared := false
	for id := range ids1 {
		if ids2[id] {
			shared = true
		}
	}
	if !shared {
		t.Errorf("redirect should keep the trace ID: srb1=%v srb2=%v", ids1, ids2)
	}
}

// TestOpStatsOverWire drives a mix of operations and checks the
// telemetry snapshot the OpStats wire op returns: per-op counts and
// quantiles, per-driver byte totals, and the audit-drop gauge.
func TestOpStatsOverWire(t *testing.T) {
	z := newZone(t, Proxy)
	// A tiny audit ring forces wraparound so drops show up in the gauge.
	z.cat.Audit = audit.New(4)
	cl := z.client(z.addr1, "alice", "alicepw")
	payload := []byte("telemetry payload")
	for i := 0; i < 5; i++ {
		path := "/home/obs" + string(rune('a'+i)) + ".dat"
		if _, err := cl.Put(path, payload, client.PutOpts{Resource: "disk1"}); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Get(path); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.OpStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server != "srb1" {
		t.Errorf("server = %q", st.Server)
	}
	s := st.Snapshot
	for _, op := range []string{"server.get", "server.ingest", "broker.get", "broker.ingest"} {
		o, ok := s.Ops[op]
		if !ok || o.Count < 5 {
			t.Errorf("op %s count = %+v, want >= 5", op, o)
		}
		if o.Count > 0 && o.P50Micros <= 0 {
			t.Errorf("op %s has no latency quantiles: %+v", op, o)
		}
	}
	wantBytes := int64(5 * len(payload))
	if got := s.Counters["storage.disk1.bytes_in"]; got < wantBytes {
		t.Errorf("disk1 bytes_in = %d, want >= %d", got, wantBytes)
	}
	if got := s.Counters["storage.disk1.bytes_out"]; got < wantBytes {
		t.Errorf("disk1 bytes_out = %d, want >= %d", got, wantBytes)
	}
	drops, ok := s.Gauges["audit.dropped"]
	if !ok {
		t.Fatal("audit.dropped gauge missing from snapshot")
	}
	if drops != z.cat.Audit.Dropped() || drops <= 0 {
		t.Errorf("audit.dropped = %d (log says %d)", drops, z.cat.Audit.Dropped())
	}
}

// TestAdminEndpoint exercises /metrics and /healthz and verifies the
// endpoint dies with the server (the shutdown satellite).
func TestAdminEndpoint(t *testing.T) {
	z := newZone(t, Proxy)
	// Close (below) waits for live connections, so manage this client
	// by hand rather than via the cleanup-scoped helper.
	cl, err := client.Dial(z.addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("/home/adm.dat", []byte("x"), client.PutOpts{Resource: "disk1"}); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	cl.Close()
	addr, err := z.s1.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	metrics := get("/metrics?format=text")
	for _, want := range []string{"broker.ingest.count", "server.ingest.p50_us", "storage.disk1.bytes_in", "audit.dropped", "uptime_seconds"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics?format=text missing %q:\n%s", want, metrics)
		}
	}
	// The default exposition is Prometheus text format.
	prom := get("/metrics")
	for _, want := range []string{
		"# TYPE srb_uptime_seconds gauge",
		"# TYPE srb_server_ingest_duration_seconds histogram",
		"srb_server_ingest_ops_total 1",
		`_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%.800s", want, prom)
		}
	}
	if hz := get("/healthz"); !strings.Contains(hz, "ok srb1") {
		t.Errorf("/healthz = %q", hz)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index looks wrong: %.80s", idx)
	}
	z.s1.Close()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("admin endpoint still serving after Close")
	}
}

// TestDispatchMetricsConcurrent hammers one server's registry from many
// client connections at once; run under -race it doubles as the data
// race check for the whole instrumentation path (dispatch spans, broker
// ops, storage byte counters, trace ring).
func TestDispatchMetricsConcurrent(t *testing.T) {
	z := newZone(t, Proxy)
	const workers, iters = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(z.addr1, "alice", "alicepw")
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			path := "/home/conc" + string(rune('a'+w)) + ".dat"
			if _, err := cl.Put(path, []byte("c"), client.PutOpts{Resource: "disk1"}); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				if _, err := cl.Get(path); err != nil {
					t.Error(err)
					return
				}
				if _, err := cl.OpStats(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := z.b1.Metrics().Op("server.get").Count()
	if want := int64(workers * iters); got != want {
		t.Errorf("server.get count = %d, want %d", got, want)
	}
}

// TestServerLoggerLevels checks the leveled logger default: errors are
// logged, per-op detail stays off until raised.
func TestServerLoggerLevels(t *testing.T) {
	z := newZone(t, Proxy)
	var buf strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.WriteString(string(p))
	})
	z.s1.Logger = obs.NewLogger(w, "srb1", obs.LevelInfo)
	cl := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl.Get("/home/missing.dat"); err == nil {
		t.Fatal("expected notfound")
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "op get") || !strings.Contains(out, "trace=") || !strings.Contains(out, "remote=") {
		t.Errorf("error log missing op/remote/trace context: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
