package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"gosrb/internal/audit"

	"gosrb/internal/core"

	"gosrb/internal/acl"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/obs"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// dispatch times one wire operation under a span: a missing trace ID is
// minted here (this server originates the request), an inbound one is
// kept — proxied requests carry it onward, so one user action shows up
// under the same ID on every federation hop. The outcome (handler error
// via ss.fail, or transport error) is attributed to the per-op metrics,
// the trace ring and the log.
func (s *Server) dispatch(ss *session, req *wire.Request) error {
	if req.Trace == "" {
		req.Trace = obs.NewTraceID()
	}
	ss.opErr = nil
	ss.acctUser = ""
	ss.bytesIn, ss.bytesOut = 0, 0
	// The request's time budget starts counting here; federation hops
	// forward only what remains of it.
	ss.deadline = time.Time{}
	if req.TimeoutMillis > 0 {
		ss.deadline = time.Now().Add(time.Duration(req.TimeoutMillis) * time.Millisecond)
	}
	// The caller's span ID (set by a federating server, never by a plain
	// client) becomes this span's parent, so every hop's record
	// reassembles into one tree. A positive Attempt marks a client-side
	// retry of the same logical call.
	sp := obs.StartSpanFrom(req.Trace, req.Span, req.Op)
	var queueWait time.Duration
	if !ss.enqueued.IsZero() {
		// Pipelined request: backdate the span to when the reader loop
		// enqueued it, so queue.wait + dispatch partition the span's wall
		// clock exactly and queue pressure shows up in the trace, not as
		// mystery latency before it.
		queueWait = time.Since(ss.enqueued)
		sp.Start = ss.enqueued
		sp.Phase(obs.PhaseQueueWait, queueWait)
	}
	ss.span = sp
	if req.Attempt > 0 {
		sp.Event(obs.EventRetry, fmt.Sprintf("client attempt %d", req.Attempt+1))
	}
	err := s.dispatchOp(ss, req)
	opErr := ss.opErr
	if opErr == nil {
		opErr = err
	}
	reg := s.broker.Metrics()
	if ss.expired() {
		reg.Counter("server.deadline.exceeded").Inc()
		sp.Event(obs.EventDeadline, "budget exhausted")
	}
	elapsed := sp.Elapsed()
	sp.Phase(obs.PhaseDispatch, elapsed-queueWait)
	reg.Op("server."+req.Op).Observe(elapsed, opErr)
	sp.End(reg.Traces(), s.name, ss.remote, opErr)
	reg.RecordPhases("server", req.Op, req.Trace, sp.Events())
	ss.span = nil
	if ss.acctUser != "" {
		reg.Usage().Record(ss.acctUser, collectionOf(req.Args), req.Trace, req.Op,
			opErr != nil, ss.bytesIn, ss.bytesOut, elapsed)
	}
	if thr := time.Duration(s.slowOp.Load()); thr > 0 && elapsed >= thr {
		// Outlier: log the whole local span tree while the ring still
		// holds it, so the slow hop's causes (retries, breaker trips,
		// failovers) are in the log even if nobody fetches the trace.
		reg.Counter("server.slowops").Inc()
		var tree strings.Builder
		obs.WriteTree(&tree, obs.AssembleTree(reg.Traces().ForTrace(req.Trace)))
		s.Logger.Infof("slow op %s took %s (threshold %s) trace=%s\n%s",
			req.Op, elapsed, thr, req.Trace, tree.String())
	}
	if opErr != nil {
		s.Logger.Infof("op %s user=%s remote=%s trace=%s: %v",
			req.Op, ss.user+ss.peer, ss.remote, req.Trace, opErr)
	} else {
		s.Logger.Debugf("op %s user=%s remote=%s trace=%s ok",
			req.Op, ss.user+ss.peer, ss.remote, req.Trace)
	}
	return err
}

// dispatchOp executes one request and writes exactly one response (or a
// redirect). Handler errors are turned into error responses; only
// transport failures propagate and drop the connection.
func (s *Server) dispatchOp(ss *session, req *wire.Request) error {
	user, err := ss.effectiveUser(req)
	if err != nil {
		return ss.fail(err)
	}
	// Every resolved request is accounted to its effective user (the
	// asserted end user on peer hops), keyed by the op's collection.
	ss.acctUser = user
	// A request whose budget already ran out (it sat queued behind a
	// slow one, or a hop forwarded a sliver) fails before any work.
	// Ops that stream inbound data are exempt here: their data frames
	// were already drained to keep the protocol healthy, so their
	// handlers run and the deadline is enforced on the federation hop
	// instead.
	if !wire.StreamsIn(req.Op) && ss.expired() {
		return ss.fail(types.E(req.Op, "", types.ErrTimeout))
	}
	b := s.broker
	switch req.Op {
	case wire.OpMkdir:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Mkdir(user, a.Path); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpRmColl:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.RmColl(user, a.Path); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpList:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		stats, err := b.List(user, a.Path)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(stats)

	case wire.OpStat:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		st, err := b.StatPath(user, a.Path)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(st)

	case wire.OpGetObject:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		o, err := b.Cat.GetObject(a.Path)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(o)

	case wire.OpIngest:
		a, err := decode[wire.IngestArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		var buf bytes.Buffer
		n, err := ss.recvData(&buf)
		if err != nil {
			return err // transport failure
		}
		ss.bytesIn += n
		// A remote target resource federates by proxy: the owning
		// server performs the ingest.
		if owner := s.resourceOwner(a.Resource); owner != "" && !ss.isPeer {
			body, err := s.proxyIngest(owner, user, req, buf.Bytes(), ss.deadline, ss.span)
			if err != nil {
				return ss.fail(err)
			}
			return ss.rawReply(body)
		}
		opts := toIngestOpts(a, buf.Bytes())
		opts.Span = ss.span
		o, err := b.Ingest(user, opts)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(o)

	case wire.OpReingest:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		var buf bytes.Buffer
		n, err := ss.recvData(&buf)
		if err != nil {
			return err
		}
		ss.bytesIn += n
		if err := b.Reingest(user, a.Path, buf.Bytes()); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpGet:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		// A valid ticket lets the holder read with the issuer's
		// authority — delegated access independent of ACL grants.
		if req.Ticket != "" {
			level, issuer, terr := s.tickets.Redeem(req.Ticket, a.Path)
			if terr != nil {
				return ss.fail(terr)
			}
			if l, lerr := acl.ParseLevel(level); lerr == nil && l >= acl.Read {
				user = issuer
			}
		}
		if owner := s.localityOf(a.Path); owner != "" && !ss.isPeer {
			return s.federate(ss, owner, user, req)
		}
		data, err := b.GetTraced(user, a.Path, ss.span)
		if err != nil {
			return ss.fail(err)
		}
		return ss.replyData(data)

	case wire.OpIssueTicket:
		a, err := decode[wire.TicketArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		// Only a user holding Own may delegate access to a path.
		if b.Cat.EffectiveLevel(a.Path, user) < acl.Own {
			return ss.fail(types.E("issueticket", a.Path, types.ErrPermission))
		}
		if _, err := acl.ParseLevel(a.Level); err != nil {
			return ss.fail(types.E("issueticket", a.Level, types.ErrInvalid))
		}
		ttl := time.Duration(a.TTLSeconds) * time.Second
		if ttl <= 0 {
			ttl = time.Hour
		}
		tk, err := s.tickets.Issue(user, a.Path, a.Level, a.Uses, time.Now().Add(ttl))
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(wire.TicketReply{ID: tk.ID})

	case wire.OpReadRange:
		a, err := decode[wire.RangeArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if owner := s.localityOf(a.Path); owner != "" && !ss.isPeer {
			return s.federate(ss, owner, user, req)
		}
		data, err := s.readRange(user, a)
		if err != nil {
			return ss.fail(err)
		}
		return ss.replyData(data)

	case wire.OpReplicate:
		a, err := decode[wire.ReplicateArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		rep, err := s.handleReplicate(user, ss, a)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(rep)

	case wire.OpIngestReplica:
		a, err := decode[wire.ReplicateArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		var buf bytes.Buffer
		n, err := ss.recvData(&buf)
		if err != nil {
			return err
		}
		ss.bytesIn += n
		rep, err := b.IngestReplica(user, a.Path, a.Resource, buf.Bytes())
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(rep)

	case wire.OpDelete:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Delete(user, a.Path); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpDeleteReplica:
		a, err := decode[wire.ReplicaArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.DeleteReplica(user, a.Path, types.ReplicaNumber(a.Number)); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpMove:
		a, err := decode[wire.MoveArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Move(user, a.Src, a.Dst); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpCopy:
		a, err := decode[wire.CopyArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Copy(user, a.Src, a.Dst, a.Resource); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpLink:
		a, err := decode[wire.LinkArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Link(user, a.Target, a.LinkPath); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpAddMeta:
		a, err := decode[wire.MetaArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.AddMeta(user, a.Path, types.MetaClass(a.Class), a.AVU); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpGetMeta:
		a, err := decode[wire.GetMetaArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		avus, err := b.GetMeta(user, a.Path, types.MetaClass(a.Class))
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(avus)

	case wire.OpAnnotate:
		a, err := decode[wire.AnnotateArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Annotate(user, a.Path, a.Ann); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpAnnotations:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		anns, err := b.Annotations(user, a.Path)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(anns)

	case wire.OpQuery:
		a, err := decode[wire.QueryArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		qstart := time.Now()
		hits, partial, err := b.QueryPartial(user, a.Q)
		if err != nil {
			return ss.fail(err)
		}
		// On a sharded catalog the whole call is the scatter-gather
		// fan-out; the router's own phase ops attribute the merge tail.
		if sh, ok := b.Cat.(interface{ N() int }); ok && sh.N() > 1 {
			ss.span.Phase(obs.PhaseShardFanout, time.Since(qstart))
		}
		return ss.reply(wire.QueryReply{Hits: hits, Partial: partial})

	case wire.OpQueryAttrs:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(b.QueryAttrNames(user, a.Path))

	case wire.OpChmod:
		a, err := decode[wire.ChmodArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		level, err := acl.ParseLevel(a.Level)
		if err != nil {
			return ss.fail(types.E("chmod", a.Level, types.ErrInvalid))
		}
		if err := b.Chmod(user, a.Path, a.Grantee, level); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpLock:
		a, err := decode[wire.LockArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		kind, err := parseLockKind(a.Kind)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Lock(user, a.Path, kind, time.Duration(a.TTLSeconds)*time.Second); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpUnlock:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Unlock(user, a.Path); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpPin:
		a, err := decode[wire.PinArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Pin(user, a.Path, a.Resource, time.Duration(a.TTLSeconds)*time.Second); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpUnpin:
		a, err := decode[wire.PinArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Unpin(user, a.Path, a.Resource); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpCheckout:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if err := b.Checkout(user, a.Path); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpCheckin:
		a, err := decode[wire.CheckinArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		var buf bytes.Buffer
		n, err := ss.recvData(&buf)
		if err != nil {
			return err
		}
		ss.bytesIn += n
		if err := b.Checkin(user, a.Path, buf.Bytes(), a.Comment); err != nil {
			return ss.fail(err)
		}
		return ss.reply(struct{}{})

	case wire.OpRegisterURL:
		a, err := decode[wire.RegisterURLArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		o, err := b.RegisterURL(user, a.Path, a.URL)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(o)

	case wire.OpRegisterSQL:
		a, err := decode[wire.RegisterSQLArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		o, err := b.RegisterSQL(user, a.Path, a.Spec)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(o)

	case wire.OpExecSQL:
		a, err := decode[wire.ExecSQLArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if owner := s.sqlOwner(a.Path); owner != "" && !ss.isPeer {
			return s.federate(ss, owner, user, req)
		}
		data, err := b.ExecuteSQL(user, a.Path, a.Suffix)
		if err != nil {
			return ss.fail(err)
		}
		return ss.replyData(data)

	case wire.OpInvoke:
		a, err := decode[wire.InvokeArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		data, err := b.InvokeMethod(user, a.Path, a.Args)
		if err != nil {
			return ss.fail(err)
		}
		return ss.replyData(data)

	case wire.OpMkContainer:
		a, err := decode[wire.ContainerArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		o, err := b.CreateContainer(user, a.Path, a.Resource)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(o)

	case wire.OpSyncContainer:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		n, err := b.SyncContainer(user, a.Path)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(wire.CountReply{N: n})

	case wire.OpExtract:
		a, err := decode[wire.ExtractArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		n, err := b.ExtractMeta(user, a.Path, a.Method, a.From)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(wire.CountReply{N: n})

	case wire.OpShadowList:
		a, err := decode[wire.ShadowArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		infos, err := b.ShadowList(user, a.Path, a.Rel)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(infos)

	case wire.OpShadowOpen:
		a, err := decode[wire.ShadowArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		data, err := b.ShadowOpen(user, a.Path, a.Rel)
		if err != nil {
			return ss.fail(err)
		}
		return ss.replyData(data)

	case wire.OpAddUser:
		a, err := decode[wire.AddUserArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if !b.Cat.IsAdmin(user) {
			return ss.fail(types.E("adduser", a.Name, types.ErrPermission))
		}
		if a.Name == "" || a.Password == "" {
			return ss.fail(types.E("adduser", a.Name, types.ErrInvalid))
		}
		domain := a.Domain
		if domain == "" {
			domain = "local"
		}
		if err := b.Cat.AddUser(types.User{Name: a.Name, Domain: domain, Admin: a.Admin}); err != nil {
			return ss.fail(err)
		}
		s.authn.Register(a.Name, a.Password)
		b.Cat.AuditLog().Op(user, "adduser", a.Name, true, domain)
		return ss.reply(struct{}{})

	case wire.OpAudit:
		a, err := decode[wire.AuditArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if !b.Cat.IsAdmin(user) {
			return ss.fail(types.E("audit", "", types.ErrPermission))
		}
		recs := b.Cat.AuditLog().Query(audit.Filter{User: a.User, Op: a.Op, Target: a.Target, Trace: a.Trace})
		if a.Limit > 0 && len(recs) > a.Limit {
			recs = recs[len(recs)-a.Limit:]
		}
		return ss.reply(recs)

	case wire.OpTrace:
		a, err := decode[wire.TraceArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		if a.ID == "" {
			return ss.fail(types.E("trace", "", types.ErrInvalid))
		}
		// Client-facing requests fan out to every peer so the reply
		// covers all hops of a federated operation; peer-forwarded
		// requests answer from the local ring only.
		return ss.reply(s.gatherTrace(user, a.ID, !ss.isPeer))

	case wire.OpUsage:
		a, err := decode[wire.UsageArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		entries := s.broker.Metrics().Usage().Snapshot()
		if a.User != "" || a.Collection != "" {
			kept := entries[:0]
			for _, e := range entries {
				if a.User != "" && e.User != a.User {
					continue
				}
				if a.Collection != "" && e.Collection != a.Collection {
					continue
				}
				kept = append(kept, e)
			}
			entries = kept
		}
		return ss.reply(wire.UsageReply{Server: s.name, Entries: entries})

	case wire.OpResources:
		return ss.reply(b.Cat.Resources())

	case wire.OpServerStats:
		return ss.reply(s.stats())

	case wire.OpOpStats:
		return ss.reply(s.Telemetry())

	case wire.OpRepairStatus:
		return ss.reply(s.repairStatus())

	case wire.OpShards:
		if _, err := decode[wire.ShardsArgs](req); err != nil {
			return ss.fail(err)
		}
		if rt, ok := b.Cat.(interface{ Statuses() []shard.Status }); ok {
			return ss.reply(wire.ShardsReply{Server: s.name, Shards: rt.Statuses()})
		}
		// Monolithic catalog: report the single implicit leader shard so
		// `srb shards` works against any daemon.
		st := b.Cat.Stats()
		return ss.reply(wire.ShardsReply{Server: s.name, Shards: []shard.Status{{
			Role: string(shard.Leader), Objects: st.Objects,
			Collections: st.Collections, MetaEntries: st.MetaEntries,
		}}})

	case wire.OpShardPull:
		a, err := decode[wire.ShardPullArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		// The replication stream exposes the whole catalog, so only
		// peer daemons and administrators may pull it.
		if !ss.isPeer && !b.Cat.IsAdmin(user) {
			return ss.fail(types.E("shardpull", "", types.ErrPermission))
		}
		rt, ok := b.Cat.(interface {
			Pull(int, uint64) (shard.PullResult, error)
		})
		if !ok {
			return ss.fail(types.E("shardpull", "", types.ErrUnsupported))
		}
		res, err := rt.Pull(a.Shard, a.After)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(wire.ShardPullReply{
			Server: s.name, Entries: res.Entries,
			Snapshot: res.Snapshot, Seq: res.Seq,
		})

	case wire.OpGridStat:
		a, err := decode[wire.GridStatArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		window := time.Duration(a.WindowSeconds) * time.Second
		// Client-facing requests fan out to every peer for the grid
		// view; peer-forwarded (or explicitly local) requests answer
		// from the local ring only, bounding the gather to one hop.
		fanout := !ss.isPeer && !a.LocalOnly
		return ss.reply(s.gatherGridStat(user, window, fanout, ss.deadline, ss.span))

	case wire.OpAlerts:
		if _, err := decode[wire.AlertsArgs](req); err != nil {
			return ss.fail(err)
		}
		return ss.reply(s.alerts())

	case wire.OpIncidents:
		if _, err := decode[wire.IncidentsArgs](req); err != nil {
			return ss.fail(err)
		}
		return ss.reply(s.incidents())

	case wire.OpIncidentGet:
		a, err := decode[wire.IncidentGetArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		rep, err := s.incidentGet(a.ID)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(rep)

	case wire.OpIncidentCapture:
		a, err := decode[wire.IncidentCaptureArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		rep, err := s.incidentCapture(a.Reason)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(rep)

	case wire.OpPeers:
		if _, err := decode[wire.PeersArgs](req); err != nil {
			return ss.fail(err)
		}
		return ss.reply(s.peersReply())

	case wire.OpHeat:
		if _, err := decode[wire.HeatArgs](req); err != nil {
			return ss.fail(err)
		}
		return ss.reply(s.heat())

	case wire.OpScrub:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		rpt, err := s.broker.Scrub(user, a.Path, ss.span)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(wire.ScrubReply{Server: s.name, Report: rpt})

	case wire.OpChecksum:
		a, err := decode[wire.PathArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		o, verdicts, err := s.broker.VerifyChecksums(user, a.Path)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(wire.ChecksumReply{Path: o.Path(), Checksum: o.Checksum, Verdicts: verdicts})

	case wire.OpBulkPut:
		a, err := decode[wire.BulkPutArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		var buf bytes.Buffer
		n, err := ss.recvData(&buf)
		if err != nil {
			return err
		}
		ss.bytesIn += n
		rep, err := s.handleBulkPut(user, ss, a, buf.Bytes(), req)
		if err != nil {
			return ss.fail(err)
		}
		return ss.reply(rep)

	case wire.OpMultiGet:
		a, err := decode[wire.MultiGetArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		rep, data := s.handleMultiGet(user, ss, a, req)
		return ss.replyDataBody(rep, data)

	case wire.OpBulkStat:
		a, err := decode[wire.BulkStatArgs](req)
		if err != nil {
			return ss.fail(err)
		}
		s.observeBatch(len(a.Paths))
		rep := wire.BulkStatReply{Server: s.name}
		for _, p := range a.Paths {
			item := wire.BulkStatItem{Path: p}
			if st, err := b.StatPath(user, p); err != nil {
				item.ErrKind, item.ErrMsg = wire.KindOf(err), err.Error()
			} else {
				item.OK, item.Stat = true, st
			}
			rep.Items = append(rep.Items, item)
		}
		return ss.reply(rep)

	default:
		return ss.fail(types.E(req.Op, "", types.ErrUnsupported))
	}
}

// observeBatch records a batch op's item count in the batch-size
// histogram (count encoded as microseconds in the pow-2 buckets).
func (s *Server) observeBatch(n int) {
	s.broker.Metrics().Op("server.batch.items").Observe(time.Duration(n)*time.Microsecond, nil)
}

// handleBulkPut ingests a batch in one round trip. The manifest must
// account for the whole data stream byte-for-byte; items then succeed
// or fail independently — each ingest is atomic per item, so a failed
// item writes no partial rows and cannot tear down its batch-mates.
// Items whose target resource lives on a peer are proxied item by item.
func (s *Server) handleBulkPut(user string, ss *session, a wire.BulkPutArgs, stream []byte, req *wire.Request) (wire.BulkPutReply, error) {
	rep := wire.BulkPutReply{Server: s.name}
	var total int64
	for _, it := range a.Items {
		if it.Size < 0 {
			return rep, types.E(wire.OpBulkPut, it.Path, types.ErrInvalid)
		}
		total += it.Size
	}
	if total != int64(len(stream)) {
		return rep, types.E(wire.OpBulkPut, "",
			fmt.Errorf("manifest declares %d bytes, stream carries %d: %w", total, len(stream), types.ErrInvalid))
	}
	s.observeBatch(len(a.Items))
	off := int64(0)
	for _, it := range a.Items {
		data := stream[off : off+it.Size : off+it.Size]
		off += it.Size
		st := wire.BulkItemStatus{Path: it.Path, OK: true}
		var err error
		if owner := s.resourceOwner(it.Resource); owner != "" && !ss.isPeer {
			ireq := &wire.Request{Op: wire.OpIngest, Trace: req.Trace}
			ireq.Args, err = jsonMarshal(wire.IngestArgs{
				Path: it.Path, Resource: it.Resource, Container: it.Container,
				DataType: it.DataType, Meta: it.Meta,
			})
			if err == nil {
				_, err = s.proxyIngest(owner, user, ireq, data, ss.deadline, ss.span)
			}
		} else {
			_, err = s.broker.Ingest(user, core.IngestOpts{
				Path: it.Path, Data: data, Resource: it.Resource,
				Container: it.Container, DataType: it.DataType, Meta: it.Meta,
			})
		}
		if err != nil {
			st.OK = false
			st.ErrKind, st.ErrMsg = wire.KindOf(err), err.Error()
		}
		rep.Results = append(rep.Results, st)
	}
	return rep, nil
}

// handleMultiGet fetches a batch of objects, concatenating successful
// items' bytes in request order (the reply manifest carries per-item
// sizes so the client can slice the stream back apart). Items fail
// independently; remote-owned items are proxied like a single get.
func (s *Server) handleMultiGet(user string, ss *session, a wire.MultiGetArgs, req *wire.Request) (wire.MultiGetReply, []byte) {
	rep := wire.MultiGetReply{Server: s.name}
	s.observeBatch(len(a.Paths))
	var out []byte
	for _, p := range a.Paths {
		item := wire.MultiGetItem{Path: p}
		var data []byte
		var err error
		if owner := s.localityOf(p); owner != "" && !ss.isPeer {
			greq := &wire.Request{Op: wire.OpGet, Trace: req.Trace}
			greq.Args, err = jsonMarshal(wire.PathArgs{Path: p})
			if err == nil {
				if addr, ok := s.PeerAddr(owner); ok {
					data, err = s.proxyGet(owner, addr, user, greq, ss.deadline, ss.span)
				} else {
					err = types.E(wire.OpGet, owner, types.ErrOffline)
				}
			}
		} else {
			data, err = s.broker.GetTraced(user, p, ss.span)
		}
		if err != nil {
			item.ErrKind, item.ErrMsg = wire.KindOf(err), err.Error()
		} else {
			item.OK, item.Size = true, int64(len(data))
			out = append(out, data...)
		}
		rep.Items = append(rep.Items, item)
	}
	return rep, out
}

// toIngestOpts converts wire args.
func toIngestOpts(a wire.IngestArgs, data []byte) core.IngestOpts {
	return core.IngestOpts{
		Path: a.Path, Data: data, Resource: a.Resource,
		Container: a.Container, DataType: a.DataType, Meta: a.Meta,
	}
}

// readRange serves the parallel-transfer primitive.
func (s *Server) readRange(user string, a wire.RangeArgs) ([]byte, error) {
	f, size, err := s.broker.OpenRead(user, a.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	length := a.Length
	if length < 0 || a.Offset+length > size {
		length = size - a.Offset
	}
	if length <= 0 {
		return nil, nil
	}
	buf := make([]byte, length)
	n, err := f.ReadAt(buf, a.Offset)
	if err != nil && n == 0 {
		return nil, types.E("readrange", a.Path, err)
	}
	return buf[:n], nil
}

// handleReplicate performs a replication that may cross server
// boundaries: source bytes are fetched from wherever a clean replica
// lives, and the owning server of the target resource stores the copy.
func (s *Server) handleReplicate(user string, ss *session, a wire.ReplicateArgs) (types.Replica, error) {
	targetOwner := s.resourceOwner(a.Resource)
	sourceOwner := s.localityOf(a.Path)
	if targetOwner == "" && sourceOwner == "" {
		// Fully local.
		return s.broker.Replicate(user, a.Path, a.Resource)
	}
	if ss.isPeer {
		// Peers only delegate the final local step; refuse loops.
		return types.Replica{}, types.E("replicate", a.Path, types.ErrInvalid)
	}
	// Obtain the source bytes: locally when possible, else via the
	// holder.
	var data []byte
	var err error
	if sourceOwner == "" {
		data, err = s.broker.Get(user, a.Path)
	} else {
		req := &wire.Request{Op: wire.OpGet}
		req.Args, _ = jsonMarshal(wire.PathArgs{Path: a.Path})
		addr, ok := s.PeerAddr(sourceOwner)
		if !ok {
			return types.Replica{}, types.E("replicate", sourceOwner, types.ErrOffline)
		}
		data, err = s.proxyGet(sourceOwner, addr, user, req, ss.deadline, ss.span)
	}
	if err != nil {
		return types.Replica{}, err
	}
	if targetOwner == "" {
		// Target local: store directly.
		return s.broker.IngestReplica(user, a.Path, a.Resource, data)
	}
	// Target remote: the owning peer stores the replica.
	req := &wire.Request{Op: wire.OpIngestReplica, OnBehalf: user}
	req.Args, _ = jsonMarshal(wire.ReplicateArgs{Path: a.Path, Resource: a.Resource})
	addr, ok := s.PeerAddr(targetOwner)
	if !ok {
		return types.Replica{}, types.E("replicate", targetOwner, types.ErrOffline)
	}
	var body json.RawMessage
	err = s.peerDo(targetOwner, addr, ss.deadline, req, ss.span, func(pc *peerConn) error {
		b, err := pc.roundTripIngest(req, data)
		body = b
		return err
	})
	if err != nil {
		return types.Replica{}, err
	}
	var rep types.Replica
	if err := jsonUnmarshal(body, &rep); err != nil {
		return types.Replica{}, err
	}
	return rep, nil
}

// sqlOwner names the peer owning the database resource behind a SQL
// object, or "" when local.
func (s *Server) sqlOwner(path string) string {
	o, err := s.broker.Cat.GetObject(path)
	if err != nil || o.Kind != types.KindSQL || o.SQL == nil {
		return ""
	}
	return s.resourceOwner(o.SQL.Resource)
}

// proxyIngest relays an ingest request (with its data) to the owning
// peer. Ingest mutates, so there is exactly one attempt.
func (s *Server) proxyIngest(peerName, user string, req *wire.Request, data []byte, deadline time.Time, sp *obs.Span) ([]byte, error) {
	addr, ok := s.PeerAddr(peerName)
	if !ok {
		return nil, types.E(req.Op, peerName, types.ErrOffline)
	}
	fwd := *req
	fwd.OnBehalf = user
	var body []byte
	err := s.peerDo(peerName, addr, deadline, &fwd, sp, func(pc *peerConn) error {
		b, err := pc.roundTripIngest(&fwd, data)
		body = b
		return err
	})
	if err != nil {
		return nil, err
	}
	return body, nil
}

// collectionOf derives the usage-accounting key from a request's args:
// the parent collection of the op's primary path (Src for two-path
// ops). Ops that carry no grid path account under "-".
func collectionOf(args json.RawMessage) string {
	var a struct{ Path, Src string }
	if len(args) > 0 {
		_ = json.Unmarshal(args, &a)
	}
	p := a.Path
	if p == "" {
		p = a.Src
	}
	if p == "" || !strings.HasPrefix(p, "/") {
		return "-"
	}
	return types.Parent(p)
}

// jsonMarshal / jsonUnmarshal keep the handler bodies terse.
func jsonMarshal(v any) ([]byte, error)   { return json.Marshal(v) }
func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }
