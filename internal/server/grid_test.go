package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gosrb/internal/client"
	"gosrb/internal/obs"
	"gosrb/internal/wire"
)

// gridActivity backdates both registries' rollup baselines and then
// puts one object through each server, so a 5m window query sees the
// traffic on both members.
func gridActivity(t *testing.T, z *zone) {
	t.Helper()
	now := time.Now()
	z.b1.Metrics().CaptureRollup(now.Add(-5 * time.Minute))
	z.b2.Metrics().CaptureRollup(now.Add(-5 * time.Minute))
	// Server.Close waits for live connections, so these clients are
	// closed by hand rather than via the cleanup-scoped helper — some
	// callers kill a member mid-test.
	for _, put := range []struct{ addr, path, res string }{
		{z.addr1, "/home/g1.dat", "disk1"},
		{z.addr2, "/home/g2.dat", "disk2"},
	} {
		cl, err := client.Dial(put.addr, "alice", "alicepw")
		if err != nil {
			t.Fatal(err)
		}
		_, err = cl.Put(put.path, []byte("grid"), client.PutOpts{Resource: put.res})
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGridStatFanout(t *testing.T) {
	z := newZone(t, Proxy)
	gridActivity(t, z)
	cl := z.client(z.addr1, "alice", "alicepw")
	rep, err := cl.GridStat(5*time.Minute, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server != "srb1" || rep.WindowSeconds != 300 {
		t.Errorf("reply envelope = %q/%v, want srb1/300", rep.Server, rep.WindowSeconds)
	}
	if len(rep.Members) != 2 {
		t.Fatalf("members = %+v, want srb1 and srb2", rep.Members)
	}
	byName := map[string]wire.GridMember{}
	for _, m := range rep.Members {
		byName[m.Server] = m
	}
	for _, name := range []string{"srb1", "srb2"} {
		m, ok := byName[name]
		if !ok || m.Unreachable {
			t.Fatalf("member %s = %+v, want reachable", name, m)
		}
		if len(m.Window.Ops) == 0 {
			t.Errorf("member %s window has no ops", name)
		}
	}
	// The merged grid view sums both members' ingests.
	o := rep.Grid.Ops["server.ingest"]
	if o.Count != 2 {
		t.Errorf("grid server.ingest count = %d, want 2 (one per member)", o.Count)
	}
	if o.P99Micros <= 0 {
		t.Errorf("grid p99 = %v, want recomputed from merged buckets", o.P99Micros)
	}
}

func TestGridStatDeadPeerIsPartial(t *testing.T) {
	z := newZone(t, Proxy)
	gridActivity(t, z)
	z.s2.Close()
	cl := z.client(z.addr1, "alice", "alicepw")
	rep, err := cl.GridStat(5*time.Minute, true)
	if err != nil {
		t.Fatal(err) // a dead member must not fail the gather
	}
	if len(rep.Members) != 2 {
		t.Fatalf("members = %+v, want the dead peer to keep its slot", rep.Members)
	}
	var local, dead wire.GridMember
	for _, m := range rep.Members {
		if m.Server == "srb1" {
			local = m
		} else {
			dead = m
		}
	}
	if local.Unreachable {
		t.Errorf("local member = %+v, want reachable", local)
	}
	if !dead.Unreachable || dead.Err == "" {
		t.Errorf("dead member = %+v, want Unreachable with an error", dead)
	}
	// The aggregate is partial but present: srb1's traffic only.
	if o := rep.Grid.Ops["server.ingest"]; o.Count != 1 {
		t.Errorf("partial grid ingest count = %d, want 1", o.Count)
	}
}

func TestGridStatLocalOnly(t *testing.T) {
	z := newZone(t, Proxy)
	gridActivity(t, z)
	cl := z.client(z.addr1, "alice", "alicepw")
	rep, err := cl.GridStat(5*time.Minute, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 1 || rep.Members[0].Server != "srb1" {
		t.Fatalf("local-only members = %+v, want just srb1", rep.Members)
	}
}

func TestGridStatStaleFlag(t *testing.T) {
	z := newZone(t, Proxy)
	// No backdated rollups: retention covers seconds, not 6 hours, so
	// every member must self-report stale.
	cl := z.client(z.addr1, "alice", "alicepw")
	rep, err := cl.GridStat(6*time.Hour, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Members {
		if m.Unreachable {
			continue
		}
		if !m.Stale {
			t.Errorf("member %s covered %.0fs of %.0fs but not flagged stale",
				m.Server, m.Window.CoveredSeconds, m.Window.WindowSeconds)
		}
	}
}

func TestAlertsOp(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	// No evaluator declared: the op reports disabled, not an error.
	rep, err := cl.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Enabled {
		t.Errorf("alerts with no rules = %+v, want disabled", rep)
	}

	rules, err := obs.ParseSLORules("error_rate < 1% over 5m")
	if err != nil {
		t.Fatal(err)
	}
	ev := obs.NewSLOEvaluator(z.b1.Metrics(), rules)
	z.b1.SetSLO(ev)
	now := time.Now()
	z.b1.Metrics().CaptureRollup(now.Add(-5 * time.Minute))
	z.b1.Metrics().Op("server.get").Observe(time.Millisecond, errFake)
	ev.Evaluate(now)

	rep, err = cl.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || len(rep.Rules) != 1 || !rep.Rules[0].Violating {
		t.Fatalf("alerts = %+v, want one violating rule", rep)
	}
	if len(rep.Alerts) != 1 || !rep.Alerts[0].Firing {
		t.Fatalf("alert log = %+v, want the FIRED transition", rep.Alerts)
	}
}

// TestAdminGridAndAlerts exercises the HTTP faces of the grid console:
// /grid (federated JSON snapshot), /alerts, /metrics?window= and the
// SLO warn lines on /healthz.
func TestAdminGridAndAlerts(t *testing.T) {
	z := newZone(t, Proxy)
	gridActivity(t, z)
	rules, err := obs.ParseSLORules("ingest p99 < 1ns over 5m") // impossible objective: always firing
	if err != nil {
		t.Fatal(err)
	}
	ev := obs.NewSLOEvaluator(z.b1.Metrics(), rules)
	z.b1.SetSLO(ev)
	ev.Evaluate(time.Now())

	addr, err := z.s1.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	var rep wire.GridStatReply
	if err := json.Unmarshal([]byte(get("/grid?window=5m")), &rep); err != nil {
		t.Fatalf("/grid JSON: %v", err)
	}
	if len(rep.Members) != 2 || rep.Grid.Ops["server.ingest"].Count != 2 {
		t.Errorf("/grid = %+v, want both members merged", rep)
	}

	var alerts wire.AlertsReply
	if err := json.Unmarshal([]byte(get("/alerts")), &alerts); err != nil {
		t.Fatalf("/alerts JSON: %v", err)
	}
	if !alerts.Enabled || len(alerts.Alerts) == 0 {
		t.Errorf("/alerts = %+v, want the firing transition", alerts)
	}

	win := get("/metrics?window=5m")
	for _, want := range []string{"window_seconds 300", "server.ingest.p99_us"} {
		if !strings.Contains(win, want) {
			t.Errorf("/metrics?window=5m missing %q:\n%s", want, win)
		}
	}
	if resp, err := http.Get("http://" + addr + "/metrics?window=bogus"); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad window status = %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// A violating SLO warns on /healthz but never degrades it: probes
	// must not restart a server for missing a latency objective.
	hz := get("/healthz")
	if !strings.Contains(hz, "ok srb1") {
		t.Errorf("/healthz = %q, want ok despite the firing SLO", hz)
	}
	if !strings.Contains(hz, "warn: slo") {
		t.Errorf("/healthz = %q, want an slo warn line", hz)
	}
}

var errFake = fakeErr{}

type fakeErr struct{}

func (fakeErr) Error() string { return "injected failure" }
