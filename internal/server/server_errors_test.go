package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// rawConn dials and completes the handshake by hand so tests can send
// malformed or privileged frames the client library never produces.
func rawConn(t *testing.T, addr, user, password string) *wire.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	c := wire.NewConn(nc)
	var ch wire.Challenge
	if err := c.ReadJSON(wire.MsgChallenge, &ch); err != nil {
		t.Fatal(err)
	}
	resp := auth.Respond(auth.DeriveKey(user, password), ch.Nonce)
	if err := c.WriteJSON(wire.MsgAuth, wire.Auth{User: user, Response: resp}); err != nil {
		t.Fatal(err)
	}
	var ok struct{ Server string }
	if err := c.ReadJSON(wire.MsgAuthOK, &ok); err != nil {
		t.Fatal(err)
	}
	return c
}

// rawPeerConn authenticates as a zone peer.
func rawPeerConn(t *testing.T, addr, peerName, secret string) *wire.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	c := wire.NewConn(nc)
	var ch wire.Challenge
	if err := c.ReadJSON(wire.MsgChallenge, &ch); err != nil {
		t.Fatal(err)
	}
	resp := auth.Respond(auth.DeriveKey("peer:"+peerName, secret), ch.Nonce)
	if err := c.WriteJSON(wire.MsgAuth, wire.Auth{Peer: peerName, Response: resp}); err != nil {
		t.Fatal(err)
	}
	var ok struct{ Server string }
	if err := c.ReadJSON(wire.MsgAuthOK, &ok); err != nil {
		t.Fatal(err)
	}
	return c
}

func roundTrip(t *testing.T, c *wire.Conn, req wire.Request) wire.Response {
	t.Helper()
	if err := c.WriteJSON(wire.MsgRequest, req); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := c.ReadJSON(wire.MsgResponse, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPeerRequestNeedsOnBehalf(t *testing.T) {
	z := newZone(t, Proxy)
	c := rawPeerConn(t, z.addr1, "srb2", zoneSecret)
	// A peer request without OnBehalf has no effective user: refused.
	resp := roundTrip(t, c, wire.Request{Op: wire.OpList, Args: mustJSON(t, wire.PathArgs{Path: "/"})})
	if resp.OK || !errors.Is(resp.Err(), types.ErrAuth) {
		t.Errorf("peer without OnBehalf = %+v", resp)
	}
	// With OnBehalf the zone trust applies.
	resp = roundTrip(t, c, wire.Request{Op: wire.OpList, OnBehalf: "admin", Args: mustJSON(t, wire.PathArgs{Path: "/"})})
	if !resp.OK {
		t.Errorf("peer with OnBehalf = %+v", resp.Err())
	}
}

func TestOnBehalfIgnoredForUsers(t *testing.T) {
	z := newZone(t, Proxy)
	c := rawConn(t, z.addr1, "alice", "alicepw")
	// A normal user cannot escalate by claiming OnBehalf=admin: the
	// op runs as alice, who may not audit.
	resp := roundTrip(t, c, wire.Request{Op: wire.OpAudit, OnBehalf: "admin", Args: mustJSON(t, wire.AuditArgs{})})
	if resp.OK || !errors.Is(resp.Err(), types.ErrPermission) {
		t.Errorf("OnBehalf escalation = %+v", resp)
	}
}

func TestBadPeerSecretRejected(t *testing.T) {
	z := newZone(t, Proxy)
	nc, err := net.Dial("tcp", z.addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	var ch wire.Challenge
	if err := c.ReadJSON(wire.MsgChallenge, &ch); err != nil {
		t.Fatal(err)
	}
	resp := auth.Respond(auth.DeriveKey("peer:srb2", "wrong-secret"), ch.Nonce)
	if err := c.WriteJSON(wire.MsgAuth, wire.Auth{Peer: "srb2", Response: resp}); err != nil {
		t.Fatal(err)
	}
	var r wire.Response
	if err := c.ReadJSON(wire.MsgResponse, &r); err != nil {
		t.Fatal(err)
	}
	if r.OK || !errors.Is(r.Err(), types.ErrAuth) {
		t.Errorf("bad peer secret = %+v", r)
	}
}

func TestUnknownOpAndBadArgs(t *testing.T) {
	z := newZone(t, Proxy)
	c := rawConn(t, z.addr1, "alice", "alicepw")
	resp := roundTrip(t, c, wire.Request{Op: "frobnicate"})
	if resp.OK || !errors.Is(resp.Err(), types.ErrUnsupported) {
		t.Errorf("unknown op = %+v", resp)
	}
	// Malformed args JSON yields an error response, not a dropped
	// connection: the next request still works.
	resp = roundTrip(t, c, wire.Request{Op: wire.OpList, Args: []byte(`{"Path": 42}`)})
	if resp.OK {
		t.Error("malformed args should fail")
	}
	resp = roundTrip(t, c, wire.Request{Op: wire.OpList, Args: mustJSON(t, wire.PathArgs{Path: "/home"})})
	if !resp.OK {
		t.Errorf("connection should survive a bad request: %+v", resp.Err())
	}
}

func TestBadLockKindOverWire(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	cl.Put("/home/f", []byte("x"), client.PutOpts{Resource: "disk1"})
	if err := cl.Lock("/home/f", "sideways", time.Hour); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad lock kind = %v", err)
	}
	if err := cl.Chmod("/home/f", "bob", "emperor"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad level = %v", err)
	}
}

func TestFederationWithDeadPeer(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl.Put("/home/r.dat", []byte("x"), client.PutOpts{Resource: "disk2"}); err != nil {
		t.Fatal(err)
	}
	// srb2 dies; reads through srb1 fail cleanly rather than hanging.
	z.s2.Close()
	if _, err := cl.Get("/home/r.dat"); err == nil {
		t.Error("get through a dead peer should fail")
	}
	// srb1 itself keeps serving local work.
	if _, err := cl.List("/home"); err != nil {
		t.Errorf("local op after peer death: %v", err)
	}
}

func TestTicketBelowReadGrantsNothing(t *testing.T) {
	z := newZone(t, Proxy)
	alice := z.client(z.addr1, "alice", "alicepw")
	alice.Put("/home/s.txt", []byte("secret"), client.PutOpts{Resource: "disk1"})
	// A "none"-level ticket must not open the object.
	tk, err := alice.IssueTicket("/home/s.txt", "none", -1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	z.authn.Register("bob", "bobpw")
	z.cat.AddUser(types.User{Name: "bob", Domain: "x"})
	bob := z.client(z.addr1, "bob", "bobpw")
	if _, err := bob.GetWithTicket("/home/s.txt", tk); !errors.Is(err, types.ErrPermission) {
		t.Errorf("none-level ticket = %v", err)
	}
	// An invalid level cannot even be issued.
	if _, err := alice.IssueTicket("/home/s.txt", "emperor", -1, time.Hour); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad ticket level = %v", err)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := jsonMarshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
