// Batch-op semantics over the wire: per-item failure isolation, order
// preservation, and the manifest/stream consistency check that keeps a
// bulk ingest from tearing rows.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"gosrb/internal/client"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// TestBulkPutPartialFailure: items in one bulk ingest succeed and fail
// independently — a bad item neither blocks its batch-mates nor leaves
// a torn catalog row of its own.
func TestBulkPutPartialFailure(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")

	res, err := cl.BulkPut([]client.BulkPut{
		{Path: "/home/a.txt", Data: []byte("alpha"), Opts: client.PutOpts{Resource: "disk1"}},
		{Path: "/home/b.txt", Data: []byte("beta"), Opts: client.PutOpts{Resource: "nosuchdisk"}},
		{Path: "/home/c.txt", Data: []byte("gamma"), Opts: client.PutOpts{Resource: "disk1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d item statuses, want 3", len(res))
	}
	if !res[0].OK || !res[2].OK {
		t.Fatalf("healthy items failed alongside a bad one: %+v", res)
	}
	if res[1].OK {
		t.Fatal("ingest to a nonexistent resource reported success")
	}
	if res[1].ErrKind == "" || res[1].ErrMsg == "" {
		t.Fatalf("failed item carries no named error: %+v", res[1])
	}
	// Batch-mates landed whole; the failed item left nothing behind.
	for p, want := range map[string]string{"/home/a.txt": "alpha", "/home/c.txt": "gamma"} {
		data, err := cl.Get(p)
		if err != nil || string(data) != want {
			t.Fatalf("get %s = %q, %v; want %q", p, data, err, want)
		}
	}
	if _, err := cl.Stat("/home/b.txt"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("failed bulk item left a catalog row (stat err = %v)", err)
	}
}

// TestBulkPutManifestMismatch: a manifest whose declared sizes do not
// sum to the stream length must fail the whole batch before any item
// is ingested — a misaligned stream would write wrong bytes to every
// item after the misalignment.
func TestBulkPutManifestMismatch(t *testing.T) {
	z := newZone(t, Proxy)
	c := rawConn(t, z.addr1, "alice", "alicepw")

	args, _ := json.Marshal(wire.BulkPutArgs{Items: []wire.BulkPutItem{
		{Path: "/home/short.txt", Resource: "disk1", Size: 10}, // stream carries 4
	}})
	if err := c.WriteJSON(wire.MsgRequest, wire.Request{Op: wire.OpBulkPut, Args: args}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendData(bytes.NewReader([]byte("oops"))); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := c.ReadJSON(wire.MsgResponse, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("mismatched manifest accepted")
	}
	if err := resp.Err(); !errors.Is(err, types.ErrInvalid) {
		t.Fatalf("mismatch error = %v, want invalid", err)
	}
	// Nothing was ingested.
	cl := z.client(z.addr1, "alice", "alicepw")
	if _, err := cl.Stat("/home/short.txt"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("rejected batch still ingested an item (stat err = %v)", err)
	}
}

// TestBulkPutNegativeSizeRejected: a manifest declaring a negative item
// size is invalid outright.
func TestBulkPutNegativeSizeRejected(t *testing.T) {
	z := newZone(t, Proxy)
	c := rawConn(t, z.addr1, "alice", "alicepw")

	args, _ := json.Marshal(wire.BulkPutArgs{Items: []wire.BulkPutItem{
		{Path: "/home/neg.txt", Resource: "disk1", Size: -1},
	}})
	if err := c.WriteJSON(wire.MsgRequest, wire.Request{Op: wire.OpBulkPut, Args: args}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendData(bytes.NewReader(nil)); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := c.ReadJSON(wire.MsgResponse, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("negative manifest size accepted")
	}
	if err := resp.Err(); !errors.Is(err, types.ErrInvalid) {
		t.Fatalf("negative-size error = %v, want invalid", err)
	}
}

// TestMultiGetOrderAndPartial: results come back in request order even
// when the storage layout interleaves them, and a missing path yields a
// named per-item error without disturbing its neighbours.
func TestMultiGetOrderAndPartial(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")

	bodies := map[string]string{
		"/home/x.txt": "xray", "/home/y.txt": "yankee", "/home/z.txt": "zulu",
	}
	for p, body := range bodies {
		if _, err := cl.Put(p, []byte(body), client.PutOpts{Resource: "disk1"}); err != nil {
			t.Fatal(err)
		}
	}
	// Request order deliberately differs from ingest order and holes a
	// missing path in the middle.
	paths := []string{"/home/z.txt", "/home/missing.txt", "/home/x.txt", "/home/y.txt"}
	res, err := cl.MultiGet(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(paths) {
		t.Fatalf("got %d results for %d paths", len(res), len(paths))
	}
	for i, p := range paths {
		if res[i].Path != p {
			t.Fatalf("result[%d] is %s, want %s (order not preserved)", i, res[i].Path, p)
		}
	}
	if got := string(res[0].Data); got != "zulu" || res[0].Err != nil {
		t.Fatalf("res[0] = %q, %v", got, res[0].Err)
	}
	if res[1].Err == nil {
		t.Fatal("missing path returned no error")
	}
	if !errors.Is(res[1].Err, types.ErrNotFound) {
		t.Fatalf("missing-path error = %v, want noent", res[1].Err)
	}
	if got := string(res[2].Data); got != "xray" || res[2].Err != nil {
		t.Fatalf("res[2] = %q, %v", got, res[2].Err)
	}
	if got := string(res[3].Data); got != "yankee" || res[3].Err != nil {
		t.Fatalf("res[3] = %q, %v", got, res[3].Err)
	}
}

// TestBulkStatMixed: stats preserve request order and fail per item.
func TestBulkStatMixed(t *testing.T) {
	z := newZone(t, Proxy)
	cl := z.client(z.addr1, "alice", "alicepw")

	if _, err := cl.Put("/home/here.txt", []byte("present"), client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	items, err := cl.BulkStat([]string{"/home/missing.txt", "/home/here.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d items, want 2", len(items))
	}
	if items[0].OK || !errors.Is(items[0].Err(), types.ErrNotFound) {
		t.Fatalf("missing stat = %+v, want noent", items[0])
	}
	if !items[1].OK || items[1].Stat.Size != int64(len("present")) {
		t.Fatalf("present stat = %+v, want size %d", items[1], len("present"))
	}
}
