// Circuit breakers: per-target failure accounting that turns a dying
// peer or resource from something the grid hammers into something it
// routes around. One Breaker guards one target ("peer.srb2",
// "resource.disk1"); a Set owns the collection, the shared config and
// the telemetry export.
package resilience

import (
	"sync"
	"time"

	"gosrb/internal/obs"
)

// State is a breaker's position in the closed → open → half-open cycle.
type State int32

const (
	// Closed passes traffic and counts consecutive failures.
	Closed State = iota
	// HalfOpen lets probes through after the cooldown: one success
	// closes the breaker, one failure re-opens it for a full cooldown.
	HalfOpen
	// Open fails fast: the target dropped Threshold requests in a row
	// and the cooldown has not yet elapsed.
	Open
)

// String names the state for logs and tests.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes every breaker in a Set.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	Threshold int
	// Cooldown is how long an open breaker blocks before allowing a
	// half-open probe.
	Cooldown time.Duration
}

// DefaultBreakerConfig trips after 3 consecutive failures and probes
// again after 2 seconds.
var DefaultBreakerConfig = BreakerConfig{Threshold: 3, Cooldown: 2 * time.Second}

// Set is a keyed collection of breakers sharing one config and one
// telemetry registry. All methods tolerate a nil receiver (breakers
// disabled: everything passes).
type Set struct {
	mu  sync.Mutex
	m   map[string]*Breaker
	cfg BreakerConfig
	reg *obs.Registry
	now func() time.Time
	// trips counts open transitions across all breakers in the set.
	trips *obs.Counter
}

// NewSet returns a breaker collection exporting state gauges and trip
// counters into reg (nil disables export).
func NewSet(cfg BreakerConfig, reg *obs.Registry) *Set {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultBreakerConfig.Threshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerConfig.Cooldown
	}
	return &Set{
		m:     make(map[string]*Breaker),
		cfg:   cfg,
		reg:   reg,
		now:   time.Now,
		trips: reg.Counter("breaker.trips"),
	}
}

// SetConfig swaps the config for every breaker in the set, existing and
// future.
func (s *Set) SetConfig(cfg BreakerConfig) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg.Threshold > 0 {
		s.cfg.Threshold = cfg.Threshold
	}
	if cfg.Cooldown > 0 {
		s.cfg.Cooldown = cfg.Cooldown
	}
}

// SetClock overrides the time source (tests drive cooldowns without
// sleeping).
func (s *Set) SetClock(now func() time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// config snapshots the shared tuning under the set lock.
func (s *Set) config() (BreakerConfig, func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg, s.now
}

// For returns (creating if absent) the breaker guarding key. Keys are
// namespaced like metric names: "peer.srb2", "resource.disk1".
func (s *Set) For(key string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = &Breaker{
			set:   s,
			key:   key,
			state: s.reg.Gauge("breaker." + key + ".state"),
			trips: s.reg.Counter("breaker." + key + ".trips"),
		}
		s.m[key] = b
	}
	return b
}

// Publish refreshes every breaker's state gauge — called per snapshot
// (admin /metrics, OpStats) so the time-derived half-open transition is
// visible without an intervening request.
func (s *Set) Publish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.m))
	for _, b := range s.m {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	for _, b := range breakers {
		b.state.Set(int64(b.State()))
	}
}

// States snapshots every breaker's current state (tests, status pages).
func (s *Set) States() map[string]State {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	out := make(map[string]State, len(keys))
	for _, k := range keys {
		out[k] = s.For(k).State()
	}
	return out
}

// Breaker guards one target. All methods tolerate a nil receiver
// (breaker disabled: Allow always true, outcomes ignored).
type Breaker struct {
	set *Set
	key string

	mu       sync.Mutex
	fails    int
	open     bool
	openedAt time.Time

	state *obs.Gauge
	trips *obs.Counter
}

// State returns the breaker's current position. Half-open is derived:
// an open breaker whose cooldown has elapsed reports HalfOpen, and the
// next outcome decides whether it closes or re-opens.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *Breaker) stateLocked() State {
	if !b.open {
		return Closed
	}
	cfg, now := b.set.config()
	if now().Sub(b.openedAt) >= cfg.Cooldown {
		return HalfOpen
	}
	return Open
}

// Allow reports whether a request may proceed: true when closed or
// half-open (the probe), false while open and cooling down.
func (b *Breaker) Allow() bool {
	return b.State() != Open
}

// Failure records one failed request and reports whether this failure
// tripped the breaker open (callers annotate trace spans on that
// edge). Threshold consecutive failures trip the breaker; a failed
// half-open probe re-opens it for a full cooldown.
func (b *Breaker) Failure() bool {
	if b == nil {
		return false
	}
	cfg, now := b.set.config()
	b.mu.Lock()
	if b.open {
		// Probe failed (or a straggler raced the trip): restart cooldown.
		b.openedAt = now()
		b.mu.Unlock()
		b.state.Set(int64(Open))
		return false
	}
	b.fails++
	tripped := b.fails >= cfg.Threshold
	if tripped {
		b.open = true
		b.openedAt = now()
	}
	st := b.stateLocked()
	b.mu.Unlock()
	b.state.Set(int64(st))
	if tripped {
		b.trips.Inc()
		b.set.trips.Inc()
	}
	return tripped
}

// Success records one successful request, closing the breaker and
// resetting the failure run.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.open = false
	b.mu.Unlock()
	b.state.Set(int64(Closed))
}
