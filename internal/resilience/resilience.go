// Package resilience implements the grid's failure discipline: retry
// policies with capped exponential backoff and jitter, error
// classification (what is worth retrying, what requires a reconnect),
// and per-target circuit breakers (see breaker.go).
//
// The paper's federation claims — "users can connect to any SRB server
// to access data from any other SRB server" and replication so that
// "data access can continue even when a resource is unavailable" (§3) —
// only hold if a dead peer or flaky storage driver is met with
// deadlines, bounded retries and failover instead of a raw error. The
// client library, the federation proxy and the replica manager all pull
// their discipline from here so the whole grid retries the same way.
package resilience

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"time"

	"gosrb/internal/types"
)

// DialTimeout is the single grid-wide default for connection
// establishment — the client library and the federation's peer dials
// share it (previously each hardcoded its own copy).
const DialTimeout = 10 * time.Second

// Policy bounds a retry loop: how many attempts total, and how the
// delay between them grows.
type Policy struct {
	// MaxAttempts is the total number of tries (1 = no retry).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k (0-based retry
	// index) waits BaseDelay << k, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomised away (0..1):
	// delay' = delay * (1 - Jitter*rand). Jitter de-synchronises
	// retrying clients so a recovering server is not hit in lockstep.
	Jitter float64
}

// DefaultPolicy is the grid default: four tries, 25ms base, half a
// second cap, half the delay jittered.
var DefaultPolicy = Policy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: 500 * time.Millisecond, Jitter: 0.5}

// Backoff returns the pre-jitter delay before retry attempt (0-based).
func (p Policy) Backoff(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Retryable reports whether err signals a condition that a retry (or a
// failover to another replica/peer) might cure: an unreachable or
// timed-out target, or a broken transport. Application-level errors —
// not-found, permission, locked, invalid — are deterministic and must
// never be retried.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, types.ErrOffline) || errors.Is(err, types.ErrTimeout) {
		return true
	}
	return Transport(err)
}

// Transport reports whether err broke the connection itself, meaning
// the caller must reconnect before retrying.
func Transport(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Retrier runs a function under a Policy. The zero value retries
// nothing; fill in Policy (and optionally the hooks) and call Do.
type Retrier struct {
	Policy Policy
	// Sleep is the wait function (nil = time.Sleep). Tests inject a
	// recorder to count simulated time instead of spending real time.
	Sleep func(time.Duration)
	// Rand supplies jitter in [0,1) (nil = math/rand.Float64). Chaos
	// tests pin it for exact replay.
	Rand func() float64
	// Retryable classifies errors (nil = Retryable). Wrappers narrow it
	// further, e.g. "retryable AND the breaker still allows".
	Retryable func(error) bool
	// Deadline, when non-zero, stops the loop once passed: no attempt
	// starts after it, and no backoff sleeps across it.
	Deadline time.Time
	// OnRetry is called before each re-attempt with the attempt number
	// just failed (0-based) and its error — the retry-counter hook.
	OnRetry func(attempt int, err error)
}

// Do calls fn until it succeeds, exhausts the policy, hits the
// deadline, or fails with a non-retryable error. The last error is
// returned.
func (r Retrier) Do(fn func() error) error {
	attempts := r.Policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	retryable := r.Retryable
	if retryable == nil {
		retryable = Retryable
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := r.Policy.Backoff(attempt - 1)
			if r.Policy.Jitter > 0 && d > 0 {
				f := r.Rand
				if f == nil {
					f = rand.Float64
				}
				d = d - time.Duration(r.Policy.Jitter*f()*float64(d))
			}
			if !r.Deadline.IsZero() && time.Now().Add(d).After(r.Deadline) {
				return err
			}
			if d > 0 {
				sleep(d)
			}
			if r.OnRetry != nil {
				r.OnRetry(attempt-1, err)
			}
		}
		if !r.Deadline.IsZero() && time.Now().After(r.Deadline) {
			if err == nil {
				err = types.E("retry", "", types.ErrTimeout)
			}
			return err
		}
		err = fn()
		if err == nil || !retryable(err) {
			return err
		}
	}
	return err
}
