package resilience

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"gosrb/internal/obs"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

func TestBackoffCappedDoubling(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if got := (Policy{}).Backoff(3); got != 0 {
		t.Errorf("zero policy backoff = %v", got)
	}
}

// TestRetryPolicyTable is the grid's retry contract in one table:
// idempotent ops retry retryable errors under capped backoff; mutating
// ops and deterministic errors never retry.
func TestRetryPolicyTable(t *testing.T) {
	retryableErr := types.E("get", "/x", types.ErrOffline)
	cases := []struct {
		name         string
		op           string
		err          error // error every attempt returns (nil = success)
		wantAttempts int
	}{
		{"read retried to exhaustion", wire.OpGet, retryableErr, 3},
		{"list retried", wire.OpList, retryableErr, 3},
		{"query retried", wire.OpQuery, retryableErr, 3},
		{"stat retried on timeout", wire.OpStat, types.E("stat", "/x", types.ErrTimeout), 3},
		{"readrange retried on conn reset", wire.OpReadRange, &net.OpError{Op: "read", Err: errors.New("reset")}, 3},
		{"ingest never retried", wire.OpIngest, retryableErr, 1},
		{"reingest never retried", wire.OpReingest, retryableErr, 1},
		{"delete never retried", wire.OpDelete, retryableErr, 1},
		{"move never retried", wire.OpMove, retryableErr, 1},
		{"lock never retried", wire.OpLock, retryableErr, 1},
		{"checkin never retried", wire.OpCheckin, retryableErr, 1},
		{"notfound not retried", wire.OpGet, types.E("get", "/x", types.ErrNotFound), 1},
		{"permission not retried", wire.OpGet, types.E("get", "/x", types.ErrPermission), 1},
		{"invalid not retried", wire.OpQuery, types.E("query", "", types.ErrInvalid), 1},
		{"success stops immediately", wire.OpGet, nil, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			policy := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: 0.5}
			if !wire.Idempotent(tc.op) {
				policy.MaxAttempts = 1 // callers collapse mutating ops to one attempt
			}
			var slept []time.Duration
			attempts := 0
			r := Retrier{
				Policy: policy,
				Sleep:  func(d time.Duration) { slept = append(slept, d) },
				Rand:   func() float64 { return 0 }, // jitter pinned for determinism
			}
			err := r.Do(func() error { attempts++; return tc.err })
			if attempts != tc.wantAttempts {
				t.Errorf("attempts = %d, want %d", attempts, tc.wantAttempts)
			}
			if !errors.Is(err, tc.err) && !(err == nil && tc.err == nil) {
				t.Errorf("err = %v, want %v", err, tc.err)
			}
			// Backoff between attempts is capped doubling.
			if tc.wantAttempts == 3 {
				if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
					t.Errorf("backoff sequence = %v", slept)
				}
			}
		})
	}
}

func TestRetrierJitterShrinksDelay(t *testing.T) {
	var slept []time.Duration
	r := Retrier{
		Policy: Policy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, Jitter: 0.5},
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
		Rand:   func() float64 { return 1 },
	}
	r.Do(func() error { return types.ErrOffline })
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Errorf("full-jitter delay = %v, want 50ms", slept)
	}
}

func TestRetrierDeadlineStopsLoop(t *testing.T) {
	attempts := 0
	r := Retrier{
		Policy:   Policy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond},
		Deadline: time.Now().Add(10 * time.Millisecond),
		Sleep:    func(time.Duration) {},
	}
	// The deadline is ahead of every backoff, so only the first attempt
	// (plus at most one raced retry) runs.
	err := r.Do(func() error { attempts++; return types.ErrOffline })
	if attempts > 2 {
		t.Errorf("attempts = %d, deadline should have stopped the loop", attempts)
	}
	if !errors.Is(err, types.ErrOffline) {
		t.Errorf("err = %v", err)
	}
}

func TestRetrierOnRetryHook(t *testing.T) {
	var seen []int
	r := Retrier{
		Policy:  Policy{MaxAttempts: 3, BaseDelay: time.Microsecond},
		Sleep:   func(time.Duration) {},
		OnRetry: func(attempt int, err error) { seen = append(seen, attempt) },
	}
	r.Do(func() error { return types.ErrOffline })
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("OnRetry attempts = %v", seen)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err       error
		retryable bool
		transport bool
	}{
		{nil, false, false},
		{types.E("get", "/x", types.ErrOffline), true, false},
		{types.E("get", "/x", types.ErrTimeout), true, false},
		{types.E("get", "/x", types.ErrNotFound), false, false},
		{types.E("get", "/x", types.ErrPermission), false, false},
		{io.EOF, true, true},
		{io.ErrUnexpectedEOF, true, true},
		{net.ErrClosed, true, true},
		{fmt.Errorf("wrapped: %w", io.EOF), true, true},
		{&net.OpError{Op: "dial", Err: errors.New("refused")}, true, true},
		{errors.New("opaque"), false, false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.retryable {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.retryable)
		}
		if got := Transport(tc.err); got != tc.transport {
			t.Errorf("Transport(%v) = %v, want %v", tc.err, got, tc.transport)
		}
	}
}

// fakeClock is a settable time source for breaker cooldowns.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSet(threshold int, cooldown time.Duration) (*Set, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s := NewSet(BreakerConfig{Threshold: threshold, Cooldown: cooldown}, nil)
	s.SetClock(clk.now)
	return s, clk
}

// TestBreakerStateMachine walks the full closed → open → half-open
// cycle, covering both probe outcomes.
func TestBreakerStateMachine(t *testing.T) {
	s, clk := newTestSet(3, time.Second)
	b := s.For("peer.srb2")

	if st := b.State(); st != Closed {
		t.Fatalf("initial state = %v", st)
	}
	// Failures below threshold keep it closed; a success resets the run.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if st := b.State(); st != Closed {
		t.Fatalf("after interrupted run state = %v", st)
	}
	// Third consecutive failure trips it.
	b.Failure()
	if st := b.State(); st != Open {
		t.Fatalf("after threshold state = %v", st)
	}
	if b.Allow() {
		t.Error("open breaker must not allow")
	}
	// Cooldown elapses: half-open, probe allowed.
	clk.advance(time.Second)
	if st := b.State(); st != HalfOpen {
		t.Fatalf("after cooldown state = %v", st)
	}
	if !b.Allow() {
		t.Error("half-open breaker must allow a probe")
	}
	// Probe failure re-opens for a full cooldown.
	b.Failure()
	if st := b.State(); st != Open {
		t.Fatalf("after failed probe state = %v", st)
	}
	clk.advance(999 * time.Millisecond)
	if st := b.State(); st != Open {
		t.Fatalf("cooldown must restart after failed probe, state = %v", st)
	}
	clk.advance(time.Millisecond)
	if st := b.State(); st != HalfOpen {
		t.Fatalf("second cooldown state = %v", st)
	}
	// Probe success closes and resets the failure run.
	b.Success()
	if st := b.State(); st != Closed {
		t.Fatalf("after probe success state = %v", st)
	}
	b.Failure()
	b.Failure()
	if st := b.State(); st != Closed {
		t.Fatalf("failure run must restart from zero, state = %v", st)
	}
}

func TestBreakerSetSharedConfigAndStates(t *testing.T) {
	s, clk := newTestSet(2, time.Minute)
	a, b := s.For("resource.r1"), s.For("resource.r2")
	if a != s.For("resource.r1") {
		t.Fatal("For must return the same breaker per key")
	}
	a.Failure()
	a.Failure()
	if st := s.States(); st["resource.r1"] != Open || st["resource.r2"] != Closed {
		t.Errorf("states = %v", st)
	}
	// Config change applies to live breakers: shrink cooldown and the
	// open breaker becomes half-open immediately.
	s.SetConfig(BreakerConfig{Threshold: 2, Cooldown: time.Millisecond})
	clk.advance(time.Millisecond)
	if st := a.State(); st != HalfOpen {
		t.Errorf("after config shrink state = %v", st)
	}
	b.Failure()
	b.Failure()
	if st := b.State(); st == Closed {
		t.Error("threshold from shared config not applied")
	}
}

func TestBreakerMetricsExport(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSet(BreakerConfig{Threshold: 2, Cooldown: time.Minute}, reg)
	b := s.For("peer.srb2")
	b.Failure()
	b.Failure()
	s.Publish()
	snap := reg.Snapshot()
	if got := snap.Gauges["breaker.peer.srb2.state"]; got != int64(Open) {
		t.Errorf("state gauge = %d, want %d", got, int64(Open))
	}
	if got := snap.Counters["breaker.peer.srb2.trips"]; got != 1 {
		t.Errorf("per-key trips = %d", got)
	}
	if got := snap.Counters["breaker.trips"]; got != 1 {
		t.Errorf("global trips = %d", got)
	}
}

func TestNilBreakerAndSetAreInert(t *testing.T) {
	var s *Set
	b := s.For("anything")
	if b != nil {
		t.Fatal("nil set must yield nil breaker")
	}
	if !b.Allow() {
		t.Error("nil breaker must allow")
	}
	b.Failure()
	b.Success()
	if st := b.State(); st != Closed {
		t.Errorf("nil breaker state = %v", st)
	}
	s.Publish()
	s.SetConfig(BreakerConfig{})
	if s.States() != nil {
		t.Error("nil set states should be nil")
	}
}
