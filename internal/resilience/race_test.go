package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gosrb/internal/obs"
	"gosrb/internal/types"
)

// TestBreakerConcurrentTripsAndProbes hammers one Set from many
// goroutines — concurrent failures tripping breakers, successes closing
// them, probes racing the cooldown, config swaps and snapshot readers —
// so `go test -race ./internal/resilience` proves the state machine is
// data-race free under exactly the contention the federation produces.
func TestBreakerConcurrentTripsAndProbes(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSet(BreakerConfig{Threshold: 3, Cooldown: time.Microsecond}, reg)
	var clock atomic.Int64
	base := time.Unix(2000, 0)
	s.SetClock(func() time.Time { return base.Add(time.Duration(clock.Load())) })

	keys := []string{"peer.srb1", "peer.srb2", "resource.disk1", "resource.disk2"}
	const workers = 16
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				b := s.For(keys[(w+i)%len(keys)])
				switch i % 7 {
				case 0, 1, 2:
					b.Failure() // trip pressure
				case 3:
					b.Success() // close
				case 4:
					if b.Allow() { // probe gate racing the cooldown
						b.Failure()
					}
				case 5:
					_ = b.State()
					clock.Add(int64(time.Microsecond)) // advance past cooldowns
				case 6:
					if w == 0 {
						s.SetConfig(BreakerConfig{Threshold: 2 + i%3, Cooldown: time.Microsecond})
					}
					s.Publish()
					_ = s.States()
				}
			}
		}(w)
	}
	wg.Wait()
	// The set survived; every breaker lands in a coherent state.
	for k, st := range s.States() {
		if st != Closed && st != Open && st != HalfOpen {
			t.Errorf("%s in impossible state %d", k, st)
		}
	}
}

// TestRetrierConcurrent runs many retry loops sharing one policy and a
// contended counter hook under -race.
func TestRetrierConcurrent(t *testing.T) {
	var retries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			calls := 0
			r := Retrier{
				Policy:  Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, Jitter: 0.5},
				Sleep:   func(time.Duration) {},
				OnRetry: func(int, error) { retries.Add(1) },
			}
			r.Do(func() error {
				calls++
				if calls < 3 {
					return types.ErrOffline
				}
				return nil
			})
			if calls != 3 {
				t.Errorf("worker %d: calls = %d", w, calls)
			}
		}(w)
	}
	wg.Wait()
	if retries.Load() != 8*2 {
		t.Errorf("retries = %d, want 16", retries.Load())
	}
}
