package storage

import (
	"gosrb/internal/obs"
)

// IOMetrics are the per-driver byte and operation counters an
// instrumented driver records into. Any field may be nil (not counted).
type IOMetrics struct {
	// BytesIn counts bytes written into the driver (ingest side).
	BytesIn *obs.Counter
	// BytesOut counts bytes read out of the driver (retrieval side).
	BytesOut *obs.Counter
	// Reads counts Open calls, Writes counts Create/OpenAppend calls.
	Reads  *obs.Counter
	Writes *obs.Counter
	// Errors counts failed driver calls.
	Errors *obs.Counter
}

// Instrument decorates d so every byte moved through it is accounted in
// m. The decorator is transparent: physical paths, semantics and the
// optional UsageReporter extension pass straight through.
func Instrument(d Driver, m IOMetrics) Driver {
	if u, ok := d.(UsageReporter); ok {
		return &instrumentedUsage{instrumented{d: d, m: m}, u}
	}
	return &instrumented{d: d, m: m}
}

type instrumented struct {
	d Driver
	m IOMetrics
}

// instrumentedUsage adds the UsageReporter passthrough for drivers that
// track capacity.
type instrumentedUsage struct {
	instrumented
	u UsageReporter
}

func (i *instrumentedUsage) Usage() Usage { return i.u.Usage() }

func (i *instrumented) err(e error) error {
	if e != nil {
		i.m.Errors.Inc()
	}
	return e
}

func (i *instrumented) Create(path string) (WriteFile, error) {
	w, err := i.d.Create(path)
	if err != nil {
		return nil, i.err(err)
	}
	i.m.Writes.Inc()
	return &countingWriter{w: w, n: i.m.BytesIn}, nil
}

func (i *instrumented) OpenAppend(path string) (WriteFile, error) {
	w, err := i.d.OpenAppend(path)
	if err != nil {
		return nil, i.err(err)
	}
	i.m.Writes.Inc()
	return &countingWriter{w: w, n: i.m.BytesIn}, nil
}

func (i *instrumented) Open(path string) (ReadFile, error) {
	r, err := i.d.Open(path)
	if err != nil {
		return nil, i.err(err)
	}
	i.m.Reads.Inc()
	return &countingReader{r: r, n: i.m.BytesOut}, nil
}

func (i *instrumented) Stat(path string) (FileInfo, error) {
	fi, err := i.d.Stat(path)
	return fi, i.err(err)
}

func (i *instrumented) Remove(path string) error { return i.err(i.d.Remove(path)) }

func (i *instrumented) Rename(oldPath, newPath string) error {
	return i.err(i.d.Rename(oldPath, newPath))
}

func (i *instrumented) List(dir string) ([]FileInfo, error) {
	infos, err := i.d.List(dir)
	return infos, i.err(err)
}

func (i *instrumented) Mkdir(path string) error { return i.err(i.d.Mkdir(path)) }

// countingWriter counts bytes accepted by the underlying WriteFile.
type countingWriter struct {
	w WriteFile
	n *obs.Counter
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingWriter) Close() error { return c.w.Close() }

// countingReader counts bytes served by the underlying ReadFile across
// all three read styles.
type countingReader struct {
	r ReadFile
	n *obs.Counter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingReader) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingReader) Seek(offset int64, whence int) (int64, error) {
	return c.r.Seek(offset, whence)
}

func (c *countingReader) Close() error { return c.r.Close() }
