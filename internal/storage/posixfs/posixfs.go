// Package posixfs implements a storage driver over a local POSIX file
// system, rooted at a directory. It is the "Unix File System" resource
// of the paper. All physical paths are confined beneath the root.
package posixfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// FS is a storage.Driver rooted at a host directory.
type FS struct {
	root string
}

// New returns a driver rooted at dir, creating it if needed.
func New(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, types.E("posixfs", dir, err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, types.E("posixfs", dir, err)
	}
	return &FS{root: abs}, nil
}

// Root returns the host directory backing the store.
func (f *FS) Root() string { return f.root }

// resolve maps a logical physical-path to a host path under root,
// refusing escapes.
func (f *FS) resolve(p string) (string, error) {
	if strings.Contains(p, "\x00") {
		return "", types.E("path", p, types.ErrInvalid)
	}
	c := types.CleanPath(p)
	if c == "/" {
		return "", types.E("path", p, types.ErrInvalid)
	}
	host := filepath.Join(f.root, filepath.FromSlash(strings.TrimPrefix(c, "/")))
	if !strings.HasPrefix(host, f.root+string(os.PathSeparator)) {
		return "", types.E("path", p, types.ErrInvalid)
	}
	return host, nil
}

// back converts a host path under root to the driver's slash path.
func (f *FS) back(host string) string {
	rel, err := filepath.Rel(f.root, host)
	if err != nil {
		return "/"
	}
	return types.CleanPath(filepath.ToSlash(rel))
}

func mapErr(op, path string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return types.E(op, path, types.ErrNotFound)
	}
	if errors.Is(err, fs.ErrExist) {
		return types.E(op, path, types.ErrExists)
	}
	return types.E(op, path, err)
}

// Create implements storage.Driver. The write is staged in a temp file
// in the destination directory and renamed into place at Close, so
// readers never observe partial contents.
func (f *FS) Create(path string) (storage.WriteFile, error) {
	host, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(host), 0o755); err != nil {
		return nil, mapErr("create", path, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(host), ".srbtmp-*")
	if err != nil {
		return nil, mapErr("create", path, err)
	}
	return &atomicWriter{f: tmp, dst: host, path: path}, nil
}

type atomicWriter struct {
	f    *os.File
	dst  string
	path string
	done bool
}

func (w *atomicWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *atomicWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		return mapErr("close", w.path, err)
	}
	if err := os.Rename(w.f.Name(), w.dst); err != nil {
		os.Remove(w.f.Name())
		return mapErr("close", w.path, err)
	}
	return nil
}

// OpenAppend implements storage.Driver.
func (f *FS) OpenAppend(path string) (storage.WriteFile, error) {
	host, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(host), 0o755); err != nil {
		return nil, mapErr("append", path, err)
	}
	fh, err := os.OpenFile(host, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, mapErr("append", path, err)
	}
	return fh, nil
}

// Open implements storage.Driver.
func (f *FS) Open(path string) (storage.ReadFile, error) {
	host, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	fh, err := os.Open(host)
	if err != nil {
		return nil, mapErr("open", path, err)
	}
	fi, err := fh.Stat()
	if err == nil && fi.IsDir() {
		fh.Close()
		return nil, types.E("open", path, types.ErrInvalid)
	}
	return fh, nil
}

// Stat implements storage.Driver.
func (f *FS) Stat(path string) (storage.FileInfo, error) {
	host, err := f.resolve(path)
	if err != nil {
		return storage.FileInfo{}, err
	}
	fi, err := os.Stat(host)
	if err != nil {
		return storage.FileInfo{}, mapErr("stat", path, err)
	}
	return storage.FileInfo{
		Path:    types.CleanPath(path),
		Size:    fi.Size(),
		ModTime: fi.ModTime(),
		IsDir:   fi.IsDir(),
	}, nil
}

// Remove implements storage.Driver.
func (f *FS) Remove(path string) error {
	host, err := f.resolve(path)
	if err != nil {
		return err
	}
	if fi, err := os.Stat(host); err == nil && fi.IsDir() {
		return types.E("remove", path, types.ErrInvalid)
	}
	return mapErr("remove", path, os.Remove(host))
}

// Rename implements storage.Driver.
func (f *FS) Rename(oldPath, newPath string) error {
	oh, err := f.resolve(oldPath)
	if err != nil {
		return err
	}
	nh, err := f.resolve(newPath)
	if err != nil {
		return err
	}
	if _, err := os.Stat(oh); err != nil {
		return mapErr("rename", oldPath, err)
	}
	if err := os.MkdirAll(filepath.Dir(nh), 0o755); err != nil {
		return mapErr("rename", newPath, err)
	}
	return mapErr("rename", oldPath, os.Rename(oh, nh))
}

// List implements storage.Driver.
func (f *FS) List(dir string) ([]storage.FileInfo, error) {
	host, err := f.resolve(dir)
	if err != nil {
		if types.CleanPath(dir) == "/" {
			host = f.root
		} else {
			return nil, err
		}
	}
	ents, err := os.ReadDir(host)
	if err != nil {
		return nil, mapErr("list", dir, err)
	}
	out := make([]storage.FileInfo, 0, len(ents))
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".srbtmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, storage.FileInfo{
			Path:    f.back(filepath.Join(host, e.Name())),
			Size:    info.Size(),
			ModTime: info.ModTime(),
			IsDir:   e.IsDir(),
		})
	}
	storage.SortInfos(out)
	return out, nil
}

// Mkdir implements storage.Driver.
func (f *FS) Mkdir(path string) error {
	host, err := f.resolve(path)
	if err != nil {
		return err
	}
	return mapErr("mkdir", path, os.MkdirAll(host, 0o755))
}

var _ storage.Driver = (*FS)(nil)
