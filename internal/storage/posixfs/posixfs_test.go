package posixfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gosrb/internal/storage"
	"gosrb/internal/storage/drivertest"
	"gosrb/internal/types"
)

func TestConformance(t *testing.T) {
	drivertest.Run(t, func(t *testing.T) storage.Driver {
		d, err := New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
}

func TestEscapeRejected(t *testing.T) {
	d, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Path cleaning maps traversal back inside the root rather than
	// letting it escape.
	if err := storage.WriteAll(d, "/../../etc/escape-test", []byte("x")); err != nil {
		t.Fatalf("cleaned traversal should stay in root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(d.Root(), "etc", "escape-test")); err != nil {
		t.Errorf("file should land under root: %v", err)
	}
	if _, err := d.Create("/a\x00b"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("NUL path: %v", err)
	}
}

func TestAtomicVisibility(t *testing.T) {
	d, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Create("/part")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("half")); err != nil {
		t.Fatal(err)
	}
	// Before Close the destination must not exist.
	if _, err := d.Stat("/part"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("partial write visible: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, err := storage.ReadAll(d, "/part"); err != nil || string(got) != "half" {
		t.Errorf("after close: %q, %v", got, err)
	}
}

func TestTempFilesHiddenFromList(t *testing.T) {
	d, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteAll(d, "/dir/real", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w, err := d.Create("/dir/pending")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	infos, err := d.List("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Path != "/dir/real" {
		t.Errorf("List leaked temp file: %+v", infos)
	}
}

func TestOpenDirectoryRejected(t *testing.T) {
	d, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Mkdir("/adir"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open("/adir"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("Open dir: %v", err)
	}
	if err := d.Remove("/adir"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("Remove dir: %v", err)
	}
}

func TestListRoot(t *testing.T) {
	d, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteAll(d, "/top.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	infos, err := d.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Path != "/top.txt" {
		t.Errorf("List(/) = %+v", infos)
	}
}

func TestRenameIntoNewDirectory(t *testing.T) {
	d, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storage.WriteAll(d, "/a", []byte("x"))
	if err := d.Rename("/a", "/deep/new/dir/b"); err != nil {
		t.Fatalf("rename into new dirs: %v", err)
	}
	if got, err := storage.ReadAll(d, "/deep/new/dir/b"); err != nil || string(got) != "x" {
		t.Errorf("renamed = %q, %v", got, err)
	}
}

func TestRootAccessor(t *testing.T) {
	dir := t.TempDir()
	d, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() == "" {
		t.Error("Root should be non-empty")
	}
	// Creating under a file path (not dir) fails cleanly.
	if err := os.WriteFile(filepath.Join(dir, "blocker"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteAll(d, "/blocker/child", []byte("x")); err == nil {
		t.Error("write under a file should fail")
	}
}
