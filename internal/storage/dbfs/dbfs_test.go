package dbfs

import (
	"testing"

	"gosrb/internal/storage"
	"gosrb/internal/storage/drivertest"
)

func TestConformance(t *testing.T) {
	drivertest.Run(t, func(t *testing.T) storage.Driver { return New() })
}

func TestQuotingInPaths(t *testing.T) {
	f := New()
	// A path containing a quote must not break or inject SQL.
	p := "/it's/a file'"
	if err := storage.WriteAll(f, p, []byte("quoted")); err != nil {
		t.Fatal(err)
	}
	got, err := storage.ReadAll(f, p)
	if err != nil || string(got) != "quoted" {
		t.Errorf("read = %q, %v", got, err)
	}
	// The LOB table still has exactly one row for it.
	res, err := f.Database().Exec("SELECT COUNT(*) FROM srb_lobs")
	if err != nil || res.Rows[0][0].Float() != 1 {
		t.Errorf("rows = %v, %v", res.Rows, err)
	}
}

func TestBinarySafety(t *testing.T) {
	f := New()
	data := []byte{0, 1, 2, 255, 254, '\'', '\n', 0}
	if err := storage.WriteAll(f, "/bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := storage.ReadAll(f, "/bin")
	if err != nil || string(got) != string(data) {
		t.Errorf("binary round trip failed: %v, %v", got, err)
	}
}

func TestUserTablesCoexist(t *testing.T) {
	f := New()
	db := f.Database()
	if _, err := db.Exec("CREATE TABLE stars (name, mag)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO stars VALUES ('vega', 0.03)"); err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteAll(f, "/lob1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT name FROM stars WHERE mag < 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Text() != "vega" {
		t.Errorf("user table query = %v, %v", res.Rows, err)
	}
	u := f.Usage()
	if u.Files != 1 || u.Bytes != 1 {
		t.Errorf("usage = %+v", u)
	}
}
