// Package dbfs implements a database-backed storage driver: file
// contents live as LOBs in a relational table, standing in for the
// paper's Oracle / DB2 / Sybase resources ("a file that can exist ...
// as a LOB in a database system").
//
// The same database instance also hosts ordinary user tables, which is
// what registered SQL objects query at retrieval time; Database exposes
// it to the broker.
package dbfs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"gosrb/internal/sqlengine"
	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// lobTable is the reserved table holding file contents.
const lobTable = "srb_lobs"

// FS is a database-resident storage.Driver.
type FS struct {
	mu   sync.Mutex // serialises read-modify-write cycles on the LOB table
	db   *sqlengine.DB
	dirs map[string]bool // explicitly created directories
	now  func() time.Time
}

// New returns a driver over a fresh database.
func New() *FS {
	db := sqlengine.NewDB()
	if err := db.CreateTable(lobTable, []string{"path", "data", "mtime"}); err != nil {
		panic("dbfs: " + err.Error()) // fresh DB cannot collide
	}
	return &FS{db: db, dirs: make(map[string]bool), now: time.Now}
}

// Database exposes the underlying engine for user tables and registered
// SQL queries.
func (f *FS) Database() *sqlengine.DB { return f.db }

// SetClock overrides the time source (tests).
func (f *FS) SetClock(now func() time.Time) { f.now = now }

func clean(p string) (string, error) {
	if strings.Contains(p, "\x00") {
		return "", types.E("path", p, types.ErrInvalid)
	}
	c := types.CleanPath(p)
	if c == "/" {
		return "", types.E("path", p, types.ErrInvalid)
	}
	return c, nil
}

// quote escapes a string literal for the SQL engine.
func quote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// lookup returns (data, mtime, found). Callers hold mu.
func (f *FS) lookup(path string) (string, float64, bool, error) {
	res, err := f.db.Exec(fmt.Sprintf("SELECT data, mtime FROM %s WHERE path = %s", lobTable, quote(path)))
	if err != nil {
		return "", 0, false, types.E("dbfs", path, err)
	}
	if len(res.Rows) == 0 {
		return "", 0, false, nil
	}
	return res.Rows[0][0].Str, res.Rows[0][1].Float(), true, nil
}

// store upserts a LOB. Callers hold mu.
func (f *FS) store(path, data string) error {
	if _, err := f.db.Exec(fmt.Sprintf("DELETE FROM %s WHERE path = %s", lobTable, quote(path))); err != nil {
		return types.E("dbfs", path, err)
	}
	err := f.db.Insert(lobTable, sqlengine.Row{
		sqlengine.String(path),
		sqlengine.String(data),
		sqlengine.Number(float64(f.now().UnixNano())),
	})
	if err != nil {
		return types.E("dbfs", path, err)
	}
	return nil
}

// Create implements storage.Driver.
func (f *FS) Create(path string) (storage.WriteFile, error) {
	p, err := clean(path)
	if err != nil {
		return nil, err
	}
	return &writer{f: f, path: p}, nil
}

// OpenAppend implements storage.Driver.
func (f *FS) OpenAppend(path string) (storage.WriteFile, error) {
	p, err := clean(path)
	if err != nil {
		return nil, err
	}
	w := &writer{f: f, path: p}
	f.mu.Lock()
	data, _, found, err := f.lookup(p)
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if found {
		w.buf.WriteString(data)
	}
	return w, nil
}

type writer struct {
	f      *FS
	path   string
	buf    strings.Builder
	closed bool
}

func (w *writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, types.E("write", w.path, types.ErrInvalid)
	}
	return w.buf.Write(p)
}

func (w *writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.f.mu.Lock()
	defer w.f.mu.Unlock()
	return w.f.store(w.path, w.buf.String())
}

// Open implements storage.Driver.
func (f *FS) Open(path string) (storage.ReadFile, error) {
	p, err := clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	data, _, found, err := f.lookup(p)
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, types.E("open", path, types.ErrNotFound)
	}
	return &reader{Reader: *strings.NewReader(data)}, nil
}

type reader struct{ strings.Reader }

func (r *reader) Close() error { return nil }

// Stat implements storage.Driver.
func (f *FS) Stat(path string) (storage.FileInfo, error) {
	p, err := clean(path)
	if err != nil {
		return storage.FileInfo{}, err
	}
	f.mu.Lock()
	data, mtime, found, err := f.lookup(p)
	f.mu.Unlock()
	if err != nil {
		return storage.FileInfo{}, err
	}
	if !found {
		f.mu.Lock()
		isDir := f.dirs[p]
		f.mu.Unlock()
		if isDir {
			return storage.FileInfo{Path: p, IsDir: true}, nil
		}
		return storage.FileInfo{}, types.E("stat", path, types.ErrNotFound)
	}
	return storage.FileInfo{Path: p, Size: int64(len(data)), ModTime: time.Unix(0, int64(mtime))}, nil
}

// Remove implements storage.Driver.
func (f *FS) Remove(path string) error {
	p, err := clean(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	res, err := f.db.Exec(fmt.Sprintf("DELETE FROM %s WHERE path = %s", lobTable, quote(p)))
	if err != nil {
		return types.E("remove", path, err)
	}
	if res.Rows[0][0].Float() == 0 {
		return types.E("remove", path, types.ErrNotFound)
	}
	return nil
}

// Rename implements storage.Driver.
func (f *FS) Rename(oldPath, newPath string) error {
	op, err := clean(oldPath)
	if err != nil {
		return err
	}
	np, err := clean(newPath)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	data, _, found, err := f.lookup(op)
	if err != nil {
		return err
	}
	if !found {
		return types.E("rename", oldPath, types.ErrNotFound)
	}
	if err := f.store(np, data); err != nil {
		return err
	}
	_, err = f.db.Exec(fmt.Sprintf("DELETE FROM %s WHERE path = %s", lobTable, quote(op)))
	return types.E("rename", oldPath, err)
}

// List implements storage.Driver: entries directly under dir.
func (f *FS) List(dir string) ([]storage.FileInfo, error) {
	d := types.CleanPath(dir)
	f.mu.Lock()
	res, err := f.db.Exec(fmt.Sprintf("SELECT path, data, mtime FROM %s", lobTable))
	f.mu.Unlock()
	if err != nil {
		return nil, types.E("list", dir, err)
	}
	seen := make(map[string]storage.FileInfo)
	any := false
	for _, row := range res.Rows {
		p := row[0].Str
		if !types.Within(d, p) {
			continue
		}
		any = true
		if types.Parent(p) == d {
			seen[p] = storage.FileInfo{Path: p, Size: int64(len(row[1].Str)), ModTime: time.Unix(0, int64(row[2].Float()))}
		} else {
			rest := strings.TrimPrefix(p, strings.TrimSuffix(d, "/")+"/")
			child := types.Join(d, strings.SplitN(rest, "/", 2)[0])
			seen[child] = storage.FileInfo{Path: child, IsDir: true}
		}
	}
	if !any && d != "/" {
		return nil, types.E("list", dir, types.ErrNotFound)
	}
	out := make([]storage.FileInfo, 0, len(seen))
	for _, fi := range seen {
		out = append(out, fi)
	}
	storage.SortInfos(out)
	return out, nil
}

// Mkdir implements storage.Driver. The LOB namespace is flat; explicit
// directories are tracked only so Stat can see them.
func (f *FS) Mkdir(path string) error {
	p, err := clean(path)
	if err != nil {
		if types.CleanPath(path) == "/" {
			return nil
		}
		return err
	}
	f.mu.Lock()
	f.dirs[p] = true
	for _, a := range types.Ancestors(p) {
		if a != "/" {
			f.dirs[a] = true
		}
	}
	f.mu.Unlock()
	return nil
}

// Usage implements storage.UsageReporter.
func (f *FS) Usage() storage.Usage {
	f.mu.Lock()
	defer f.mu.Unlock()
	res, err := f.db.Exec(fmt.Sprintf("SELECT data FROM %s", lobTable))
	if err != nil {
		return storage.Usage{}
	}
	var u storage.Usage
	for _, row := range res.Rows {
		u.Bytes += int64(len(row[0].Str))
		u.Files++
	}
	return u
}

var _ storage.Driver = (*FS)(nil)
var _ storage.UsageReporter = (*FS)(nil)
