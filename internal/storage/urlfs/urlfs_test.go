package urlfs

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gosrb/internal/types"
)

func TestMemScheme(t *testing.T) {
	f := NewFetcher()
	f.RegisterMemBytes("mem://reports/daily", []byte("report body"))
	got, err := f.Fetch("mem://reports/daily")
	if err != nil || string(got) != "report body" {
		t.Errorf("Fetch = %q, %v", got, err)
	}
	if _, err := f.Fetch("mem://missing"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing mem: %v", err)
	}
	// Dynamic handler: contents can vary with time, as the paper notes
	// for registered queries and URLs.
	n := 0
	f.RegisterMem("mem://dyn", func() ([]byte, error) {
		n++
		return []byte(strings.Repeat("x", n)), nil
	})
	a, _ := f.Fetch("mem://dyn")
	b, _ := f.Fetch("mem://dyn")
	if len(a) != 1 || len(b) != 2 {
		t.Errorf("dynamic fetch = %d then %d bytes", len(a), len(b))
	}
	// Unregister.
	f.RegisterMem("mem://dyn", nil)
	if _, err := f.Fetch("mem://dyn"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("unregistered: %v", err)
	}
}

func TestHTTPScheme(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			w.Write([]byte("hello from web"))
		case "/boom":
			http.Error(w, "nope", http.StatusInternalServerError)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	f := NewFetcher()
	got, err := f.Fetch(srv.URL + "/ok")
	if err != nil || string(got) != "hello from web" {
		t.Errorf("http fetch = %q, %v", got, err)
	}
	if _, err := f.Fetch(srv.URL + "/missing"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("404: %v", err)
	}
	if _, err := f.Fetch(srv.URL + "/boom"); err == nil {
		t.Error("500 should fail")
	}
}

func TestSizeLimit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 1000))
	}))
	defer srv.Close()
	f := NewFetcher()
	f.MaxBytes = 100
	if _, err := f.Fetch(srv.URL); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("oversize: %v", err)
	}
}

func TestUnsupportedScheme(t *testing.T) {
	f := NewFetcher()
	if _, err := f.Fetch("gopher://old"); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("gopher: %v", err)
	}
	if _, err := f.Fetch("://bad"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("malformed: %v", err)
	}
}
