// Package urlfs resolves registered URL objects: "the user can specify
// any URL including ftp calls and cgi queries. On retrieval, the
// contents of the URL are retrieved and displayed. The contents of the
// URL are not stored in the SRB" (paper §5, registration kind 4).
//
// The Fetcher dispatches on scheme: http/https go through an injectable
// HTTP client, and the mem scheme serves from an in-process registry so
// tests and examples run fully offline.
package urlfs

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"gosrb/internal/types"
)

// Handler produces the contents for one registered mem:// URL.
type Handler func() ([]byte, error)

// Fetcher retrieves URL contents at access time. Safe for concurrent
// use.
type Fetcher struct {
	mu       sync.RWMutex
	handlers map[string]Handler // full mem URL -> handler
	client   *http.Client
	// MaxBytes bounds a fetch; zero means 64 MiB.
	MaxBytes int64
}

// NewFetcher returns a Fetcher with a default HTTP client.
func NewFetcher() *Fetcher {
	return &Fetcher{
		handlers: make(map[string]Handler),
		client:   &http.Client{Timeout: 30 * time.Second},
	}
}

// SetClient replaces the HTTP client (tests).
func (f *Fetcher) SetClient(c *http.Client) { f.client = c }

// RegisterMem binds contents to a mem:// URL. Registering a nil handler
// removes the binding.
func (f *Fetcher) RegisterMem(memURL string, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h == nil {
		delete(f.handlers, memURL)
		return
	}
	f.handlers[memURL] = h
}

// RegisterMemBytes binds static contents to a mem:// URL.
func (f *Fetcher) RegisterMemBytes(memURL string, data []byte) {
	f.RegisterMem(memURL, func() ([]byte, error) { return data, nil })
}

// Fetch retrieves the contents of rawURL.
func (f *Fetcher) Fetch(rawURL string) ([]byte, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, types.E("fetch", rawURL, types.ErrInvalid)
	}
	max := f.MaxBytes
	if max <= 0 {
		max = 64 << 20
	}
	switch strings.ToLower(u.Scheme) {
	case "mem":
		f.mu.RLock()
		h, ok := f.handlers[rawURL]
		f.mu.RUnlock()
		if !ok {
			return nil, types.E("fetch", rawURL, types.ErrNotFound)
		}
		return h()
	case "http", "https":
		resp, err := f.client.Get(rawURL)
		if err != nil {
			return nil, types.E("fetch", rawURL, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			if resp.StatusCode == http.StatusNotFound {
				return nil, types.E("fetch", rawURL, types.ErrNotFound)
			}
			return nil, types.E("fetch", rawURL, fmt.Errorf("status %s", resp.Status))
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, max+1))
		if err != nil {
			return nil, types.E("fetch", rawURL, err)
		}
		if int64(len(data)) > max {
			return nil, types.E("fetch", rawURL, fmt.Errorf("response exceeds %d bytes: %w", max, types.ErrInvalid))
		}
		return data, nil
	default:
		return nil, types.E("fetch", rawURL, types.ErrUnsupported)
	}
}
