// Package drivertest provides a conformance suite every storage.Driver
// implementation must pass. Each driver's own test file calls Run with
// a factory producing a fresh, empty store.
package drivertest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// Run executes the full conformance suite against fresh drivers from
// the factory.
func Run(t *testing.T, factory func(t *testing.T) storage.Driver) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(t *testing.T, d storage.Driver)
	}{
		{"CreateReadBack", testCreateReadBack},
		{"OverwriteTruncates", testOverwriteTruncates},
		{"Append", testAppend},
		{"AppendCreatesMissing", testAppendCreatesMissing},
		{"OpenMissing", testOpenMissing},
		{"StatFile", testStatFile},
		{"StatMissing", testStatMissing},
		{"RemoveAndRemoveMissing", testRemove},
		{"Rename", testRename},
		{"RenameMissing", testRenameMissing},
		{"ListChildren", testList},
		{"ReadAt", testReadAt},
		{"Seek", testSeek},
		{"EmptyFile", testEmptyFile},
		{"LargeFile", testLargeFile},
		{"ConcurrentWriters", testConcurrentWriters},
		{"SnapshotIsolation", testSnapshotIsolation},
		{"MkdirAndStat", testMkdir},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.fn(t, factory(t))
		})
	}
}

func mustWrite(t *testing.T, d storage.Driver, path string, data []byte) {
	t.Helper()
	if err := storage.WriteAll(d, path, data); err != nil {
		t.Fatalf("WriteAll(%s): %v", path, err)
	}
}

func mustRead(t *testing.T, d storage.Driver, path string) []byte {
	t.Helper()
	b, err := storage.ReadAll(d, path)
	if err != nil {
		t.Fatalf("ReadAll(%s): %v", path, err)
	}
	return b
}

func testCreateReadBack(t *testing.T, d storage.Driver) {
	want := []byte("hello, data grid")
	mustWrite(t, d, "/v1/f.txt", want)
	if got := mustRead(t, d, "/v1/f.txt"); !bytes.Equal(got, want) {
		t.Errorf("read back %q, want %q", got, want)
	}
}

func testOverwriteTruncates(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/f", []byte("a long first version"))
	mustWrite(t, d, "/f", []byte("short"))
	if got := mustRead(t, d, "/f"); string(got) != "short" {
		t.Errorf("after overwrite: %q", got)
	}
}

func testAppend(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/seg", []byte("aaa"))
	w, err := d.OpenAppend("/seg")
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if _, err := w.Write([]byte("bbb")); err != nil {
		t.Fatalf("append write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := mustRead(t, d, "/seg"); string(got) != "aaabbb" {
		t.Errorf("after append: %q", got)
	}
}

func testAppendCreatesMissing(t *testing.T, d storage.Driver) {
	w, err := d.OpenAppend("/new/seg")
	if err != nil {
		t.Fatalf("OpenAppend new: %v", err)
	}
	fmt.Fprint(w, "x")
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := mustRead(t, d, "/new/seg"); string(got) != "x" {
		t.Errorf("appended new file: %q", got)
	}
}

func testOpenMissing(t *testing.T, d storage.Driver) {
	if _, err := d.Open("/nope"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("Open missing: %v, want ErrNotFound", err)
	}
}

func testStatFile(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/s/f", []byte("12345"))
	fi, err := d.Stat("/s/f")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if fi.Size != 5 || fi.IsDir {
		t.Errorf("Stat = %+v", fi)
	}
}

func testStatMissing(t *testing.T, d storage.Driver) {
	if _, err := d.Stat("/nope"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("Stat missing: %v, want ErrNotFound", err)
	}
}

func testRemove(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/rm", []byte("x"))
	if err := d.Remove("/rm"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := d.Open("/rm"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("open after remove: %v", err)
	}
	if err := d.Remove("/rm"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("second remove: %v, want ErrNotFound", err)
	}
}

func testRename(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/a/x", []byte("payload"))
	if err := d.Rename("/a/x", "/b/y"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := d.Open("/a/x"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("old path still opens: %v", err)
	}
	if got := mustRead(t, d, "/b/y"); string(got) != "payload" {
		t.Errorf("renamed contents: %q", got)
	}
}

func testRenameMissing(t *testing.T, d storage.Driver) {
	if err := d.Rename("/no", "/where"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("Rename missing: %v, want ErrNotFound", err)
	}
}

func testList(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/dir/a", []byte("1"))
	mustWrite(t, d, "/dir/b", []byte("22"))
	mustWrite(t, d, "/dir/sub/c", []byte("333"))
	infos, err := d.List("/dir")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(infos) != 3 {
		t.Fatalf("List returned %d entries: %+v", len(infos), infos)
	}
	if infos[0].Path != "/dir/a" || infos[1].Path != "/dir/b" || infos[2].Path != "/dir/sub" {
		t.Errorf("List order/paths: %+v", infos)
	}
	if !infos[2].IsDir {
		t.Errorf("sub should be a directory: %+v", infos[2])
	}
	if infos[1].Size != 2 {
		t.Errorf("size of b: %+v", infos[1])
	}
}

func testReadAt(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/ra", []byte("0123456789"))
	r, err := d.Open("/ra")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	buf := make([]byte, 4)
	if _, err := r.ReadAt(buf, 3); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "3456" {
		t.Errorf("ReadAt = %q", buf)
	}
	// positional read must not disturb the sequential cursor
	head := make([]byte, 2)
	if _, err := io.ReadFull(r, head); err != nil {
		t.Fatalf("sequential read: %v", err)
	}
	if string(head) != "01" {
		t.Errorf("sequential after ReadAt = %q", head)
	}
}

func testSeek(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/sk", []byte("abcdefgh"))
	r, err := d.Open("/sk")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if _, err := r.Seek(4, io.SeekStart); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	rest, _ := io.ReadAll(r)
	if string(rest) != "efgh" {
		t.Errorf("after seek: %q", rest)
	}
	if _, err := r.Seek(-2, io.SeekEnd); err != nil {
		t.Fatalf("SeekEnd: %v", err)
	}
	tail, _ := io.ReadAll(r)
	if string(tail) != "gh" {
		t.Errorf("after seek end: %q", tail)
	}
}

func testEmptyFile(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/empty", nil)
	if got := mustRead(t, d, "/empty"); len(got) != 0 {
		t.Errorf("empty file read %d bytes", len(got))
	}
	fi, err := d.Stat("/empty")
	if err != nil || fi.Size != 0 {
		t.Errorf("Stat empty: %+v err %v", fi, err)
	}
}

func testLargeFile(t *testing.T, d storage.Driver) {
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	mustWrite(t, d, "/big", big)
	if got := mustRead(t, d, "/big"); !bytes.Equal(got, big) {
		t.Error("large file round trip failed")
	}
}

func testConcurrentWriters(t *testing.T, d storage.Driver) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("/conc/f%d", i)
			data := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
			if err := storage.WriteAll(d, p, data); err != nil {
				t.Errorf("concurrent write %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/conc/f%d", i)
		got := mustRead(t, d, p)
		if len(got) != 100+i || got[0] != byte('a'+i) {
			t.Errorf("file %d corrupted: len %d", i, len(got))
		}
	}
}

func testSnapshotIsolation(t *testing.T, d storage.Driver) {
	mustWrite(t, d, "/snap", []byte("version-one"))
	r, err := d.Open("/snap")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	mustWrite(t, d, "/snap", []byte("version-two!"))
	got, _ := io.ReadAll(r)
	// Drivers may serve either version, but must serve a consistent one.
	if string(got) != "version-one" && string(got) != "version-two!" {
		t.Errorf("torn read: %q", got)
	}
}

func testMkdir(t *testing.T, d storage.Driver) {
	if err := d.Mkdir("/made/deep"); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	fi, err := d.Stat("/made/deep")
	if err != nil {
		t.Fatalf("Stat dir: %v", err)
	}
	if !fi.IsDir {
		t.Errorf("Stat dir = %+v, want IsDir", fi)
	}
}
