// Package storage defines the driver abstraction the SRB broker uses
// to reach heterogeneous storage systems, mirroring the paper's list:
// archival systems (HPSS, UniTree, ADSM), file systems (Unix, NTFS) and
// databases (Oracle, DB2, Sybase).
//
// A Driver manages the physical store of one resource. Drivers speak in
// physical paths; the logical name space and all policy (replication,
// access control, containers) live above, in the catalog and broker.
package storage

import (
	"errors"
	"io"
	"sort"
	"strings"
	"time"

	"gosrb/internal/types"
)

// ReadFile is an open handle for reading: sequential, seekable and
// positional reads are all supported so containers can extract member
// byte ranges without copying the whole segment.
type ReadFile interface {
	io.Reader
	io.Seeker
	io.ReaderAt
	io.Closer
}

// WriteFile is an open handle for writing. Contents become visible to
// readers atomically at Close.
type WriteFile interface {
	io.Writer
	io.Closer
}

// FileInfo describes one stored file or directory.
type FileInfo struct {
	Path    string // physical path within the resource
	Size    int64
	ModTime time.Time
	IsDir   bool
}

// Driver is the storage-system abstraction. Implementations must be
// safe for concurrent use.
type Driver interface {
	// Create opens path for writing, truncating any previous contents.
	// Parent directories are created implicitly.
	Create(path string) (WriteFile, error)
	// OpenAppend opens path for appending, creating it if absent.
	// Containers rely on this to grow segment files.
	OpenAppend(path string) (WriteFile, error)
	// Open opens path for reading.
	Open(path string) (ReadFile, error)
	// Stat describes path.
	Stat(path string) (FileInfo, error)
	// Remove deletes the file at path. Removing a missing path returns
	// types.ErrNotFound.
	Remove(path string) error
	// Rename atomically moves old to new within the resource.
	Rename(oldPath, newPath string) error
	// List returns the entries directly under dir, sorted by path.
	List(dir string) ([]FileInfo, error)
	// Mkdir creates a directory (and parents). Drivers with a flat
	// namespace may treat it as a no-op that only validates the path.
	Mkdir(path string) error
}

// Usage reports capacity accounting for drivers that track it; cache
// management uses it to decide when to purge.
type Usage struct {
	Bytes int64 // bytes currently stored
	Files int   // number of files
}

// UsageReporter is an optional Driver extension.
type UsageReporter interface {
	Usage() Usage
}

// WriteAll stores contents at path in a single call.
func WriteAll(d Driver, path string, contents []byte) error {
	w, err := d.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(contents); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadAll retrieves the full contents of path.
func ReadAll(d Driver, path string) ([]byte, error) {
	r, err := d.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// ReadRange reads length bytes starting at offset from path. It is the
// primitive container member extraction uses.
func ReadRange(d Driver, path string, offset, length int64) ([]byte, error) {
	r, err := d.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, length)
	n, err := r.ReadAt(buf, offset)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf[:n], nil
}

// Copy streams the file at srcPath on src to dstPath on dst and returns
// the byte count.
func Copy(dst Driver, dstPath string, src Driver, srcPath string) (int64, error) {
	r, err := src.Open(srcPath)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	w, err := dst.Create(dstPath)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(w, r)
	if err != nil {
		w.Close()
		return n, err
	}
	return n, w.Close()
}

// ValidPhysicalPath reports whether p is acceptable as a physical path:
// cleaned, absolute, NUL-free and not escaping the root.
func ValidPhysicalPath(p string) bool {
	if p == "" || strings.Contains(p, "\x00") {
		return false
	}
	c := types.CleanPath(p)
	return c == p || c == strings.TrimSuffix(p, "/")
}

// SortInfos orders listing entries by path, the order List must return.
func SortInfos(infos []FileInfo) {
	sort.Slice(infos, func(i, j int) bool { return infos[i].Path < infos[j].Path })
}
