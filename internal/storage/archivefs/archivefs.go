// Package archivefs simulates an archival storage system in the mould
// of HPSS, UniTree or ADSM: opening a file that is not staged pays a
// configurable stage latency (tape mount and positioning), after which
// the file sits in a bounded staging cache with LRU eviction and reads
// stream at a configurable bandwidth.
//
// The paper's testbeds used real tape archives; this driver preserves
// the property those systems impose on the design — high fixed
// per-open cost, cheap sequential streaming — which is precisely what
// containers and cache resources exploit.
package archivefs

import (
	"container/list"
	"sync"
	"time"

	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
)

// Config shapes the simulated archive.
type Config struct {
	// StageLatency is paid on each open of an unstaged file.
	StageLatency time.Duration
	// BandwidthBytesPerSec throttles streaming reads; 0 means unlimited.
	BandwidthBytesPerSec int64
	// StageCapacity bounds how many files stay staged; 0 means 64.
	StageCapacity int
}

// Stats counts archive activity; retrieve with Stats.
type Stats struct {
	Stages    int64 // cold opens that paid the stage latency
	CacheHits int64 // opens served from the staging cache
	Evictions int64 // staged files displaced by LRU pressure
}

// FS is a simulated archival storage.Driver. Safe for concurrent use.
type FS struct {
	cfg  Config
	tape *memfs.FS

	mu     sync.Mutex
	lru    *list.List               // front = most recent
	staged map[string]*list.Element // path -> lru node
	stats  Stats

	// sleep is swappable so tests can count simulated waits without
	// slowing the suite down.
	sleep func(time.Duration)
}

// New returns an empty simulated archive.
func New(cfg Config) *FS {
	if cfg.StageCapacity <= 0 {
		cfg.StageCapacity = 64
	}
	return &FS{
		cfg:    cfg,
		tape:   memfs.New(),
		lru:    list.New(),
		staged: make(map[string]*list.Element),
		sleep:  time.Sleep,
	}
}

// SetSleep overrides the wait function (tests inject a recorder).
func (f *FS) SetSleep(fn func(time.Duration)) { f.sleep = fn }

// Stats returns a snapshot of the activity counters.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Staged reports whether path is currently in the staging cache.
func (f *FS) Staged(path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.staged[path]
	return ok
}

// stage simulates the tape fetch for path and returns the wait served.
func (f *FS) stage(path string) time.Duration {
	f.mu.Lock()
	if el, ok := f.staged[path]; ok {
		f.lru.MoveToFront(el)
		f.stats.CacheHits++
		f.mu.Unlock()
		return 0
	}
	f.stats.Stages++
	el := f.lru.PushFront(path)
	f.staged[path] = el
	for f.lru.Len() > f.cfg.StageCapacity {
		victim := f.lru.Back()
		f.lru.Remove(victim)
		delete(f.staged, victim.Value.(string))
		f.stats.Evictions++
	}
	f.mu.Unlock()
	return f.cfg.StageLatency
}

// unstage drops path from the staging cache (used after remove/rename).
func (f *FS) unstage(path string) {
	f.mu.Lock()
	if el, ok := f.staged[path]; ok {
		f.lru.Remove(el)
		delete(f.staged, path)
	}
	f.mu.Unlock()
}

// Create implements storage.Driver. Writes land in the archive's disk
// cache and the file is considered staged afterwards.
func (f *FS) Create(path string) (storage.WriteFile, error) {
	w, err := f.tape.Create(path)
	if err != nil {
		return nil, err
	}
	return &stagedWriter{f: f, path: path, inner: w}, nil
}

// OpenAppend implements storage.Driver.
func (f *FS) OpenAppend(path string) (storage.WriteFile, error) {
	w, err := f.tape.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &stagedWriter{f: f, path: path, inner: w}, nil
}

type stagedWriter struct {
	f     *FS
	path  string
	inner storage.WriteFile
}

func (w *stagedWriter) Write(p []byte) (int, error) { return w.inner.Write(p) }

func (w *stagedWriter) Close() error {
	if err := w.inner.Close(); err != nil {
		return err
	}
	// Freshly written files are hot in the disk cache.
	w.f.stage(w.path)
	return nil
}

// Open implements storage.Driver, paying the stage latency on cold hits.
func (f *FS) Open(path string) (storage.ReadFile, error) {
	r, err := f.tape.Open(path)
	if err != nil {
		return nil, err
	}
	if wait := f.stage(path); wait > 0 {
		f.sleep(wait)
	}
	return &throttledReader{inner: r, bw: f.cfg.BandwidthBytesPerSec, sleep: f.sleep}, nil
}

// throttledReader delays reads to model streaming bandwidth.
type throttledReader struct {
	inner storage.ReadFile
	bw    int64
	sleep func(time.Duration)
}

func (r *throttledReader) wait(n int) {
	if r.bw <= 0 || n <= 0 {
		return
	}
	d := time.Duration(int64(n) * int64(time.Second) / r.bw)
	if d > 0 {
		r.sleep(d)
	}
}

func (r *throttledReader) Read(p []byte) (int, error) {
	n, err := r.inner.Read(p)
	r.wait(n)
	return n, err
}

func (r *throttledReader) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.inner.ReadAt(p, off)
	r.wait(n)
	return n, err
}

func (r *throttledReader) Seek(offset int64, whence int) (int64, error) {
	return r.inner.Seek(offset, whence)
}

func (r *throttledReader) Close() error { return r.inner.Close() }

// Stat implements storage.Driver (no latency: MCAT-style metadata is on
// disk even for tape-resident files).
func (f *FS) Stat(path string) (storage.FileInfo, error) { return f.tape.Stat(path) }

// Remove implements storage.Driver.
func (f *FS) Remove(path string) error {
	f.unstage(path)
	return f.tape.Remove(path)
}

// Rename implements storage.Driver.
func (f *FS) Rename(oldPath, newPath string) error {
	f.unstage(oldPath)
	return f.tape.Rename(oldPath, newPath)
}

// List implements storage.Driver.
func (f *FS) List(dir string) ([]storage.FileInfo, error) { return f.tape.List(dir) }

// Mkdir implements storage.Driver.
func (f *FS) Mkdir(path string) error { return f.tape.Mkdir(path) }

// Usage implements storage.UsageReporter.
func (f *FS) Usage() storage.Usage { return f.tape.Usage() }

var _ storage.Driver = (*FS)(nil)
var _ storage.UsageReporter = (*FS)(nil)
