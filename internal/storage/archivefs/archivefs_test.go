package archivefs

import (
	"io"
	"testing"
	"time"

	"gosrb/internal/storage"
	"gosrb/internal/storage/drivertest"
)

func TestConformance(t *testing.T) {
	drivertest.Run(t, func(t *testing.T) storage.Driver {
		a := New(Config{}) // zero latency so the suite runs fast
		return a
	})
}

// recorder swaps time.Sleep for a counter so stage waits are observable
// without slowing tests.
type recorder struct {
	total time.Duration
	calls int
}

func (r *recorder) sleep(d time.Duration) { r.total += d; r.calls++ }

func newRecorded(cfg Config) (*FS, *recorder) {
	a := New(cfg)
	rec := &recorder{}
	a.SetSleep(rec.sleep)
	return a, rec
}

func TestColdOpenPaysStageLatency(t *testing.T) {
	a, rec := newRecorded(Config{StageLatency: 100 * time.Millisecond})
	if err := storage.WriteAll(a, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Writing stages the file, so the first read is warm.
	if _, err := storage.ReadAll(a, "/f"); err != nil {
		t.Fatal(err)
	}
	if rec.total != 0 {
		t.Errorf("warm read slept %v", rec.total)
	}
	st := a.Stats()
	if st.Stages != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEvictionForcesRestage(t *testing.T) {
	a, rec := newRecorded(Config{StageLatency: time.Second, StageCapacity: 2})
	for _, p := range []string{"/a", "/b", "/c"} {
		if err := storage.WriteAll(a, p, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2: writing /c evicted /a.
	if a.Staged("/a") {
		t.Error("/a should have been evicted")
	}
	if !a.Staged("/b") || !a.Staged("/c") {
		t.Error("/b and /c should be staged")
	}
	before := rec.total
	if _, err := storage.ReadAll(a, "/a"); err != nil {
		t.Fatal(err)
	}
	if rec.total-before != time.Second {
		t.Errorf("re-stage slept %v, want 1s", rec.total-before)
	}
	if st := a.Stats(); st.Evictions < 1 {
		t.Errorf("stats = %+v, want evictions", st)
	}
}

func TestLRUOrderRespectsAccess(t *testing.T) {
	a, _ := newRecorded(Config{StageLatency: time.Second, StageCapacity: 2})
	storage.WriteAll(a, "/a", []byte("1"))
	storage.WriteAll(a, "/b", []byte("2"))
	// Touch /a so /b becomes the LRU victim.
	if _, err := storage.ReadAll(a, "/a"); err != nil {
		t.Fatal(err)
	}
	storage.WriteAll(a, "/c", []byte("3"))
	if !a.Staged("/a") {
		t.Error("recently read /a should survive")
	}
	if a.Staged("/b") {
		t.Error("/b should be the eviction victim")
	}
}

func TestBandwidthThrottle(t *testing.T) {
	a, rec := newRecorded(Config{BandwidthBytesPerSec: 1 << 20}) // 1 MiB/s
	data := make([]byte, 1<<20)
	if err := storage.WriteAll(a, "/big", data); err != nil {
		t.Fatal(err)
	}
	r, err := a.Open("/big")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	// Reading 1 MiB at 1 MiB/s should accumulate ~1s of simulated wait.
	if rec.total < 900*time.Millisecond || rec.total > 1100*time.Millisecond {
		t.Errorf("throttle waited %v, want ~1s", rec.total)
	}
}

func TestRemoveUnstages(t *testing.T) {
	a, _ := newRecorded(Config{StageLatency: time.Second})
	storage.WriteAll(a, "/f", []byte("x"))
	if !a.Staged("/f") {
		t.Fatal("write should stage")
	}
	if err := a.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if a.Staged("/f") {
		t.Error("remove should unstage")
	}
}

func TestRenameUnstagesOldPath(t *testing.T) {
	a, rec := newRecorded(Config{StageLatency: time.Second})
	storage.WriteAll(a, "/old", []byte("x"))
	if err := a.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	before := rec.total
	if _, err := storage.ReadAll(a, "/new"); err != nil {
		t.Fatal(err)
	}
	if rec.total-before != time.Second {
		t.Errorf("read after rename should be cold, slept %v", rec.total-before)
	}
}
