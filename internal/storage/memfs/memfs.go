// Package memfs implements an in-memory storage driver. It models the
// low-latency cache tier of the data grid (the paper's distributed
// caches) and is the workhorse store for tests and benchmarks.
package memfs

import (
	"bytes"
	"strings"
	"sync"
	"time"

	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// FS is an in-memory storage.Driver. The zero value is not usable; call
// New. FS is safe for concurrent use. Writes become visible atomically
// when the write handle is closed.
type FS struct {
	mu    sync.RWMutex
	files map[string]*entry
	dirs  map[string]bool
	now   func() time.Time
}

type entry struct {
	data    []byte
	modTime time.Time
}

// New returns an empty in-memory store.
func New() *FS {
	return &FS{
		files: make(map[string]*entry),
		dirs:  map[string]bool{"/": true},
		now:   time.Now,
	}
}

// SetClock overrides the time source (tests).
func (f *FS) SetClock(now func() time.Time) { f.now = now }

// clean normalises a physical path, rejecting NULs and the bare root.
func (f *FS) clean(p string) (string, error) {
	if strings.Contains(p, "\x00") {
		return "", types.E("path", p, types.ErrInvalid)
	}
	c := types.CleanPath(p)
	if c == "/" {
		return "", types.E("path", p, types.ErrInvalid)
	}
	return c, nil
}

// Create implements storage.Driver.
func (f *FS) Create(path string) (storage.WriteFile, error) {
	p, err := f.clean(path)
	if err != nil {
		return nil, err
	}
	return &writer{fs: f, path: p}, nil
}

// OpenAppend implements storage.Driver.
func (f *FS) OpenAppend(path string) (storage.WriteFile, error) {
	p, err := f.clean(path)
	if err != nil {
		return nil, err
	}
	w := &writer{fs: f, path: p}
	f.mu.RLock()
	if e, ok := f.files[p]; ok {
		w.buf.Write(e.data)
	}
	f.mu.RUnlock()
	return w, nil
}

type writer struct {
	fs     *FS
	path   string
	buf    bytes.Buffer
	closed bool
}

func (w *writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, types.E("write", w.path, types.ErrInvalid)
	}
	return w.buf.Write(p)
}

// Close publishes the accumulated bytes atomically.
func (w *writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	data := append([]byte(nil), w.buf.Bytes()...)
	w.fs.mu.Lock()
	w.fs.files[w.path] = &entry{data: data, modTime: w.fs.now()}
	w.fs.markDirs(w.path)
	w.fs.mu.Unlock()
	return nil
}

// markDirs records every ancestor directory of p; callers hold mu.
func (f *FS) markDirs(p string) {
	for _, a := range types.Ancestors(p) {
		f.dirs[a] = true
	}
}

// Open implements storage.Driver. The returned handle reads a snapshot:
// later writes to the same path do not affect it.
func (f *FS) Open(path string) (storage.ReadFile, error) {
	p, err := f.clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	e, ok := f.files[p]
	f.mu.RUnlock()
	if !ok {
		return nil, types.E("open", path, types.ErrNotFound)
	}
	return &reader{Reader: *bytes.NewReader(e.data)}, nil
}

type reader struct {
	bytes.Reader
}

func (r *reader) Close() error { return nil }

// Stat implements storage.Driver.
func (f *FS) Stat(path string) (storage.FileInfo, error) {
	p, err := f.clean(path)
	if err != nil {
		return storage.FileInfo{}, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if e, ok := f.files[p]; ok {
		return storage.FileInfo{Path: p, Size: int64(len(e.data)), ModTime: e.modTime}, nil
	}
	if f.dirs[p] {
		return storage.FileInfo{Path: p, IsDir: true}, nil
	}
	return storage.FileInfo{}, types.E("stat", path, types.ErrNotFound)
}

// Remove implements storage.Driver.
func (f *FS) Remove(path string) error {
	p, err := f.clean(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[p]; !ok {
		return types.E("remove", path, types.ErrNotFound)
	}
	delete(f.files, p)
	return nil
}

// Rename implements storage.Driver.
func (f *FS) Rename(oldPath, newPath string) error {
	op, err := f.clean(oldPath)
	if err != nil {
		return err
	}
	np, err := f.clean(newPath)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.files[op]
	if !ok {
		return types.E("rename", oldPath, types.ErrNotFound)
	}
	delete(f.files, op)
	f.files[np] = e
	f.markDirs(np)
	return nil
}

// List implements storage.Driver: direct children of dir, sorted.
func (f *FS) List(dir string) ([]storage.FileInfo, error) {
	d := types.CleanPath(dir)
	f.mu.RLock()
	defer f.mu.RUnlock()
	if !f.dirs[d] {
		// A directory exists if marked or if any file lies beneath it.
		found := false
		for p := range f.files {
			if types.Within(d, p) {
				found = true
				break
			}
		}
		if !found {
			return nil, types.E("list", dir, types.ErrNotFound)
		}
	}
	seen := make(map[string]storage.FileInfo)
	for p, e := range f.files {
		if !types.Within(d, p) {
			continue
		}
		if types.Parent(p) == d {
			seen[p] = storage.FileInfo{Path: p, Size: int64(len(e.data)), ModTime: e.modTime}
		} else {
			// intermediate directory
			child := childOf(d, p)
			seen[child] = storage.FileInfo{Path: child, IsDir: true}
		}
	}
	for p := range f.dirs {
		if types.Parent(p) == d && p != d {
			if _, ok := seen[p]; !ok {
				seen[p] = storage.FileInfo{Path: p, IsDir: true}
			}
		}
	}
	out := make([]storage.FileInfo, 0, len(seen))
	for _, fi := range seen {
		out = append(out, fi)
	}
	storage.SortInfos(out)
	return out, nil
}

// childOf returns the immediate child of dir on the way to descendant p.
func childOf(dir, p string) string {
	rest := p[len(dir):]
	if dir == "/" {
		rest = p
	}
	for i := 1; i < len(rest); i++ {
		if rest[i] == '/' {
			return types.Join(dir, rest[1:i])
		}
	}
	return p
}

// Mkdir implements storage.Driver.
func (f *FS) Mkdir(path string) error {
	p := types.CleanPath(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dirs[p] = true
	f.markDirs(p)
	return nil
}

// Usage implements storage.UsageReporter.
func (f *FS) Usage() storage.Usage {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var u storage.Usage
	for _, e := range f.files {
		u.Bytes += int64(len(e.data))
		u.Files++
	}
	return u
}

var _ storage.Driver = (*FS)(nil)
var _ storage.UsageReporter = (*FS)(nil)
