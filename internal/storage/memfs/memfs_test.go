package memfs

import (
	"errors"
	"testing"
	"testing/quick"

	"gosrb/internal/storage"
	"gosrb/internal/storage/drivertest"
	"gosrb/internal/types"
)

func TestConformance(t *testing.T) {
	drivertest.Run(t, func(t *testing.T) storage.Driver { return New() })
}

func TestUsage(t *testing.T) {
	f := New()
	if err := storage.WriteAll(f, "/a", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteAll(f, "/b", make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	u := f.Usage()
	if u.Bytes != 15 || u.Files != 2 {
		t.Errorf("Usage = %+v", u)
	}
	if err := f.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if u := f.Usage(); u.Bytes != 5 || u.Files != 1 {
		t.Errorf("Usage after remove = %+v", u)
	}
}

func TestInvalidPaths(t *testing.T) {
	f := New()
	if _, err := f.Create("/"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("Create root: %v", err)
	}
	if _, err := f.Create("/a\x00b"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("Create NUL: %v", err)
	}
	if err := storage.WriteAll(f, "relative/p", []byte("x")); err != nil {
		t.Errorf("relative paths should be cleaned to absolute: %v", err)
	}
	if _, err := f.Open("/relative/p"); err != nil {
		t.Errorf("cleaned path should resolve: %v", err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	f := New()
	w, err := f.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("late")); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("write after close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close should be nil: %v", err)
	}
}

func TestListRoot(t *testing.T) {
	f := New()
	if err := storage.WriteAll(f, "/top", []byte("x")); err != nil {
		t.Fatal(err)
	}
	infos, err := f.List("/")
	if err != nil {
		t.Fatalf("List root: %v", err)
	}
	if len(infos) != 1 || infos[0].Path != "/top" {
		t.Errorf("List root = %+v", infos)
	}
}

func TestListMissing(t *testing.T) {
	f := New()
	if _, err := f.List("/ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("List missing: %v", err)
	}
}

// Property: whatever bytes go in come back out unchanged.
func TestRoundTripProperty(t *testing.T) {
	f := New()
	i := 0
	fn := func(data []byte) bool {
		i++
		p := types.Join("/prop", string(rune('a'+i%26))+"f")
		if err := storage.WriteAll(f, p, data); err != nil {
			return false
		}
		got, err := storage.ReadAll(f, p)
		if err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for j := range got {
			if got[j] != data[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestReadRangeHelper(t *testing.T) {
	f := New()
	if err := storage.WriteAll(f, "/r", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := storage.ReadRange(f, "/r", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "234" {
		t.Errorf("ReadRange = %q", got)
	}
	// Range running past EOF returns the available prefix.
	got, err = storage.ReadRange(f, "/r", 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "89" {
		t.Errorf("ReadRange past EOF = %q", got)
	}
}

func TestCopyHelper(t *testing.T) {
	a, b := New(), New()
	if err := storage.WriteAll(a, "/src", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	n, err := storage.Copy(b, "/dst", a, "/src")
	if err != nil || n != 7 {
		t.Fatalf("Copy = %d, %v", n, err)
	}
	got, err := storage.ReadAll(b, "/dst")
	if err != nil || string(got) != "payload" {
		t.Errorf("copied = %q, %v", got, err)
	}
}
