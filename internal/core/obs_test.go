package core

import (
	"fmt"
	"sync"
	"testing"

	"gosrb/internal/storage/memfs"
)

// TestBrokerOpMetrics checks that broker operations land in the right
// metric families: counts, error counts, latency observations and the
// per-driver byte totals maintained by the storage decorator.
func TestBrokerOpMetrics(t *testing.T) {
	b := newBroker(t)
	payload := []byte("metered bytes")
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/m.dat", Data: payload, Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("alice", "/home/m.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("alice", "/home/nope.dat"); err == nil {
		t.Fatal("expected notfound")
	}
	s := b.Metrics().Snapshot()
	ing := s.Ops["broker.ingest"]
	if ing.Count != 1 || ing.Errors != 0 {
		t.Errorf("ingest = %+v", ing)
	}
	get := s.Ops["broker.get"]
	if get.Count != 2 || get.Errors != 1 {
		t.Errorf("get = %+v", get)
	}
	if get.TotalMicros < 0 || get.P50Micros <= 0 {
		t.Errorf("get latency not observed: %+v", get)
	}
	if got := s.Counters["storage.disk1.bytes_in"]; got != int64(len(payload)) {
		t.Errorf("bytes_in = %d, want %d", got, len(payload))
	}
	if got := s.Counters["storage.disk1.bytes_out"]; got != int64(len(payload)) {
		t.Errorf("bytes_out = %d, want %d", got, len(payload))
	}
	if s.Counters["storage.disk1.writes"] == 0 || s.Counters["storage.disk1.reads"] == 0 {
		t.Errorf("read/write op counters missing: %v", s.Counters)
	}
}

// TestReplicaFanoutMetrics writes through a logical resource and checks
// the fan-out success counter; an offline member must count as failure.
func TestReplicaFanoutMetrics(t *testing.T) {
	b := newBroker(t)
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/f.dat", Data: []byte("one"), Resource: "mirror"}); err != nil {
		t.Fatal(err)
	}
	snap := b.Metrics().Snapshot()
	okBefore := snap.Counters["replica.fanout.ok"]
	if okBefore < 2 {
		t.Errorf("fanout.ok = %d after mirror ingest, want >= 2", okBefore)
	}
	// Rewrite with one member offline: one ok, one fail, and the read
	// that follows fails over past the dirty replica.
	b.Cat.SetResourceOnline("disk1", false)
	if err := b.Reingest("alice", "/home/f.dat", []byte("two")); err != nil {
		t.Fatal(err)
	}
	snap = b.Metrics().Snapshot()
	if snap.Counters["replica.fanout.fail"] == 0 {
		t.Errorf("fanout.fail = 0 with an offline member")
	}
	if snap.Counters["replica.fanout.ok"] <= okBefore {
		t.Errorf("fanout.ok did not grow: %d -> %d", okBefore, snap.Counters["replica.fanout.ok"])
	}
}

// TestSetMetricsNilDisables is the baseline path the overhead benchmark
// relies on: a nil registry must make every recording a no-op without
// breaking any operation.
func TestSetMetricsNilDisables(t *testing.T) {
	cat := newBroker(t).Cat
	b := New(cat, "srb1")
	b.SetMetrics(nil)
	// Mount after SetMetrics(nil) so drivers skip byte counting too.
	if err := b.Remount("disk1", memfs.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/n.dat", Data: []byte("x"), Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("alice", "/home/n.dat"); err != nil {
		t.Fatal(err)
	}
	if b.Metrics() != nil {
		t.Error("metrics registry should be nil")
	}
}

// TestMetricsConcurrentBrokerOps hammers the registry from concurrent
// broker operations; under -race it verifies the whole recording path
// (op shims, histogram buckets, storage byte counters) is data-race
// free, and the counts must still add up exactly.
func TestMetricsConcurrentBrokerOps(t *testing.T) {
	b := newBroker(t)
	const workers = 8
	const iters = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/home/c%d.dat", w)
			if _, err := b.Ingest("alice", IngestOpts{Path: path, Data: []byte("z"), Resource: "disk1"}); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				if _, err := b.Get("alice", path); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					b.Metrics().Snapshot() // concurrent readers
				}
			}
		}(w)
	}
	wg.Wait()
	s := b.Metrics().Snapshot()
	if got := s.Ops["broker.get"].Count; got != workers*iters {
		t.Errorf("broker.get count = %d, want %d", got, workers*iters)
	}
	if got := s.Ops["broker.ingest"].Count; got != workers {
		t.Errorf("broker.ingest count = %d, want %d", got, workers)
	}
}
