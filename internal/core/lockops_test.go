package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// clockBroker returns a broker with a controllable clock.
func clockBroker(t *testing.T) (*Broker, *time.Time) {
	b := newBroker(t)
	now := time.Unix(1_000_000, 0)
	b.SetClock(func() time.Time { return now })
	return b, &now
}

func TestSharedLockBlocksOtherWriters(t *testing.T) {
	b, _ := clockBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("v1"), Resource: "disk1"})
	b.Chmod("alice", "/home/f", "bob", acl.Write)
	if err := b.Lock("alice", "/home/f", types.LockShared, time.Hour); err != nil {
		t.Fatal(err)
	}
	// Bob may read but not write.
	if _, err := b.Get("bob", "/home/f"); err != nil {
		t.Errorf("shared lock should allow reads: %v", err)
	}
	if err := b.Reingest("bob", "/home/f", []byte("v2")); !errors.Is(err, types.ErrLocked) {
		t.Errorf("locked write: %v", err)
	}
	// The holder still writes.
	if err := b.Reingest("alice", "/home/f", []byte("v2")); err != nil {
		t.Errorf("holder write: %v", err)
	}
}

func TestExclusiveLockBlocksReads(t *testing.T) {
	b, _ := clockBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("x"), Resource: "disk1"})
	b.Chmod("alice", "/home/f", "bob", acl.Write)
	b.Lock("alice", "/home/f", types.LockExclusive, time.Hour)
	if _, err := b.Get("bob", "/home/f"); !errors.Is(err, types.ErrLocked) {
		t.Errorf("exclusive read: %v", err)
	}
	if _, err := b.Get("alice", "/home/f"); err != nil {
		t.Errorf("holder read: %v", err)
	}
	// A second user cannot stack a lock.
	if err := b.Lock("bob", "/home/f", types.LockShared, time.Hour); !errors.Is(err, types.ErrLocked) {
		t.Errorf("second lock: %v", err)
	}
}

func TestLockExpiry(t *testing.T) {
	b, now := clockBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("x"), Resource: "disk1"})
	b.Chmod("alice", "/home/f", "bob", acl.Write)
	b.Lock("alice", "/home/f", types.LockExclusive, time.Minute)
	if _, err := b.Get("bob", "/home/f"); !errors.Is(err, types.ErrLocked) {
		t.Fatalf("fresh lock: %v", err)
	}
	// "A lock placed by a user has an expiry date at which time it gets
	// unlocked."
	*now = now.Add(2 * time.Minute)
	if _, err := b.Get("bob", "/home/f"); err != nil {
		t.Errorf("expired lock should unlock: %v", err)
	}
	if err := b.Reingest("bob", "/home/f", []byte("y")); err != nil {
		t.Errorf("write after expiry: %v", err)
	}
}

func TestUnlock(t *testing.T) {
	b, _ := clockBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("x"), Resource: "disk1"})
	b.Lock("alice", "/home/f", types.LockShared, time.Hour)
	if err := b.Unlock("bob", "/home/f"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("foreign unlock: %v", err)
	}
	if err := b.Unlock("alice", "/home/f"); err != nil {
		t.Fatal(err)
	}
	o, _ := b.Cat.GetObject("/home/f")
	if o.Lock.Kind != types.LockNone {
		t.Error("lock should be cleared")
	}
	// Admin can break locks.
	b.Lock("alice", "/home/f", types.LockShared, time.Hour)
	if err := b.Unlock("admin", "/home/f"); err != nil {
		t.Errorf("admin unlock: %v", err)
	}
}

func TestCheckoutCheckinVersions(t *testing.T) {
	b, _ := clockBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/doc", Data: []byte("draft 1"), Resource: "disk1"})
	b.Chmod("alice", "/home/doc", "bob", acl.Write)
	if err := b.Checkout("alice", "/home/doc"); err != nil {
		t.Fatal(err)
	}
	// "A checkout by a user disallows any changes to be made" by others.
	if err := b.Reingest("bob", "/home/doc", []byte("intrusion")); !errors.Is(err, types.ErrLocked) {
		t.Errorf("write during checkout: %v", err)
	}
	if err := b.Checkout("bob", "/home/doc"); !errors.Is(err, types.ErrLocked) {
		t.Errorf("double checkout: %v", err)
	}
	// Checkin preserves the old version with a distinct number.
	if err := b.Checkin("alice", "/home/doc", []byte("draft 2"), "second draft"); err != nil {
		t.Fatal(err)
	}
	data, _ := b.Get("alice", "/home/doc")
	if string(data) != "draft 2" {
		t.Errorf("current = %q", data)
	}
	vers, err := b.Versions("alice", "/home/doc")
	if err != nil || len(vers) != 1 || vers[0].Number != 1 {
		t.Fatalf("versions = %+v, %v", vers, err)
	}
	old, err := b.GetVersion("alice", "/home/doc", 1)
	if err != nil || string(old) != "draft 1" {
		t.Errorf("version 1 = %q, %v", old, err)
	}
	// Another cycle makes version 2.
	b.Checkout("alice", "/home/doc")
	b.Checkin("alice", "/home/doc", []byte("draft 3"), "")
	vers, _ = b.Versions("alice", "/home/doc")
	if len(vers) != 2 || vers[1].Number != 2 {
		t.Errorf("versions = %+v", vers)
	}
	v2, _ := b.GetVersion("alice", "/home/doc", 2)
	if string(v2) != "draft 2" {
		t.Errorf("version 2 = %q", v2)
	}
	if _, err := b.GetVersion("alice", "/home/doc", 9); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing version: %v", err)
	}
	// Checkin without checkout fails.
	if err := b.Checkin("bob", "/home/doc", []byte("x"), ""); !errors.Is(err, types.ErrLocked) {
		t.Errorf("checkin without checkout: %v", err)
	}
}

func TestPinSurvivesPurge(t *testing.T) {
	b, _ := clockBroker(t)
	// cache1 is a cache-class resource.
	if err := b.AddPhysicalResource("admin", "cache1", types.ClassCache, "memfs", newCacheStore(t)); err != nil {
		t.Fatal(err)
	}
	// Three objects on disk1, replicated to cache1.
	for i := 0; i < 3; i++ {
		p := fmt.Sprintf("/home/f%d", i)
		b.Ingest("alice", IngestOpts{Path: p, Data: make([]byte, 1000), Resource: "disk1"})
		if _, err := b.Replicate("alice", p, "cache1"); err != nil {
			t.Fatal(err)
		}
	}
	// Pin one cached replica.
	if err := b.Pin("alice", "/home/f1", "cache1", time.Hour); err != nil {
		t.Fatal(err)
	}
	// Purge to zero: everything unpinned goes; the pinned replica stays.
	evicted, err := b.PurgeCache("admin", "cache1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 2 {
		t.Errorf("evicted = %d, want 2", evicted)
	}
	o, _ := b.Cat.GetObject("/home/f1")
	onCache := false
	for _, r := range o.Replicas {
		if r.Resource == "cache1" {
			onCache = true
		}
	}
	if !onCache {
		t.Error("pinned replica must survive the purge")
	}
	// Unpin, purge again: now it goes.
	if err := b.Unpin("alice", "/home/f1", "cache1"); err != nil {
		t.Fatal(err)
	}
	evicted, _ = b.PurgeCache("admin", "cache1", 0)
	if evicted != 1 {
		t.Errorf("second purge evicted = %d", evicted)
	}
	// Non-admin cannot purge.
	if _, err := b.PurgeCache("alice", "cache1", 0); !errors.Is(err, types.ErrPermission) {
		t.Errorf("non-admin purge: %v", err)
	}
}

func TestPurgeNeverDropsOnlyCopy(t *testing.T) {
	b, _ := clockBroker(t)
	b.AddPhysicalResource("admin", "cache1", types.ClassCache, "memfs", newCacheStore(t))
	// Object living only on the cache.
	b.Ingest("alice", IngestOpts{Path: "/home/solo", Data: make([]byte, 100), Resource: "cache1"})
	evicted, err := b.PurgeCache("admin", "cache1", 0)
	if err != nil || evicted != 0 {
		t.Errorf("purge = %d, %v", evicted, err)
	}
	if _, err := b.Get("alice", "/home/solo"); err != nil {
		t.Errorf("sole copy must survive: %v", err)
	}
}

func TestPinGuards(t *testing.T) {
	b, _ := clockBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("x"), Resource: "disk1"})
	// Pinning a resource the object has no replica on fails.
	if err := b.Pin("alice", "/home/f", "disk2", time.Hour); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("pin wrong resource: %v", err)
	}
}

// newCacheStore returns a memfs store used as a cache resource.
func newCacheStore(t *testing.T) *memfs.FS {
	t.Helper()
	return memfs.New()
}
