package core

import (
	"errors"
	"fmt"

	"gosrb/internal/acl"
	"gosrb/internal/obs"
	"gosrb/internal/replica"
	"gosrb/internal/resilience"
	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// This file is the broker side of the background maintenance engine:
// the task executor the repair worker pool calls, and the anti-entropy
// scrubber that walks the catalog, re-hashes replica bytes against the
// stored SHA-256, repairs divergence from a verified source and
// re-replicates under-replicated objects.

// RunRepairTask executes one queued repair task: bring the replica of
// t.Path on t.Resource in line with the catalog. A nil return completes
// the task (including the no-op cases: object deleted, replica already
// clean); any error reschedules it under the engine's backoff.
func (b *Broker) RunRepairTask(t types.RepairTask, sp *obs.Span) error {
	o, err := b.Cat.GetObject(t.Path)
	if err != nil {
		if errors.Is(err, types.ErrNotFound) {
			return nil // the object is gone; nothing left to repair
		}
		return err
	}
	var rep *types.Replica
	for i := range o.Replicas {
		if o.Replicas[i].Resource == t.Resource {
			rep = &o.Replicas[i]
			break
		}
	}
	if rep == nil {
		_, err := b.rm.Replicate(t.Path, t.Resource)
		return err
	}
	if rep.Status == types.ReplicaClean {
		return nil
	}
	return b.rm.SyncResource(t.Path, t.Resource)
}

// scrubObject re-hashes every reachable replica of one file object
// against the catalog checksum, marks divergent replicas dirty, repairs
// them from a just-verified source and re-replicates members of the
// object's logical resources that lost their copy. Replicas on offline
// resources or behind open breakers are skipped; what cannot be
// repaired in-pass is deferred to the repair queue.
func (b *Broker) scrubObject(path string, sp *obs.Span, rpt *types.ScrubReport) {
	o, err := b.Cat.GetObject(path)
	if err != nil || o.Kind != types.KindFile || o.Container != "" || o.Checksum == "" {
		return
	}
	rpt.Objects++
	needRepair := false
	for _, r := range o.Replicas {
		if r.Registered {
			rpt.Skipped++ // bytes SRB does not control; checksums may drift
			continue
		}
		if r.Status == types.ReplicaDirty {
			needRepair = true
			continue
		}
		res, rerr := b.Cat.GetResource(r.Resource)
		if rerr != nil || !res.Online {
			rpt.Skipped++
			continue
		}
		if b.breakers.For("resource."+r.Resource).State() == resilience.Open {
			sp.Event(obs.EventBreakerFast, "resource."+r.Resource)
			rpt.Skipped++
			continue
		}
		d, derr := b.Driver(r.Resource)
		if derr != nil {
			rpt.Skipped++
			continue
		}
		data, readErr := storage.ReadAll(d, r.PhysicalPath)
		rpt.Scanned++
		if readErr == nil && replica.Checksum(data) == o.Checksum {
			continue
		}
		rpt.Corrupt++
		needRepair = true
		detail := path + "@" + r.Resource
		if readErr != nil {
			detail += " unreadable"
		} else {
			detail += " divergent"
		}
		sp.Event(obs.EventScrub, detail)
		num := r.Number
		b.Cat.UpdateObject(path, func(o *types.DataObject) error {
			for i := range o.Replicas {
				if o.Replicas[i].Number == num {
					o.Replicas[i].Status = types.ReplicaDirty
				}
			}
			return nil
		})
	}
	if needRepair {
		// Repair from a verified source: every replica still marked
		// clean was just re-hashed against the catalog checksum above.
		o2, err := b.Cat.GetObject(path)
		if err != nil {
			return
		}
		tried := make(map[string]bool)
		for _, r := range o2.Replicas {
			if r.Status != types.ReplicaDirty || tried[r.Resource] {
				continue
			}
			tried[r.Resource] = true
			if err := b.rm.SyncResource(path, r.Resource); err != nil {
				if b.Cat.EnqueueRepair(types.RepairTask{
					Path: path, Resource: r.Resource,
					Kind: "repair", Reason: "scrub: " + err.Error(),
				}) {
					rpt.Enqueued++
				}
			} else {
				rpt.Repaired++
				sp.Event(obs.EventRepair, path+"@"+r.Resource+" repaired")
			}
		}
	}
	b.scrubReplication(path, &o, sp, rpt)
}

// scrubReplication recreates replicas an object lost: for every logical
// resource that already holds at least one of the object's replicas,
// each member without a copy gets one (or a queued task when the member
// is unreachable).
func (b *Broker) scrubReplication(path string, o *types.DataObject, sp *obs.Span, rpt *types.ScrubReport) {
	have := make(map[string]bool, len(o.Replicas))
	for _, r := range o.Replicas {
		have[r.Resource] = true
	}
	for _, res := range b.Cat.Resources() {
		if res.Kind != types.ResourceLogical {
			continue
		}
		hosts := false
		for _, m := range res.Members {
			if have[m] {
				hosts = true
				break
			}
		}
		if !hosts {
			continue
		}
		for _, m := range res.Members {
			if have[m] {
				continue
			}
			have[m] = true // one attempt per member even across logical resources
			mres, err := b.Cat.GetResource(m)
			ok := err == nil && mres.Online &&
				b.breakers.For("resource."+m).State() != resilience.Open
			if ok {
				if _, err := b.rm.Replicate(path, m); err == nil {
					rpt.Replicated++
					sp.Event(obs.EventRepair, path+"@"+m+" replicated")
					continue
				}
			}
			if b.Cat.EnqueueRepair(types.RepairTask{
				Path: path, Resource: m,
				Kind: "replicate", Reason: "scrub: under-replicated on " + res.Name,
			}) {
				rpt.Enqueued++
			}
		}
	}
}

// ScrubSubtree runs the scrubber over every object under root — the
// periodic job the repair engine schedules. No access control: the
// engine acts as the daemon itself.
func (b *Broker) ScrubSubtree(root string, sp *obs.Span) types.ScrubReport {
	var rpt types.ScrubReport
	for _, p := range b.Cat.SubtreeObjects(root) {
		b.scrubObject(p, sp, &rpt)
	}
	if rpt.Enqueued > 0 {
		b.repairKick()
	}
	return rpt
}

// Scrub is the on-demand, access-checked scrub behind `srb scrub`: one
// object needs write permission on it, a collection subtree needs
// administrator rights.
func (b *Broker) Scrub(user, path string, sp *obs.Span) (types.ScrubReport, error) {
	path = types.CleanPath(path)
	var rpt types.ScrubReport
	if _, err := b.Cat.GetObject(path); err == nil {
		if err := b.need(user, path, acl.Write, "scrub"); err != nil {
			return rpt, err
		}
		b.scrubObject(path, sp, &rpt)
		if rpt.Enqueued > 0 {
			b.repairKick()
		}
	} else {
		if !b.Cat.CollExists(path) {
			return rpt, types.E("scrub", path, types.ErrNotFound)
		}
		if !b.Cat.IsAdmin(user) {
			b.audit(user, "scrub", path, false, "admin required for subtree scrub")
			return rpt, types.E("scrub", path, types.ErrPermission)
		}
		rpt = b.ScrubSubtree(path, sp)
	}
	b.audit(user, "scrub", path, true, fmt.Sprintf(
		"%d objects, %d scanned, %d corrupt, %d repaired, %d replicated, %d enqueued",
		rpt.Objects, rpt.Scanned, rpt.Corrupt, rpt.Repaired, rpt.Replicated, rpt.Enqueued))
	return rpt, nil
}

// VerifyChecksums re-hashes every replica of one object against the
// catalog checksum and reports a per-resource verdict — the read-only
// `srb checksum` surface (nothing is marked or repaired).
func (b *Broker) VerifyChecksums(user, path string) (types.DataObject, []types.ReplicaVerdict, error) {
	o, err := b.checkRead(user, path, "checksum")
	if err != nil {
		return o, nil, err
	}
	if o.Kind != types.KindFile || o.Container != "" {
		return o, nil, types.E("checksum", path, types.ErrUnsupported)
	}
	verdicts := make([]types.ReplicaVerdict, 0, len(o.Replicas))
	for _, r := range o.Replicas {
		v := types.ReplicaVerdict{
			Number:   int(r.Number),
			Resource: r.Resource,
			Status:   r.Status.String(),
		}
		switch {
		case r.Registered:
			v.Verdict = "unchecked"
			v.Detail = "registered bytes"
		case o.Checksum == "":
			v.Verdict = "unchecked"
			v.Detail = "no catalog checksum"
		default:
			res, rerr := b.Cat.GetResource(r.Resource)
			if rerr != nil || !res.Online {
				v.Verdict = "offline"
				break
			}
			d, derr := b.Driver(r.Resource)
			if derr != nil {
				v.Verdict = "offline"
				v.Detail = "no local driver"
				break
			}
			data, readErr := storage.ReadAll(d, r.PhysicalPath)
			if readErr != nil {
				v.Verdict = "unreadable"
				v.Detail = readErr.Error()
				break
			}
			if sum := replica.Checksum(data); sum != o.Checksum {
				v.Verdict = "corrupt"
				v.Detail = "stored " + sum[:12] + "… != catalog " + o.Checksum[:12] + "…"
			} else {
				v.Verdict = "ok"
			}
		}
		verdicts = append(verdicts, v)
	}
	b.audit(user, "checksum", path, true, fmt.Sprintf("%d replicas verified", len(verdicts)))
	return o, verdicts, nil
}
