package core

import (
	"bytes"
	"fmt"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/mcat"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/metadata"
	"gosrb/internal/types"
)

// ---- metadata operations ----

// AddMeta attaches user or type metadata. Per the paper, "user-defined
// metadata and type-oriented metadata can be ingested only by users who
// have 'ownership' permission for the SRB object or collection".
func (b *Broker) AddMeta(user, path string, class types.MetaClass, avu types.AVU) error {
	if class != types.MetaUser && class != types.MetaType {
		return types.E("addmeta", path, types.ErrUnsupported)
	}
	if err := b.need(user, path, acl.Own, "addmeta"); err != nil {
		return err
	}
	err := b.Cat.AddMeta(path, class, avu)
	b.audit(user, "addmeta", path, err == nil, avu.Name)
	return err
}

// GetMeta returns the metadata of one class; system metadata is
// synthesised from catalog state.
func (b *Broker) GetMeta(user, path string, class types.MetaClass) ([]types.AVU, error) {
	if err := b.need(user, path, acl.Read, "getmeta"); err != nil {
		return nil, err
	}
	if class == types.MetaSystem {
		return b.systemMeta(path)
	}
	if class == types.MetaFile {
		return b.fileMeta(user, path)
	}
	return b.Cat.GetMeta(path, class)
}

// systemMeta renders the system-defined metadata the paper says users
// "can view ... and also use in their search mechanism".
func (b *Broker) systemMeta(path string) ([]types.AVU, error) {
	if col, err := b.Cat.GetColl(path); err == nil {
		return []types.AVU{
			{Name: "sys:collection", Value: col.Path},
			{Name: "sys:owner", Value: col.Owner},
			{Name: "sys:created", Value: col.CreatedAt.UTC().Format("2006-01-02 15:04:05")},
		}, nil
	}
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return nil, err
	}
	out := []types.AVU{
		{Name: "sys:name", Value: o.Name},
		{Name: "sys:collection", Value: o.Collection},
		{Name: "sys:owner", Value: o.Owner},
		{Name: "sys:kind", Value: o.Kind.String()},
		{Name: "sys:datatype", Value: o.DataType},
		{Name: "sys:size", Value: fmt.Sprint(o.Size)},
		{Name: "sys:replicas", Value: fmt.Sprint(len(o.Replicas))},
	}
	for _, r := range o.Replicas {
		out = append(out, types.AVU{
			Name:  fmt.Sprintf("sys:replica%d", r.Number),
			Value: r.Resource + ":" + r.PhysicalPath + " (" + r.Status.String() + ")",
		})
	}
	if o.Container != "" {
		out = append(out, types.AVU{Name: "sys:container", Value: o.Container})
	}
	return out, nil
}

// fileMeta reads the triplets from every attached metadata-carrying
// file. "This metadata is used only for viewing and cannot take part in
// querying."
func (b *Broker) fileMeta(user, path string) ([]types.AVU, error) {
	var out []types.AVU
	for _, mf := range b.Cat.FileMeta(path) {
		o, err := b.Cat.GetObject(mf)
		if err != nil {
			continue
		}
		raw, err := b.getObject(user, &o, nil)
		if err != nil {
			continue
		}
		out = append(out, metadata.ParseTriplets(raw)...)
	}
	return out, nil
}

// UpdateMeta rewrites matching triplets; ownership required.
func (b *Broker) UpdateMeta(user, path string, class types.MetaClass, name, oldValue string, avu types.AVU) (int, error) {
	if err := b.need(user, path, acl.Own, "updmeta"); err != nil {
		return 0, err
	}
	n, err := b.Cat.UpdateMeta(path, class, name, oldValue, avu)
	b.audit(user, "updmeta", path, err == nil, name)
	return n, err
}

// DeleteMeta removes matching triplets; ownership required.
func (b *Broker) DeleteMeta(user, path string, class types.MetaClass, name, value string) (int, error) {
	if err := b.need(user, path, acl.Own, "delmeta"); err != nil {
		return 0, err
	}
	n, err := b.Cat.DeleteMeta(path, class, name, value)
	b.audit(user, "delmeta", path, err == nil, name)
	return n, err
}

// CopyMeta copies user/type metadata between objects (association
// method three). Read on the source, Own on the destination.
func (b *Broker) CopyMeta(user, from, to string) error {
	if err := b.need(user, from, acl.Read, "copymeta"); err != nil {
		return err
	}
	if err := b.need(user, to, acl.Own, "copymeta"); err != nil {
		return err
	}
	err := b.Cat.CopyMeta(from, to)
	b.audit(user, "copymeta", from, err == nil, "to "+to)
	return err
}

// AttachFileMeta associates a metadata-carrying file with an object.
func (b *Broker) AttachFileMeta(user, path, metaFile string) error {
	if err := b.need(user, path, acl.Own, "filemeta"); err != nil {
		return err
	}
	if err := b.need(user, metaFile, acl.Read, "filemeta"); err != nil {
		return err
	}
	err := b.Cat.AttachFileMeta(path, metaFile)
	b.audit(user, "filemeta", path, err == nil, metaFile)
	return err
}

// ExtractMeta runs a registered extraction method over the object (or,
// for SecondObject methods, over the companion object at fromPath) and
// stores the triplets as type metadata (association method four).
func (b *Broker) ExtractMeta(user, path, method, fromPath string) (int, error) {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return 0, err
	}
	if err := b.need(user, path, acl.Own, "extract"); err != nil {
		return 0, err
	}
	m, ok := b.extract.Lookup(o.DataType, method)
	if !ok {
		return 0, types.E("extract", o.DataType+"/"+method, types.ErrNotFound)
	}
	src := o
	if m.SecondObject {
		if fromPath == "" {
			return 0, types.E("extract", path, types.ErrInvalid)
		}
		src, err = b.Cat.GetObject(fromPath)
		if err != nil {
			return 0, err
		}
		if err := b.need(user, fromPath, acl.Read, "extract"); err != nil {
			return 0, err
		}
	}
	raw, err := b.getObject(user, &src, nil)
	if err != nil {
		return 0, err
	}
	avus, err := b.extract.Extract(o.DataType, method, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	for _, avu := range avus {
		if err := b.Cat.AddMeta(path, types.MetaType, avu); err != nil {
			return 0, err
		}
	}
	b.audit(user, "extract", path, true, fmt.Sprintf("%s: %d triplets", method, len(avus)))
	return len(avus), nil
}

// Annotate adds free-form commentary. Per the paper, "the annotations
// and commentary can be inserted by any user with a read permission on
// the object".
func (b *Broker) Annotate(user, path string, ann types.Annotation) error {
	if err := b.need(user, path, acl.Read, "annotate"); err != nil {
		return err
	}
	ann.Author = user
	err := b.Cat.AddAnnotation(path, ann)
	b.audit(user, "annotate", path, err == nil, ann.Kind)
	return err
}

// Annotations lists the commentary on a path.
func (b *Broker) Annotations(user, path string) ([]types.Annotation, error) {
	if err := b.need(user, path, acl.Read, "annotations"); err != nil {
		return nil, err
	}
	return b.Cat.Annotations(path)
}

// ---- access control and structural metadata ----

// Chmod grants or revokes a permission level; Own required.
func (b *Broker) Chmod(user, path, grantee string, level acl.Level) error {
	if err := b.need(user, path, acl.Own, "chmod"); err != nil {
		return err
	}
	err := b.Cat.SetACL(path, grantee, level)
	b.audit(user, "chmod", path, err == nil, grantee+"="+level.String())
	return err
}

// SetStructural imposes a structural attribute on a collection; Curate
// required (the curator's tool for "enforc[ing] metadata that need to
// be provided when new items are added").
func (b *Broker) SetStructural(user, coll string, attr types.StructuralAttr) error {
	if err := b.need(user, coll, acl.Curate, "structural"); err != nil {
		return err
	}
	err := b.Cat.SetStructural(coll, attr)
	b.audit(user, "structural", coll, err == nil, attr.Name)
	return err
}

// Structural lists the requirements new members of coll must honour.
func (b *Broker) Structural(user, coll string) ([]types.StructuralAttr, error) {
	if err := b.need(user, coll, acl.Read, "structural"); err != nil {
		return nil, err
	}
	return b.Cat.Structural(coll), nil
}

// ---- query ----

// Query executes a conjunctive metadata query; hits are filtered to
// objects the user may read.
func (b *Broker) Query(user string, q mcat.Query) ([]mcat.Hit, error) {
	start := time.Now()
	hits, err := b.query(user, q)
	b.ops.query.Done(start, err)
	b.ops.heat.Record(shard.KeyOf(q.Scope), 0)
	return hits, err
}

func (b *Broker) query(user string, q mcat.Query) ([]mcat.Hit, error) {
	hits, err := b.Cat.RunQuery(q)
	if err != nil {
		return nil, err
	}
	out := hits[:0:0]
	for _, h := range hits {
		if b.Cat.EffectiveLevel(h.Path, user) >= acl.Read {
			out = append(out, h)
		}
	}
	b.audit(user, "query", q.Scope, true, fmt.Sprintf("%d conds, %d hits", len(q.Conds), len(out)))
	return out, nil
}

// QueryPartial is Query with partial-result reporting: when the
// catalog is sharded and a shard misses its deadline or is a stale
// follower, its name lands in partial and the hits from the shards
// that did answer are still returned. A monolithic catalog never
// reports partial shards.
func (b *Broker) QueryPartial(user string, q mcat.Query) ([]mcat.Hit, []string, error) {
	start := time.Now()
	hits, partial, err := b.Cat.QueryPartial(q)
	if err != nil {
		b.ops.query.Done(start, err)
		return nil, partial, err
	}
	out := hits[:0:0]
	for _, h := range hits {
		if b.Cat.EffectiveLevel(h.Path, user) >= acl.Read {
			out = append(out, h)
		}
	}
	b.audit(user, "query", q.Scope, true, fmt.Sprintf("%d conds, %d hits, %d partial shards", len(q.Conds), len(out), len(partial)))
	b.ops.query.Done(start, nil)
	b.ops.heat.Record(shard.KeyOf(q.Scope), 0)
	return out, partial, nil
}

// QueryAttrNames feeds the query builder's attribute drop-down.
func (b *Broker) QueryAttrNames(user, scope string) []string {
	return b.Cat.QueryAttrNames(scope)
}
