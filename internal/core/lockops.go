package core

import (
	"fmt"
	"sort"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// This file implements the paper's lock, pin and checkout/checkin
// operations (§5) plus cache management, which pins exist to survive.

// DefaultLockTTL bounds a lock when the caller gives none ("a lock
// placed by a user has an expiry date at which time it gets unlocked").
const DefaultLockTTL = time.Hour

// Lock places a shared or exclusive lock. Shared locks block writes by
// others but allow reads; exclusive locks allow no interactions.
func (b *Broker) Lock(user, path string, kind types.LockKind, ttl time.Duration) error {
	if kind != types.LockShared && kind != types.LockExclusive {
		return types.E("lock", path, types.ErrInvalid)
	}
	if err := b.need(user, path, acl.Write, "lock"); err != nil {
		return err
	}
	if ttl <= 0 {
		ttl = DefaultLockTTL
	}
	now := b.now()
	err := b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		if o.Lock.Active(now) && o.Lock.Holder != user {
			return types.E("lock", path, types.ErrLocked)
		}
		o.Lock = types.Lock{Kind: kind, Holder: user, Expires: now.Add(ttl)}
		return nil
	})
	b.audit(user, "lock", path, err == nil, kind.String())
	return err
}

// Unlock removes the caller's lock ("a user-driven unlock operation is
// also supported").
func (b *Broker) Unlock(user, path string) error {
	// Resolved outside the mutator: catalog calls inside UpdateObject
	// would deadlock against its write lock.
	isAdmin := b.Cat.IsAdmin(user)
	err := b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		if o.Lock.Kind == types.LockNone {
			return nil
		}
		if o.Lock.Holder != user && !isAdmin {
			return types.E("unlock", path, types.ErrPermission)
		}
		o.Lock = types.Lock{}
		return nil
	})
	b.audit(user, "unlock", path, err == nil, "")
	return err
}

// Pin protects the object's replica on resource from cache purging
// until the pin expires or is removed.
func (b *Broker) Pin(user, path, resource string, ttl time.Duration) error {
	if err := b.need(user, path, acl.Read, "pin"); err != nil {
		return err
	}
	if ttl <= 0 {
		ttl = DefaultLockTTL
	}
	now := b.now()
	err := b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		found := false
		for _, r := range o.Replicas {
			if r.Resource == resource {
				found = true
				break
			}
		}
		if !found {
			return types.E("pin", path, types.ErrNotFound)
		}
		for i := range o.Pins {
			if o.Pins[i].Resource == resource && o.Pins[i].Holder == user {
				o.Pins[i].Expires = now.Add(ttl)
				return nil
			}
		}
		o.Pins = append(o.Pins, types.Pin{Resource: resource, Holder: user, Expires: now.Add(ttl)})
		return nil
	})
	b.audit(user, "pin", path, err == nil, resource)
	return err
}

// Unpin removes the caller's pin on the resource.
func (b *Broker) Unpin(user, path, resource string) error {
	isAdmin := b.Cat.IsAdmin(user) // see Unlock: no catalog calls under UpdateObject
	err := b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		kept := o.Pins[:0:0]
		for _, p := range o.Pins {
			if p.Resource == resource && (p.Holder == user || isAdmin) {
				continue
			}
			kept = append(kept, p)
		}
		o.Pins = kept
		return nil
	})
	b.audit(user, "unpin", path, err == nil, resource)
	return err
}

// Checkout takes an object out for editing: no other user may change it
// until checkin ("a checkout by a user disallows any changes to be made
// to that object").
func (b *Broker) Checkout(user, path string) error {
	if err := b.need(user, path, acl.Write, "checkout"); err != nil {
		return err
	}
	now := b.now()
	err := b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		if o.Kind != types.KindFile {
			return types.E("checkout", path, types.ErrUnsupported)
		}
		if o.CheckedOutBy != "" && o.CheckedOutBy != user {
			return types.E("checkout", path, types.ErrLocked)
		}
		if o.Lock.Active(now) && o.Lock.Holder != user {
			return types.E("checkout", path, types.ErrLocked)
		}
		o.CheckedOutBy = user
		return nil
	})
	b.audit(user, "checkout", path, err == nil, "")
	return err
}

// Checkin stores new contents while preserving the previous state as a
// numbered version ("the older version of the object is still
// maintained as an earlier version with a distinct version number").
func (b *Broker) Checkin(user, path string, data []byte, comment string) error {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return err
	}
	if o.CheckedOutBy != user {
		return types.E("checkin", path, types.ErrLocked)
	}
	if o.Container != "" {
		return types.E("checkin", path, types.ErrUnsupported)
	}
	rep, ok := o.CleanReplica("")
	if !ok {
		return types.E("checkin", path, types.ErrOffline)
	}
	// Preserve the old bytes as a version copy alongside the replica.
	verNo := len(o.Versions) + 1
	verPath := fmt.Sprintf("%s.v%d", rep.PhysicalPath, verNo)
	d, err := b.Driver(rep.Resource)
	if err != nil {
		return err
	}
	if _, err := storage.Copy(d, verPath, d, rep.PhysicalPath); err != nil {
		return types.E("checkin", path, err)
	}
	version := types.Version{
		Number: verNo, Resource: rep.Resource, Path: verPath,
		Size: rep.Size, Checksum: rep.Checksum, CreatedAt: b.now(), Comment: comment,
	}
	if err := b.rm.WriteAll(path, data); err != nil {
		return err
	}
	err = b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		o.Versions = append(o.Versions, version)
		o.CheckedOutBy = ""
		return nil
	})
	b.audit(user, "checkin", path, err == nil, fmt.Sprintf("version %d preserved", verNo))
	return err
}

// Versions lists the preserved earlier states of an object.
func (b *Broker) Versions(user, path string) ([]types.Version, error) {
	if err := b.need(user, path, acl.Read, "versions"); err != nil {
		return nil, err
	}
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return nil, err
	}
	return o.Versions, nil
}

// GetVersion retrieves the bytes of one preserved version.
func (b *Broker) GetVersion(user, path string, number int) ([]byte, error) {
	if err := b.need(user, path, acl.Read, "getversion"); err != nil {
		return nil, err
	}
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return nil, err
	}
	for _, v := range o.Versions {
		if v.Number == number {
			d, err := b.Driver(v.Resource)
			if err != nil {
				return nil, err
			}
			return storage.ReadAll(d, v.Path)
		}
	}
	return nil, types.E("getversion", path, types.ErrNotFound)
}

// ---- cache management ----

// PurgeCache evicts replicas from a cache-class resource until its
// usage drops to keepBytes, skipping pinned replicas and replicas that
// are an object's only clean copy. It returns the number of replicas
// evicted. Administrators only.
func (b *Broker) PurgeCache(user, resource string, keepBytes int64) (int, error) {
	if !b.Cat.IsAdmin(user) {
		return 0, types.E("purge", resource, types.ErrPermission)
	}
	res, err := b.Cat.GetResource(resource)
	if err != nil {
		return 0, err
	}
	if res.Class != types.ClassCache {
		return 0, types.E("purge", resource, types.ErrInvalid)
	}
	d, err := b.Driver(resource)
	if err != nil {
		return 0, err
	}
	ur, ok := d.(storage.UsageReporter)
	if !ok {
		return 0, types.E("purge", resource, types.ErrUnsupported)
	}
	// Gather eviction candidates: (path, replica) pairs on the resource.
	type cand struct {
		path string
		rep  types.Replica
	}
	var cands []cand
	now := b.now()
	for _, p := range b.Cat.SubtreeObjects("/") {
		o, err := b.Cat.GetObject(p)
		if err != nil || o.Container != "" {
			continue
		}
		pinned := false
		for _, pin := range o.Pins {
			if pin.Resource == resource && pin.Active(now) {
				pinned = true
				break
			}
		}
		if pinned {
			continue
		}
		for _, r := range o.Replicas {
			if r.Resource != resource || r.Registered {
				continue
			}
			// Never evict the only clean copy.
			otherClean := false
			for _, rr := range o.Replicas {
				if rr.Number != r.Number && rr.Status == types.ReplicaClean {
					otherClean = true
					break
				}
			}
			if otherClean {
				cands = append(cands, cand{path: p, rep: r})
			}
		}
	}
	// Evict largest first until under the target.
	sort.Slice(cands, func(i, j int) bool { return cands[i].rep.Size > cands[j].rep.Size })
	evicted := 0
	for _, c := range cands {
		if ur.Usage().Bytes <= keepBytes {
			break
		}
		if err := b.rm.DeleteReplica(c.path, c.rep.Number); err == nil {
			evicted++
		}
	}
	b.audit(user, "purge", resource, true, fmt.Sprintf("%d replicas evicted", evicted))
	return evicted, nil
}
