package core

import (
	"strings"

	"gosrb/internal/acl"
	"gosrb/internal/sqlengine"
	"gosrb/internal/storage"
	"gosrb/internal/tlang"
	"gosrb/internal/types"
)

// This file implements the paper's five registered-object kinds (§5):
// files, shadow directories, SQL queries, URLs and method objects —
// pointers SRB maintains without controlling the bytes.

// RegisterFile registers an existing physical file. "Since the file is
// not fully under SRB's control, the file size and other
// characteristics might change without SRB being aware."
func (b *Broker) RegisterFile(user, path, resource, physPath string, meta []types.AVU) (types.DataObject, error) {
	coll := types.Parent(path)
	if err := b.need(user, coll, acl.Write, "registerfile"); err != nil {
		return types.DataObject{}, err
	}
	d, err := b.Driver(resource)
	if err != nil {
		return types.DataObject{}, err
	}
	fi, err := d.Stat(physPath)
	if err != nil {
		return types.DataObject{}, types.E("registerfile", physPath, types.ErrNotFound)
	}
	if fi.IsDir {
		return types.DataObject{}, types.E("registerfile", physPath, types.ErrInvalid)
	}
	obj := &types.DataObject{
		Name: types.Base(path), Collection: coll, Owner: user,
		Kind: types.KindRegisteredFile, DataType: "generic", Size: fi.Size,
		Replicas: []types.Replica{{
			Number: 0, Resource: resource, PhysicalPath: types.CleanPath(physPath),
			Status: types.ReplicaClean, Size: fi.Size, Registered: true,
		}},
	}
	if _, err := b.Cat.RegisterObject(obj); err != nil {
		return types.DataObject{}, err
	}
	for _, avu := range meta {
		b.Cat.AddMeta(path, types.MetaUser, avu)
	}
	b.audit(user, "registerfile", path, true, resource+":"+physPath)
	return b.Cat.GetObject(path)
}

// RegisterDirectory registers a "shadow directory object": the cone of
// files under the physical directory is visible through it, read-only.
func (b *Broker) RegisterDirectory(user, path, resource, physDir string) (types.DataObject, error) {
	coll := types.Parent(path)
	if err := b.need(user, coll, acl.Write, "registerdir"); err != nil {
		return types.DataObject{}, err
	}
	d, err := b.Driver(resource)
	if err != nil {
		return types.DataObject{}, err
	}
	if _, err := d.List(physDir); err != nil {
		return types.DataObject{}, types.E("registerdir", physDir, types.ErrNotFound)
	}
	obj := &types.DataObject{
		Name: types.Base(path), Collection: coll, Owner: user,
		Kind: types.KindShadowDir, DataType: "directory",
		Replicas: []types.Replica{{
			Number: 0, Resource: resource, PhysicalPath: types.CleanPath(physDir),
			Status: types.ReplicaClean, Registered: true,
		}},
	}
	if _, err := b.Cat.RegisterObject(obj); err != nil {
		return types.DataObject{}, err
	}
	b.audit(user, "registerdir", path, true, resource+":"+physDir)
	return b.Cat.GetObject(path)
}

// ShadowList lists entries under a shadow directory object; rel walks
// into the cone ("." or "" for the root).
func (b *Broker) ShadowList(user, path, rel string) ([]storage.FileInfo, error) {
	o, err := b.checkRead(user, path, "shadowlist")
	if err != nil {
		return nil, err
	}
	return b.shadowList(&o, rel)
}

func (b *Broker) shadowList(o *types.DataObject, rel string) ([]storage.FileInfo, error) {
	if o.Kind != types.KindShadowDir {
		return nil, types.E("shadowlist", o.Path(), types.ErrUnsupported)
	}
	rep := o.Replicas[0]
	d, err := b.Driver(rep.Resource)
	if err != nil {
		return nil, err
	}
	target, err := shadowJoin(rep.PhysicalPath, rel)
	if err != nil {
		return nil, err
	}
	return d.List(target)
}

// ShadowOpen reads one file inside a shadow directory's cone. New file
// ingestion, update and deletion inside the cone are not supported
// (paper §5 kind 2 withholds them for security reasons).
func (b *Broker) ShadowOpen(user, path, rel string) ([]byte, error) {
	o, err := b.checkRead(user, path, "shadowopen")
	if err != nil {
		return nil, err
	}
	if o.Kind != types.KindShadowDir {
		return nil, types.E("shadowopen", path, types.ErrUnsupported)
	}
	rep := o.Replicas[0]
	d, err := b.Driver(rep.Resource)
	if err != nil {
		return nil, err
	}
	target, err := shadowJoin(rep.PhysicalPath, rel)
	if err != nil {
		return nil, err
	}
	data, err := storage.ReadAll(d, target)
	b.audit(user, "shadowopen", path, err == nil, rel)
	return data, err
}

// shadowJoin confines rel inside the registered root.
func shadowJoin(root, rel string) (string, error) {
	if rel == "" || rel == "." {
		return root, nil
	}
	joined := types.Join(root, rel)
	if !types.WithinOrEqual(root, joined) {
		return "", types.E("shadow", rel, types.ErrInvalid)
	}
	return joined, nil
}

// RegisterSQL registers a SQL query object against a database resource.
// Only SELECT text is accepted ("for security reasons, we recommend
// that one register only 'select' commands"; this implementation
// enforces it). The query executes at retrieval time, never at
// registration, so "the answer to the query can vary with time".
func (b *Broker) RegisterSQL(user, path string, spec types.SQLSpec) (types.DataObject, error) {
	coll := types.Parent(path)
	if err := b.need(user, coll, acl.Write, "registersql"); err != nil {
		return types.DataObject{}, err
	}
	// The database may be mounted locally or owned by a federated peer;
	// the catalog's resource class is authoritative either way.
	if _, err := b.Database(spec.Resource); err != nil {
		res, rerr := b.Cat.GetResource(spec.Resource)
		if rerr != nil || res.Class != types.ClassDatabase {
			return types.DataObject{}, types.E("registersql", spec.Resource, types.ErrNotFound)
		}
	}
	if !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(spec.Query)), "SELECT") {
		return types.DataObject{}, types.E("registersql", path, types.ErrInvalid)
	}
	if spec.Template == "" {
		spec.Template = tlang.TemplateHTMLRel
	}
	obj := &types.DataObject{
		Name: types.Base(path), Collection: coll, Owner: user,
		Kind: types.KindSQL, DataType: "sql query", SQL: &spec,
	}
	if _, err := b.Cat.RegisterObject(obj); err != nil {
		return types.DataObject{}, err
	}
	b.audit(user, "registersql", path, true, spec.Resource)
	return b.Cat.GetObject(path)
}

// ExecuteSQL runs a registered SQL object, completing a partial query
// with suffix ("the user can specify [the] remainder of the query at
// retrieval time") and rendering through its template.
func (b *Broker) ExecuteSQL(user, path, suffix string) ([]byte, error) {
	o, err := b.checkRead(user, path, "execsql")
	if err != nil {
		return nil, err
	}
	if o.Kind == types.KindLink {
		o, err = b.Cat.GetObject(o.LinkTarget)
		if err != nil {
			return nil, err
		}
	}
	if o.Kind != types.KindSQL || o.SQL == nil {
		return nil, types.E("execsql", path, types.ErrUnsupported)
	}
	data, err := b.ExecuteSQLSpec(&o, suffix)
	b.audit(user, "execsql", path, err == nil, "")
	return data, err
}

// ExecuteSQLSpec executes the object's SQL spec and renders the result.
func (b *Broker) ExecuteSQLSpec(o *types.DataObject, suffix string) ([]byte, error) {
	spec := o.SQL
	if spec == nil {
		return nil, types.E("execsql", o.Path(), types.ErrInvalid)
	}
	db, err := b.Database(spec.Resource)
	if err != nil {
		return nil, err
	}
	q := spec.Query
	if spec.Partial && suffix != "" {
		q = q + " " + suffix
	}
	res, err := db.Exec(q)
	if err != nil {
		if len(o.Alternates) > 0 {
			return b.readAlternates(o, err)
		}
		return nil, types.E("execsql", o.Path(), err)
	}
	return b.renderResult(o, res)
}

// renderResult applies the object's template: a built-in name or the
// logical path of a T-language style sheet stored in SRB.
func (b *Broker) renderResult(o *types.DataObject, res *sqlengine.Result) ([]byte, error) {
	name := o.SQL.Template
	var sb strings.Builder
	if tlang.IsBuiltin(name) {
		if err := tlang.RenderBuiltin(name, &sb, res); err != nil {
			return nil, err
		}
		return []byte(sb.String()), nil
	}
	// The template names an SRB object holding the style sheet. The
	// sheet is read with the object owner's authority.
	sheet, err := b.Cat.GetObject(name)
	if err != nil {
		return nil, types.E("template", name, types.ErrNotFound)
	}
	raw, err := b.getObject(o.Owner, &sheet, nil)
	if err != nil {
		return nil, err
	}
	tpl, err := tlang.ParseTemplate(string(raw))
	if err != nil {
		return nil, err
	}
	if err := tpl.Render(&sb, res); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// RegisterURL registers a URL object; the contents are fetched at
// retrieval time and never stored.
func (b *Broker) RegisterURL(user, path, rawURL string) (types.DataObject, error) {
	coll := types.Parent(path)
	if err := b.need(user, coll, acl.Write, "registerurl"); err != nil {
		return types.DataObject{}, err
	}
	if rawURL == "" {
		return types.DataObject{}, types.E("registerurl", path, types.ErrInvalid)
	}
	obj := &types.DataObject{
		Name: types.Base(path), Collection: coll, Owner: user,
		Kind: types.KindURL, DataType: "url", URL: rawURL,
	}
	if _, err := b.Cat.RegisterObject(obj); err != nil {
		return types.DataObject{}, err
	}
	b.audit(user, "registerurl", path, true, rawURL)
	return b.Cat.GetObject(path)
}

// RegisterMethod registers a method object: a proxy command or proxy
// function executed at access time on an SRB server.
func (b *Broker) RegisterMethod(user, path string, spec types.MethodSpec) (types.DataObject, error) {
	coll := types.Parent(path)
	if err := b.need(user, coll, acl.Write, "registermethod"); err != nil {
		return types.DataObject{}, err
	}
	if _, ok := b.command(spec.Name); !ok {
		// Commands must be pre-installed by an administrator.
		return types.DataObject{}, types.E("registermethod", spec.Name, types.ErrNotFound)
	}
	if spec.Server == "" {
		spec.Server = b.serverName
	}
	obj := &types.DataObject{
		Name: types.Base(path), Collection: coll, Owner: user,
		Kind: types.KindMethod, DataType: "method", Method: &spec,
	}
	if _, err := b.Cat.RegisterObject(obj); err != nil {
		return types.DataObject{}, err
	}
	b.audit(user, "registermethod", path, true, spec.Name)
	return b.Cat.GetObject(path)
}

// InvokeMethod runs a method object with extra command-line parameters
// ("the user can provide command-line parameters at the invocation")
// and returns its output.
func (b *Broker) InvokeMethod(user, path string, extraArgs []string) ([]byte, error) {
	o, err := b.checkRead(user, path, "invoke")
	if err != nil {
		return nil, err
	}
	if o.Kind == types.KindLink {
		o, err = b.Cat.GetObject(o.LinkTarget)
		if err != nil {
			return nil, err
		}
	}
	data, err := b.invokeMethod(&o, extraArgs)
	b.audit(user, "invoke", path, err == nil, "")
	return data, err
}

func (b *Broker) invokeMethod(o *types.DataObject, extraArgs []string) ([]byte, error) {
	if o.Kind != types.KindMethod || o.Method == nil {
		return nil, types.E("invoke", o.Path(), types.ErrUnsupported)
	}
	fn, ok := b.command(o.Method.Name)
	if !ok {
		return nil, types.E("invoke", o.Method.Name, types.ErrNotFound)
	}
	args := append(append([]string(nil), o.Method.Args...), extraArgs...)
	return fn(args)
}

// RegisterReplicaSpec attaches a "registered replicate" to a registered
// object: another directory, URL or SQL declared semantically equal.
// "Note that SRB does not check whether a registered replica is really
// an equal of the other copy."
func (b *Broker) RegisterReplicaSpec(user, path string, alt types.AltSpec) error {
	o, err := b.checkWrite(user, path, "registerreplica")
	if err != nil {
		return err
	}
	switch o.Kind {
	case types.KindRegisteredFile, types.KindShadowDir, types.KindSQL, types.KindURL:
	default:
		return types.E("registerreplica", path, types.ErrUnsupported)
	}
	switch alt.Kind {
	case types.KindURL:
		if alt.URL == "" {
			return types.E("registerreplica", path, types.ErrInvalid)
		}
	case types.KindSQL:
		if alt.SQL == nil {
			return types.E("registerreplica", path, types.ErrInvalid)
		}
	case types.KindRegisteredFile, types.KindShadowDir:
		if alt.Resource == "" || alt.PhysicalPath == "" {
			return types.E("registerreplica", path, types.ErrInvalid)
		}
	default:
		return types.E("registerreplica", path, types.ErrInvalid)
	}
	err = b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		o.Alternates = append(o.Alternates, alt)
		return nil
	})
	b.audit(user, "registerreplica", path, err == nil, alt.Kind.String())
	return err
}
