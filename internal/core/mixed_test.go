package core

import (
	"bytes"
	"fmt"
	"testing"

	"gosrb/internal/mcat"
	"gosrb/internal/storage/archivefs"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/posixfs"
	"gosrb/internal/types"
)

// TestMixedDriverGrid runs the broker over every driver kind at once —
// the paper's heterogeneity claim ("access files on a super computer
// ... or a desktop ... archival storage systems ... file systems ...
// and databases") — and moves data among them.
func TestMixedDriverGrid(t *testing.T) {
	cat := mcat.New("admin", "sdsc")
	b := New(cat, "srb1")
	pfs, err := posixfs.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	arch := archivefs.New(archivefs.Config{}) // zero latency for the test
	if err := b.AddPhysicalResource("admin", "unixfs", types.ClassFileSystem, "posixfs", pfs); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPhysicalResource("admin", "hpss", types.ClassArchive, "archivefs", arch); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPhysicalResource("admin", "oracle", types.ClassDatabase, "dbfs", dbfs.New()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLogicalResource("admin", "everywhere", []string{"unixfs", "hpss", "oracle"}); err != nil {
		t.Fatal(err)
	}
	cat.MkColl("/d", "admin")

	payload := []byte("bytes that traverse every storage class")
	// Ingest onto the logical resource: three replicas, one per class.
	o, err := b.Ingest("admin", IngestOpts{Path: "/d/tri", Data: payload, Resource: "everywhere"})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Replicas) != 3 {
		t.Fatalf("replicas = %+v", o.Replicas)
	}
	// Every replica independently serves the bytes.
	for _, rep := range o.Replicas {
		data, served, err := b.Replicas().ReadAll("/d/tri", rep.Resource)
		if err != nil || !bytes.Equal(data, payload) {
			t.Errorf("replica on %s: %q, %v", rep.Resource, data, err)
		}
		if served.Resource != rep.Resource {
			t.Errorf("preferred read served from %s, want %s", served.Resource, rep.Resource)
		}
	}
	// Take two classes down; the third still answers.
	cat.SetResourceOnline("unixfs", false)
	cat.SetResourceOnline("hpss", false)
	data, err := b.Get("admin", "/d/tri")
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("db-only read = %q, %v", data, err)
	}
	cat.SetResourceOnline("unixfs", true)
	cat.SetResourceOnline("hpss", true)

	// Physical move across classes: database -> file system.
	var dbRep types.ReplicaNumber = -1
	for _, rep := range o.Replicas {
		if rep.Resource == "oracle" {
			dbRep = rep.Number
		}
	}
	if err := b.PhysicalMove("admin", "/d/tri", dbRep, "unixfs"); err != nil {
		t.Fatal(err)
	}
	o2, _ := cat.GetObject("/d/tri")
	for _, rep := range o2.Replicas {
		if rep.Resource == "oracle" {
			t.Error("replica should have left the database")
		}
	}
	// Containers work on the archive class.
	if _, err := b.CreateContainer("admin", "/d/cc", "hpss"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Ingest("admin", IngestOpts{
			Path: fmt.Sprintf("/d/m%d", i), Data: []byte(fmt.Sprintf("member %d", i)),
			Container: "/d/cc",
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Get("admin", "/d/m3")
	if err != nil || string(got) != "member 3" {
		t.Errorf("container member on archive = %q, %v", got, err)
	}
	// Dirty-sync across classes: write while the archive is down.
	cat.SetResourceOnline("hpss", false)
	if err := b.Reingest("admin", "/d/tri", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	cat.SetResourceOnline("hpss", true)
	n, err := b.Replicas().SyncDirty("/d/tri")
	if err != nil || n != 1 {
		t.Fatalf("SyncDirty = %d, %v", n, err)
	}
	data, _, err = b.Replicas().ReadAll("/d/tri", "hpss")
	if err != nil || string(data) != "updated" {
		t.Errorf("archive replica after sync = %q, %v", data, err)
	}
}
