package core

import (
	"errors"
	"strings"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/mcat"
	"gosrb/internal/storage"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// TestAvianCultureScenario walks the paper's §4 exemplar end to end:
// "Consider a curator who wants to form a new collection called 'Avian
// Culture' under an existing 'Cultures' collection." Every sentence of
// the scenario maps to an assertion below.
func TestAvianCultureScenario(t *testing.T) {
	cat := mcat.New("admin", "sdsc")
	b := New(cat, "srb1")
	b.AddPhysicalResource("admin", "disk", types.ClassFileSystem, "memfs", memfs.New())
	db := dbfs.New()
	b.AddPhysicalResource("admin", "museumdb", types.ClassDatabase, "dbfs", db)

	cat.AddUser(types.User{Name: "curator", Domain: "sdsc"})
	cat.AddUser(types.User{Name: "co-curator", Domain: "caltech"})
	cat.AddUser(types.User{Name: "annotator", Domain: "ucsd"})
	cat.AddUser(types.User{Name: "public-user", Domain: "anywhere"})

	// An existing "Cultures" collection, and the new one beneath it.
	cat.MkColl("/Cultures", "curator")
	if err := b.Mkdir("curator", "/Cultures/Avian Culture"); err != nil {
		t.Fatal(err)
	}
	avian := "/Cultures/Avian Culture"

	// "she wants to have them include some minimal set of metadata based
	// on entities defined under 'MetaCore for Cultures' which she has
	// augmented with more attributes relevant to her specialized topic."
	must(t, b.SetStructural("curator", "/Cultures", types.StructuralAttr{
		Name: "culture-core", Mandatory: true, Comment: "MetaCore for Cultures",
	}))
	must(t, b.SetStructural("curator", avian, types.StructuralAttr{
		Name: "species", Mandatory: true,
	}))
	must(t, b.SetStructural("curator", avian, types.StructuralAttr{
		Name: "region", Defaults: []string{"nearctic", "palearctic", "neotropic"},
	}))

	// "She would also like to allow other curators to include their own
	// materials into the collection."
	must(t, b.Chmod("curator", avian, "co-curator", acl.Write))
	// "a set of selected users to add additional metadata" — but they
	// need ownership-level rights only for metadata; give the annotator
	// read (annotations) per the paper's annotation rule.
	must(t, b.Chmod("curator", avian, "annotator", acl.Read))
	// "public users to be able to access her collection by browsing".
	must(t, b.Chmod("curator", avian, acl.Public, acl.Read))

	// Gathering "documents and multi-media ... located as distributed
	// files, images, and movies stored on diverse media-formats":
	// 1. A file ingested under the collection's control.
	_, err := b.Ingest("co-curator", IngestOpts{
		Path: avian + "/finch-song.txt", Data: []byte("recording notes"),
		Resource: "disk",
		Meta: []types.AVU{
			{Name: "culture-core", Value: "avian"},
			{Name: "species", Value: "zebra finch"},
		},
	})
	must(t, err)
	// Ingestion without the mandatory MetaCore attributes is refused.
	if _, err := b.Ingest("co-curator", IngestOpts{
		Path: avian + "/bad.txt", Data: nil, Resource: "disk",
	}); !errors.Is(err, types.ErrMandatoryMeta) {
		t.Fatalf("mandatory metadata not enforced: %v", err)
	}

	// 2. "others might be owned and curated by outside administrators
	// with only links provided to them" — a registered file and a URL.
	d, _ := b.Driver("disk")
	storage.WriteAll(d, "/museum/archive/heron.tiff", []byte("tiff bytes"))
	_, err = b.RegisterFile("curator", avian+"/heron.tiff", "disk", "/museum/archive/heron.tiff",
		[]types.AVU{{Name: "culture-core", Value: "avian"}, {Name: "species", Value: "great heron"}})
	must(t, err)
	b.Fetcher().RegisterMemBytes("mem://aviary.org/crane", []byte("external page"))
	_, err = b.RegisterURL("curator", avian+"/crane-page", "mem://aviary.org/crane")
	must(t, err)

	// 3. A database-resident catalog exposed as a registered SQL query.
	db.Database().Exec("CREATE TABLE sightings (species, location, year)")
	db.Database().Exec("INSERT INTO sightings VALUES ('zebra finch', 'Australia', 2001), ('great heron', 'Florida', 2002)")
	_, err = b.RegisterSQL("curator", avian+"/sightings", types.SQLSpec{
		Resource: "museumdb", Query: "SELECT species, location, year FROM sightings ORDER BY year",
		Template: "HTMLREL",
	})
	must(t, err)

	// "she would like users to add their own comments, ratings, errata
	// and dialogues and annotations which will make the collection
	// richer" — any reader may annotate.
	must(t, b.Annotate("annotator", avian+"/finch-song.txt", types.Annotation{
		Kind: "rating", Text: "5/5 beautiful recording",
	}))
	must(t, b.Annotate("public-user", avian+"/heron.tiff", types.Annotation{
		Kind: "errata", Text: "location label is wrong",
	}))

	// "include multi-modal relationships among the collection items so
	// that one can link the objects in many ways" — related-object
	// metadata plus a soft link in a second arrangement.
	must(t, b.AddMeta("curator", avian+"/finch-song.txt", types.MetaUser,
		types.AVU{Name: "related", Value: avian + "/sightings"}))
	must(t, b.Mkdir("curator", avian+"/by-region"))
	must(t, b.Mkdir("curator", avian+"/by-region/nearctic"))
	must(t, b.Link("curator", avian+"/heron.tiff", avian+"/by-region/nearctic/heron.tiff"))

	// Public browsing: the hierarchy plus both arrangements are visible.
	entries, err := b.List("public-user", avian)
	must(t, err)
	if len(entries) != 5 { // by-region, crane-page, finch-song, heron, sightings
		t.Fatalf("public listing = %d entries: %+v", len(entries), entries)
	}
	// Public access via the link inherits the original's ACL.
	data, err := b.Get("public-user", avian+"/by-region/nearctic/heron.tiff")
	if err != nil || string(data) != "tiff bytes" {
		t.Fatalf("public link read = %q, %v", data, err)
	}
	// The SQL object renders for the public at retrieval time.
	report, err := b.Get("public-user", avian+"/sightings")
	if err != nil || !strings.Contains(string(report), "zebra finch") {
		t.Fatalf("public report = %v", err)
	}

	// "search/query the collection using the rich mix of metadata based
	// on standardized meta data, curatorial meta data, user annotations".
	hits, err := b.Query("public-user", mcat.Query{
		Scope: "/Cultures",
		Conds: []mcat.Condition{{Attr: "species", Op: "like", Value: "%finch%"}},
	})
	must(t, err)
	if len(hits) != 1 || hits[0].Path != avian+"/finch-song.txt" {
		t.Fatalf("species query = %+v", hits)
	}
	hits, err = b.Query("public-user", mcat.Query{
		Scope: "/Cultures",
		Conds: []mcat.Condition{{Attr: "annotation", Op: "like", Value: "%beautiful%"}},
	})
	must(t, err)
	if len(hits) != 1 {
		t.Fatalf("annotation query = %+v", hits)
	}
	// The query drop-down offers the curator's augmented attribute set.
	names := b.QueryAttrNames("public-user", "/Cultures")
	joined := strings.Join(names, ",")
	for _, want := range []string{"culture-core", "species", "region", "related"} {
		if !strings.Contains(joined, want) {
			t.Errorf("attr drop-down missing %q: %v", want, names)
		}
	}

	// The public cannot modify anything.
	if err := b.Reingest("public-user", avian+"/finch-song.txt", []byte("defaced")); !errors.Is(err, types.ErrPermission) {
		t.Errorf("public write = %v", err)
	}
	if err := b.AddMeta("public-user", avian+"/finch-song.txt", types.MetaUser, types.AVU{Name: "x", Value: "y"}); !errors.Is(err, types.ErrPermission) {
		t.Errorf("public meta write = %v", err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
