package core

import (
	"fmt"
	"strings"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/obs"
	"gosrb/internal/replica"
	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// ---- collections ----

// Mkdir creates a sub-collection; the user needs Write on the parent.
func (b *Broker) Mkdir(user, path string) error {
	parent := types.Parent(path)
	if !b.Cat.CollExists(parent) {
		return types.E("mkdir", parent, types.ErrNotFound)
	}
	if err := b.need(user, parent, acl.Write, "mkdir"); err != nil {
		return err
	}
	if err := b.Cat.MkColl(path, user); err != nil {
		return err
	}
	b.audit(user, "mkdir", path, true, "")
	return nil
}

// List returns the members of a collection the user may read.
func (b *Broker) List(user, path string) ([]types.Stat, error) {
	start := time.Now()
	stats, err := b.list(user, path)
	b.ops.list.Done(start, err)
	b.ops.heat.Record(shard.KeyOf(path), 0)
	return stats, err
}

func (b *Broker) list(user, path string) ([]types.Stat, error) {
	if err := b.need(user, path, acl.Read, "list"); err != nil {
		return nil, err
	}
	stats, err := b.Cat.ListColl(path)
	if err != nil {
		return nil, err
	}
	b.audit(user, "list", path, true, "")
	return stats, nil
}

// StatPath describes a collection or object.
func (b *Broker) StatPath(user, path string) (types.Stat, error) {
	if err := b.need(user, path, acl.Read, "stat"); err != nil {
		return types.Stat{}, err
	}
	if col, err := b.Cat.GetColl(path); err == nil {
		return types.Stat{Path: col.Path, IsCollect: true, Owner: col.Owner, ModifiedAt: col.CreatedAt}, nil
	}
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return types.Stat{}, err
	}
	return types.Stat{
		Path: o.Path(), Kind: o.Kind, DataType: o.DataType, Owner: o.Owner,
		Size: o.Size, ModifiedAt: o.ModifiedAt, Replicas: len(o.Replicas), Container: o.Container,
	}, nil
}

// RmColl removes an empty collection; Own on the collection required.
func (b *Broker) RmColl(user, path string) error {
	if err := b.need(user, path, acl.Own, "rmcoll"); err != nil {
		return err
	}
	if err := b.Cat.DeleteColl(path); err != nil {
		return err
	}
	b.audit(user, "rmcoll", path, true, "")
	return nil
}

// ---- ingestion ----

// IngestOpts parameterise Ingest.
type IngestOpts struct {
	// Path is the logical destination.
	Path string
	// Data is the object contents.
	Data []byte
	// Resource names the target (physical or logical) resource. Ignored
	// when Container is set: "a container specification on ingestion
	// overrides a resource specification" (paper §5).
	Resource string
	// Container is the logical path of the container to append into.
	Container string
	// DataType tags the object (e.g. "fits image").
	DataType string
	// Meta is user metadata supplied at ingestion; it must satisfy the
	// target collection's mandatory structural attributes.
	Meta []types.AVU
	// Span, when non-nil, receives latency-decomposition phase
	// annotations (mcat.lookup, storage.write) along the ingest.
	Span *obs.Span
}

// Ingest stores a new data object. The user needs Write on the target
// collection and on the resource.
func (b *Broker) Ingest(user string, opts IngestOpts) (types.DataObject, error) {
	start := time.Now()
	o, err := b.ingest(user, opts)
	b.ops.ingest.Done(start, err)
	b.ops.heat.Record(shard.KeyOf(opts.Path), int64(len(opts.Data)))
	return o, err
}

func (b *Broker) ingest(user string, opts IngestOpts) (types.DataObject, error) {
	lookup := time.Now()
	path := types.CleanPath(opts.Path)
	coll, name := types.Parent(path), types.Base(path)
	if !types.ValidName(name) {
		return types.DataObject{}, types.E("ingest", path, types.ErrInvalid)
	}
	if !b.Cat.CollExists(coll) {
		return types.DataObject{}, types.E("ingest", coll, types.ErrNotFound)
	}
	if err := b.need(user, coll, acl.Write, "ingest"); err != nil {
		return types.DataObject{}, err
	}
	if missing := b.Cat.CheckMandatory(coll, opts.Meta); len(missing) > 0 {
		b.audit(user, "ingest", path, false, "missing mandatory metadata: "+strings.Join(missing, ","))
		return types.DataObject{}, types.E("ingest", path, types.ErrMandatoryMeta)
	}
	if opts.Container != "" {
		return b.ingestIntoContainer(user, path, opts)
	}
	if opts.Resource == "" {
		return types.DataObject{}, types.E("ingest", path, types.ErrInvalid)
	}
	if b.Cat.ResourceLevel(opts.Resource, user) < acl.Write {
		b.audit(user, "ingest", path, false, "resource permission")
		return types.DataObject{}, types.E("ingest", opts.Resource, types.ErrPermission)
	}
	members, err := b.Cat.ResolvePhysical(opts.Resource)
	if err != nil {
		return types.DataObject{}, err
	}
	// Everything up to here resolved names, ACLs and resources against
	// the catalog — attribute it to the mcat.lookup phase.
	opts.Span.Phase(obs.PhaseMCATLookup, time.Since(lookup))
	dataType := opts.DataType
	if dataType == "" {
		dataType = "generic"
	}
	obj := &types.DataObject{Name: name, Collection: coll, Owner: user, Kind: types.KindFile, DataType: dataType}
	id, err := b.Cat.RegisterObject(obj)
	if err != nil {
		return types.DataObject{}, err
	}
	obj.ID = id
	// RegisterObject resolves linked sub-collections, so the effective
	// path may differ from the requested one.
	path = obj.Path()
	sum := replica.Checksum(opts.Data)
	// Replication policy: the sync default lands the file on every
	// member on the write path; an async:k policy stops the synchronous
	// fan-out after k successful writes and defers the rest (plus any
	// members that failed) to the repair queue as dirty placeholders.
	syncTarget := len(members)
	async := false
	if res, rerr := b.Cat.GetResource(opts.Resource); rerr == nil {
		if k, a, perr := types.ParseReplPolicy(res.ReplPolicy); perr == nil && a {
			syncTarget, async = k, true
		}
	}
	writeStart := time.Now()
	var reps []types.Replica
	wrote := 0
	for i, m := range members {
		rep := types.Replica{
			Number:       types.ReplicaNumber(i),
			Resource:     m.Name,
			PhysicalPath: replica.PhysPathFor(obj, types.ReplicaNumber(i)),
			Status:       types.ReplicaDirty,
			CreatedAt:    b.now(),
		}
		if wrote < syncTarget {
			d, derr := b.Driver(m.Name)
			if derr == nil && m.Online {
				if werr := storage.WriteAll(d, rep.PhysicalPath, opts.Data); werr == nil {
					rep.Status = types.ReplicaClean
					rep.Size = int64(len(opts.Data))
					rep.Checksum = sum
					wrote++
				}
			}
			if rep.Status == types.ReplicaClean {
				b.ops.fanoutOK.Inc()
			} else {
				b.ops.fanoutFail.Inc()
			}
		}
		reps = append(reps, rep)
	}
	opts.Span.Phase(obs.PhaseStorageWrite, time.Since(writeStart))
	if wrote == 0 {
		b.Cat.DeleteObject(path)
		b.audit(user, "ingest", path, false, "no online member of "+opts.Resource)
		return types.DataObject{}, types.E("ingest", path, types.ErrOffline)
	}
	err = b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		o.Size = int64(len(opts.Data))
		o.Checksum = sum
		o.Replicas = reps
		return nil
	})
	if err != nil {
		return types.DataObject{}, err
	}
	if async {
		// Deferred fan-out: every replica the write path did not land
		// becomes a journaled repair task; the dirty rows written above
		// make the work visible to the scrubber even if the enqueue is
		// lost.
		queued := false
		for _, rep := range reps {
			if rep.Status != types.ReplicaClean {
				if b.Cat.EnqueueRepair(types.RepairTask{
					Path: path, Resource: rep.Resource,
					Kind: "replicate", Reason: "async fan-out of " + opts.Resource,
				}) {
					queued = true
				}
			}
		}
		if queued {
			b.repairKick()
		}
	}
	for _, avu := range opts.Meta {
		if err := b.Cat.AddMeta(path, types.MetaUser, avu); err != nil {
			return types.DataObject{}, err
		}
	}
	b.audit(user, "ingest", path, true, fmt.Sprintf("%d bytes on %s (%d replicas)", len(opts.Data), opts.Resource, len(reps)))
	return b.Cat.GetObject(path)
}

// Reingest replaces an object's contents, keeping all metadata linked
// ("a user can reingest a file, i.e. all metadata associated with the
// file by the SRB are still linked to it").
func (b *Broker) Reingest(user, path string, data []byte) error {
	start := time.Now()
	err := b.reingest(user, path, data)
	b.ops.reingest.Done(start, err)
	return err
}

func (b *Broker) reingest(user, path string, data []byte) error {
	o, err := b.checkWrite(user, path, "reingest")
	if err != nil {
		return err
	}
	switch {
	case o.Kind != types.KindFile:
		return types.E("reingest", path, types.ErrUnsupported)
	case o.Container != "":
		return b.reingestContainerMember(user, path, data)
	}
	if err := b.rm.WriteAll(path, data); err != nil {
		return err
	}
	b.audit(user, "reingest", path, true, fmt.Sprintf("%d bytes", len(data)))
	return nil
}

// ---- retrieval ----

// Get retrieves an object's contents, dispatching on its kind: files
// read from a clean replica (or their container), registered files read
// in place, SQL objects execute, URLs fetch, method objects run, and
// links resolve to their target.
func (b *Broker) Get(user, path string) ([]byte, error) {
	return b.GetTraced(user, path, nil)
}

// GetTraced is Get under a trace span: replica failovers, breaker
// decisions and cache/container hits along the read are annotated onto
// sp, and the audit record carries the trace ID (nil sp = plain Get).
func (b *Broker) GetTraced(user, path string, sp *obs.Span) ([]byte, error) {
	start := time.Now()
	data, err := b.get(user, path, sp)
	b.ops.get.Done(start, err)
	b.ops.heat.Record(shard.KeyOf(path), int64(len(data)))
	return data, err
}

func (b *Broker) get(user, path string, sp *obs.Span) ([]byte, error) {
	lookup := time.Now()
	o, err := b.checkRead(user, path, "get")
	sp.Phase(obs.PhaseMCATLookup, time.Since(lookup))
	if err != nil {
		return nil, err
	}
	data, err := b.getObject(user, &o, sp)
	b.auditTraced(sp, user, "get", path, err == nil, "")
	return data, err
}

func (b *Broker) getObject(user string, o *types.DataObject, sp *obs.Span) ([]byte, error) {
	switch o.Kind {
	case types.KindFile:
		if o.Container != "" {
			sp.Event(obs.EventContainerHit, o.Container)
			return b.readContainerMember(o)
		}
		data, _, err := b.rm.ReadAllEv(o.Path(), "", sp)
		return data, err
	case types.KindRegisteredFile:
		return b.readRegistered(o)
	case types.KindURL:
		data, err := b.fetcher.Fetch(o.URL)
		if err != nil && len(o.Alternates) > 0 {
			return b.readAlternates(o, err)
		}
		return data, err
	case types.KindSQL:
		return b.ExecuteSQLSpec(o, "")
	case types.KindMethod:
		return b.invokeMethod(o, nil)
	case types.KindLink:
		target, err := b.Cat.GetObject(o.LinkTarget)
		if err != nil {
			return nil, types.E("get", o.LinkTarget, types.ErrNotFound)
		}
		return b.getObject(user, &target, sp)
	case types.KindShadowDir:
		// Getting a shadow directory renders its cone listing.
		infos, err := b.shadowList(o, ".")
		if err != nil {
			return nil, err
		}
		var sb strings.Builder
		for _, fi := range infos {
			fmt.Fprintf(&sb, "%s\t%d\t%v\n", fi.Path, fi.Size, fi.IsDir)
		}
		return []byte(sb.String()), nil
	default:
		return nil, types.E("get", o.Path(), types.ErrUnsupported)
	}
}

// readRegistered reads a registered file's bytes in place, falling
// back through registered replicates.
func (b *Broker) readRegistered(o *types.DataObject) ([]byte, error) {
	rep, ok := o.CleanReplica("")
	if !ok {
		return nil, types.E("get", o.Path(), types.ErrOffline)
	}
	d, err := b.Driver(rep.Resource)
	if err == nil {
		if data, rerr := storage.ReadAll(d, rep.PhysicalPath); rerr == nil {
			return data, nil
		} else {
			err = rerr
		}
	}
	return b.readAlternates(o, err)
}

// readAlternates tries the registered replicates in order.
func (b *Broker) readAlternates(o *types.DataObject, lastErr error) ([]byte, error) {
	for _, alt := range o.Alternates {
		switch alt.Kind {
		case types.KindURL:
			if data, err := b.fetcher.Fetch(alt.URL); err == nil {
				return data, nil
			}
		case types.KindSQL:
			if alt.SQL != nil {
				tmp := *o
				tmp.SQL = alt.SQL
				if data, err := b.ExecuteSQLSpec(&tmp, ""); err == nil {
					return data, nil
				}
			}
		case types.KindRegisteredFile:
			if d, err := b.Driver(alt.Resource); err == nil {
				if data, err := storage.ReadAll(d, alt.PhysicalPath); err == nil {
					return data, nil
				}
			}
		}
	}
	return nil, types.E("get", o.Path(), lastErr)
}

// OpenRead opens a streaming reader on a file object (the bulk path the
// server uses). Container members stream their byte range.
func (b *Broker) OpenRead(user, path string) (storage.ReadFile, int64, error) {
	o, err := b.checkRead(user, path, "open")
	if err != nil {
		return nil, 0, err
	}
	if o.Kind == types.KindLink {
		o, err = b.Cat.GetObject(o.LinkTarget)
		if err != nil {
			return nil, 0, err
		}
		// All further access addresses the resolved target.
		path = o.Path()
	}
	switch o.Kind {
	case types.KindFile:
		if o.Container != "" {
			data, err := b.readContainerMember(&o)
			if err != nil {
				return nil, 0, err
			}
			return nopReadFile{strings.NewReader(string(data))}, int64(len(data)), nil
		}
		f, rep, err := b.rm.OpenRead(path, "")
		if err != nil {
			return nil, 0, err
		}
		return f, rep.Size, nil
	case types.KindRegisteredFile:
		rep, ok := o.CleanReplica("")
		if !ok {
			return nil, 0, types.E("open", path, types.ErrOffline)
		}
		d, err := b.Driver(rep.Resource)
		if err != nil {
			return nil, 0, err
		}
		f, err := d.Open(rep.PhysicalPath)
		if err != nil {
			return nil, 0, err
		}
		fi, _ := d.Stat(rep.PhysicalPath)
		return f, fi.Size, nil
	default:
		data, err := b.getObject(user, &o, nil)
		if err != nil {
			return nil, 0, err
		}
		return nopReadFile{strings.NewReader(string(data))}, int64(len(data)), nil
	}
}

// nopReadFile adapts a strings.Reader to storage.ReadFile.
type nopReadFile struct{ *strings.Reader }

func (nopReadFile) Close() error { return nil }

// ---- replication, copy, move, link, delete ----

// Replicate adds a replica on the named resource. Files inside
// registered directories are not replicable (paper §5); the replica
// manager enforces the container rule.
func (b *Broker) Replicate(user, path, resource string) (types.Replica, error) {
	start := time.Now()
	rep, err := b.replicate(user, path, resource)
	b.ops.replicate.Done(start, err)
	return rep, err
}

func (b *Broker) replicate(user, path, resource string) (types.Replica, error) {
	if _, err := b.checkWrite(user, path, "replicate"); err != nil {
		return types.Replica{}, err
	}
	if b.Cat.ResourceLevel(resource, user) < acl.Write {
		return types.Replica{}, types.E("replicate", resource, types.ErrPermission)
	}
	rep, err := b.rm.Replicate(path, resource)
	b.audit(user, "replicate", path, err == nil, resource)
	return rep, err
}

// IngestReplica stores caller-provided bytes as a new replica of an
// existing object — the paper's "ingest replica" for semantically-equal
// but syntactically-different copies (tiff vs gif). SRB does not check
// equality.
func (b *Broker) IngestReplica(user, path, resource string, data []byte) (types.Replica, error) {
	start := time.Now()
	rep, err := b.ingestReplica(user, path, resource, data)
	b.ops.ingestReplica.Done(start, err)
	return rep, err
}

func (b *Broker) ingestReplica(user, path, resource string, data []byte) (types.Replica, error) {
	o, err := b.checkWrite(user, path, "ingestreplica")
	if err != nil {
		return types.Replica{}, err
	}
	if o.Container != "" {
		return types.Replica{}, types.E("ingestreplica", path, types.ErrUnsupported)
	}
	d, err := b.Driver(resource)
	if err != nil {
		return types.Replica{}, err
	}
	next := types.ReplicaNumber(0)
	for _, r := range o.Replicas {
		if r.Number >= next {
			next = r.Number + 1
		}
	}
	physPath := replica.PhysPathFor(&o, next)
	if err := storage.WriteAll(d, physPath, data); err != nil {
		return types.Replica{}, err
	}
	rep := types.Replica{
		Number: next, Resource: resource, PhysicalPath: physPath,
		Status: types.ReplicaClean, Size: int64(len(data)),
		Checksum: replica.Checksum(data), CreatedAt: b.now(),
	}
	err = b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		o.Replicas = append(o.Replicas, rep)
		return nil
	})
	b.audit(user, "ingestreplica", path, err == nil, resource)
	return rep, err
}

// Copy duplicates an object (or, recursively, a collection) to a new
// logical path. Per the paper, "the copy command does not copy any
// user-defined metadata or annotations", and the copy is entirely
// unconnected to the source. URL, SQL and method objects cannot be
// copied.
func (b *Broker) Copy(user, src, dst, resource string) error {
	if err := b.need(user, src, acl.Read, "copy"); err != nil {
		return err
	}
	if b.Cat.CollExists(src) {
		return b.copyCollection(user, src, dst, resource)
	}
	o, err := b.Cat.GetObject(src)
	if err != nil {
		return err
	}
	switch o.Kind {
	case types.KindURL, types.KindSQL, types.KindMethod:
		return types.E("copy", src, types.ErrUnsupported)
	}
	data, err := b.getObject(user, &o, nil)
	if err != nil {
		return err
	}
	if resource == "" {
		if rep, ok := o.CleanReplica(""); ok {
			resource = rep.Resource
		}
	}
	if resource == "" {
		return types.E("copy", src, types.ErrInvalid)
	}
	_, err = b.Ingest(user, IngestOpts{Path: dst, Data: data, Resource: resource, DataType: o.DataType})
	b.audit(user, "copy", src, err == nil, "to "+dst)
	return err
}

func (b *Broker) copyCollection(user, src, dst, resource string) error {
	if err := b.Mkdir(user, dst); err != nil {
		return err
	}
	for _, st := range b.Cat.SubColls(src) {
		if err := b.Mkdir(user, types.Rebase(src, dst, st)); err != nil {
			return err
		}
	}
	for _, p := range b.Cat.SubtreeObjects(src) {
		o, err := b.Cat.GetObject(p)
		if err != nil {
			continue
		}
		switch o.Kind {
		case types.KindURL, types.KindSQL, types.KindMethod, types.KindLink:
			continue // pointer objects are not copied recursively
		}
		if err := b.Copy(user, p, types.Rebase(src, dst, p), resource); err != nil {
			return err
		}
	}
	b.audit(user, "copycoll", src, true, "to "+dst)
	return nil
}

// Move renames an object or collection within the logical name space
// (the paper's logical move: "the user-defined metadata remains
// unchanged"). The user needs Own on the source and Write on the
// destination collection.
func (b *Broker) Move(user, src, dst string) error {
	if err := b.need(user, src, acl.Own, "move"); err != nil {
		return err
	}
	dstColl := types.Parent(dst)
	if err := b.need(user, dstColl, acl.Write, "move"); err != nil {
		return err
	}
	var err error
	if b.Cat.CollExists(src) {
		err = b.Cat.MoveColl(src, dst)
	} else {
		err = b.Cat.MoveObject(src, dstColl, types.Base(dst))
	}
	b.audit(user, "move", src, err == nil, "to "+dst)
	return err
}

// PhysicalMove relocates one replica to another resource without
// changing the logical name.
func (b *Broker) PhysicalMove(user, path string, number types.ReplicaNumber, toResource string) error {
	if _, err := b.checkWrite(user, path, "physmove"); err != nil {
		return err
	}
	err := b.rm.PhysicalMove(path, number, toResource)
	b.audit(user, "physmove", path, err == nil, toResource)
	return err
}

// Link registers a soft link to an existing object in another
// collection. Chains collapse: linking to a link links to its target.
func (b *Broker) Link(user, target, linkPath string) error {
	o, err := b.Cat.GetObject(target)
	if err != nil {
		return types.E("link", target, types.ErrNotFound)
	}
	if err := b.need(user, target, acl.Read, "link"); err != nil {
		return err
	}
	if o.Kind == types.KindLink {
		target = o.LinkTarget
	}
	coll := types.Parent(linkPath)
	if err := b.need(user, coll, acl.Write, "link"); err != nil {
		return err
	}
	_, err = b.Cat.RegisterObject(&types.DataObject{
		Name: types.Base(linkPath), Collection: coll, Owner: user,
		Kind: types.KindLink, LinkTarget: types.CleanPath(target),
	})
	b.audit(user, "link", linkPath, err == nil, "-> "+target)
	return err
}

// LinkColl links a collection as a sub-collection of another.
func (b *Broker) LinkColl(user, target, linkPath string) error {
	if err := b.need(user, target, acl.Read, "linkcoll"); err != nil {
		return err
	}
	if err := b.need(user, types.Parent(linkPath), acl.Write, "linkcoll"); err != nil {
		return err
	}
	err := b.Cat.LinkColl(target, linkPath, user)
	b.audit(user, "linkcoll", linkPath, err == nil, "-> "+target)
	return err
}

// Delete removes an object. Registered directory, SQL, URL and method
// objects are unlinked without touching the physical data; link objects
// only unlink; files lose every replica's bytes and, with the last
// replica, all metadata and annotations (paper §5).
func (b *Broker) Delete(user, path string) error {
	start := time.Now()
	err := b.deleteObj(user, path)
	b.ops.delete_.Done(start, err)
	return err
}

func (b *Broker) deleteObj(user, path string) error {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return types.E("delete", path, types.ErrNotFound)
	}
	if err := b.need(user, path, acl.Own, "delete"); err != nil {
		return err
	}
	if writeBlocked(&o, user, b.now()) {
		return types.E("delete", path, types.ErrLocked)
	}
	switch o.Kind {
	case types.KindFile, types.KindRegisteredFile:
		// Physical bytes go with the object. Registered files are also
		// deleted physically (paper §5, kind 1: "including deletion on
		// registered files"); container members leave their bytes
		// orphaned in the segment until the container is removed.
		if o.Container == "" {
			for _, rep := range o.Replicas {
				if d, err := b.Driver(rep.Resource); err == nil {
					d.Remove(rep.PhysicalPath)
				}
			}
		}
	}
	err = b.Cat.DeleteObject(path)
	b.audit(user, "delete", path, err == nil, o.Kind.String())
	return err
}

// DeleteReplica removes one replica; deleting the last replica deletes
// the object with all its metadata ("when the last replica is deleted
// all the metadata and annotations are also deleted").
func (b *Broker) DeleteReplica(user, path string, number types.ReplicaNumber) error {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return err
	}
	if err := b.need(user, path, acl.Own, "rmreplica"); err != nil {
		return err
	}
	if len(o.Replicas) <= 1 {
		return b.Delete(user, path)
	}
	err = b.rm.DeleteReplica(path, number)
	b.audit(user, "rmreplica", path, err == nil, fmt.Sprintf("replica %d", number))
	return err
}
