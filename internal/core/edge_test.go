package core

import (
	"errors"
	"io"
	"strings"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

func TestOpenReadKinds(t *testing.T) {
	b := newBroker(t)
	// Plain file: streaming handle with the right size.
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("streamable"), Resource: "disk1"})
	r, size, err := b.OpenRead("alice", "/home/f")
	if err != nil || size != 10 {
		t.Fatalf("OpenRead file = %d, %v", size, err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "streamable" {
		t.Errorf("streamed = %q", data)
	}
	// Container member: byte range through the reader.
	b.CreateContainer("alice", "/home/cc", "disk1")
	b.Ingest("alice", IngestOpts{Path: "/home/member", Data: []byte("in container"), Container: "/home/cc"})
	r, size, err = b.OpenRead("alice", "/home/member")
	if err != nil || size != 12 {
		t.Fatalf("OpenRead member = %d, %v", size, err)
	}
	data, _ = io.ReadAll(r)
	r.Close()
	if string(data) != "in container" {
		t.Errorf("member streamed = %q", data)
	}
	// URL object: materialised through the fetcher.
	b.Fetcher().RegisterMemBytes("mem://u", []byte("url!"))
	b.RegisterURL("alice", "/home/u", "mem://u")
	r, size, err = b.OpenRead("alice", "/home/u")
	if err != nil || size != 4 {
		t.Fatalf("OpenRead url = %d, %v", size, err)
	}
	r.Close()
	// Link: follows to the target.
	b.Link("alice", "/home/f", "/home/lnk")
	r, size, err = b.OpenRead("alice", "/home/lnk")
	if err != nil || size != 10 {
		t.Fatalf("OpenRead link = %d, %v", size, err)
	}
	r.Close()
	// Registered file: reads in place.
	d, _ := b.Driver("disk1")
	storage.WriteAll(d, "/phys/reg", []byte("registered"))
	b.RegisterFile("alice", "/home/reg", "disk1", "/phys/reg", nil)
	r, size, err = b.OpenRead("alice", "/home/reg")
	if err != nil || size != 10 {
		t.Fatalf("OpenRead registered = %d, %v", size, err)
	}
	r.Close()
	// Missing object.
	if _, _, err := b.OpenRead("alice", "/home/ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("OpenRead missing = %v", err)
	}
}

func TestGetBrokenLink(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/orig", Data: []byte("x"), Resource: "disk1"})
	b.Link("alice", "/home/orig", "/home/lnk")
	b.Delete("alice", "/home/orig")
	if _, err := b.Get("alice", "/home/lnk"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("broken link get = %v", err)
	}
}

func TestRegisteredFileAlternateFallback(t *testing.T) {
	b := newBroker(t)
	d1, _ := b.Driver("disk1")
	d2, _ := b.Driver("disk2")
	storage.WriteAll(d1, "/p/primary", []byte("primary bytes"))
	storage.WriteAll(d2, "/p/backup", []byte("backup bytes"))
	b.RegisterFile("alice", "/home/reg", "disk1", "/p/primary", nil)
	must(t, b.RegisterReplicaSpec("alice", "/home/reg", types.AltSpec{
		Kind: types.KindRegisteredFile, Resource: "disk2", PhysicalPath: "/p/backup",
	}))
	// Primary vanishes out from under SRB (registered files may drift).
	d1.Remove("/p/primary")
	data, err := b.Get("alice", "/home/reg")
	if err != nil || string(data) != "backup bytes" {
		t.Errorf("alternate registered file = %q, %v", data, err)
	}
}

func TestSQLAlternateFallback(t *testing.T) {
	b := newBroker(t)
	db := withDB(t, b)
	db.Database().Exec("CREATE TABLE good (a)")
	db.Database().Exec("INSERT INTO good VALUES ('alt answer')")
	// Primary query references a missing table; the registered replica
	// (another SQL spec) answers instead.
	_, err := b.RegisterSQL("alice", "/home/q", types.SQLSpec{
		Resource: "dbrsrc", Query: "SELECT a FROM missing_table", Template: "XMLREL",
	})
	must(t, err)
	must(t, b.RegisterReplicaSpec("alice", "/home/q", types.AltSpec{
		Kind: types.KindSQL,
		SQL:  &types.SQLSpec{Resource: "dbrsrc", Query: "SELECT a FROM good", Template: "XMLREL"},
	}))
	out, err := b.Get("alice", "/home/q")
	if err != nil || !strings.Contains(string(out), "alt answer") {
		t.Errorf("sql alternate = %q, %v", out, err)
	}
}

func TestCopyGuards(t *testing.T) {
	b := newBroker(t)
	b.Fetcher().RegisterMemBytes("mem://x", []byte("y"))
	b.RegisterURL("alice", "/home/u", "mem://x")
	// URL/SQL/method objects cannot be copied (paper §5).
	if err := b.Copy("alice", "/home/u", "/home/u2", ""); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("copy url = %v", err)
	}
	if err := b.Copy("alice", "/home/ghost", "/home/g2", ""); !errors.Is(err, types.ErrPermission) && !errors.Is(err, types.ErrNotFound) {
		t.Errorf("copy missing = %v", err)
	}
}

func TestRemount(t *testing.T) {
	b := newBroker(t)
	// Simulate a restart: a resource exists in the catalog but the
	// driver map is fresh.
	fresh := memfs.New()
	if err := b.Remount("disk1", fresh); err != nil {
		t.Fatal(err)
	}
	if err := b.Remount("ghost", memfs.New()); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("remount unknown = %v", err)
	}
	// The remounted driver serves new ingests.
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("x"), Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if u := fresh.Usage(); u.Files != 1 {
		t.Errorf("remounted driver usage = %+v", u)
	}
}

func TestIngestIntoLinkedCollection(t *testing.T) {
	b := newBroker(t)
	b.Mkdir("alice", "/home/real")
	b.LinkColl("alice", "/home/real", "/home/alias")
	// Objects ingested via the link land in the target collection.
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/alias/f", Data: []byte("x"), Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Cat.GetObject("/home/real/f"); err != nil {
		t.Errorf("object should land in the link target: %v", err)
	}
}

func TestGetVersionMissingDriver(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/doc", Data: []byte("v1"), Resource: "disk1"})
	must(t, b.Checkout("alice", "/home/doc"))
	must(t, b.Checkin("alice", "/home/doc", []byte("v2"), ""))
	if _, err := b.GetVersion("bob", "/home/doc", 1); !errors.Is(err, types.ErrPermission) {
		t.Errorf("foreign version read = %v", err)
	}
	if _, err := b.GetVersion("alice", "/home/doc", 99); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing version = %v", err)
	}
}

func TestPurgeGuards(t *testing.T) {
	b := newBroker(t)
	// Purging a non-cache resource is invalid.
	if _, err := b.PurgeCache("admin", "disk1", 0); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("purge filesystem = %v", err)
	}
	if _, err := b.PurgeCache("admin", "ghost", 0); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("purge missing = %v", err)
	}
}

func TestResourceRegistrationGuards(t *testing.T) {
	b := newBroker(t)
	if err := b.AddPhysicalResource("alice", "new", types.ClassCache, "memfs", memfs.New()); !errors.Is(err, types.ErrPermission) {
		t.Errorf("non-admin resource = %v", err)
	}
	if err := b.AddLogicalResource("alice", "lr2", []string{"disk1", "disk2"}); !errors.Is(err, types.ErrPermission) {
		t.Errorf("non-admin logical = %v", err)
	}
	if err := b.AddPhysicalResource("admin", "disk1", types.ClassCache, "memfs", memfs.New()); !errors.Is(err, types.ErrExists) {
		t.Errorf("duplicate resource = %v", err)
	}
}

func TestShadowGetRendersListing(t *testing.T) {
	b := newBroker(t)
	d, _ := b.Driver("disk1")
	storage.WriteAll(d, "/cone/x.dat", []byte("X"))
	b.RegisterDirectory("alice", "/home/sh", "disk1", "/cone")
	// ShadowList on a non-shadow object is unsupported.
	b.Ingest("alice", IngestOpts{Path: "/home/plain", Data: nil, Resource: "disk1"})
	if _, err := b.ShadowList("alice", "/home/plain", "."); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("shadow list on plain = %v", err)
	}
	if _, err := b.ShadowOpen("alice", "/home/plain", "x"); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("shadow open on plain = %v", err)
	}
}

func TestExclusiveLockBlocksLinkReads(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/orig", Data: []byte("x"), Resource: "disk1"})
	b.Chmod("alice", "/home/orig", "bob", acl.Read)
	b.Link("alice", "/home/orig", "/home/lnk")
	must(t, b.Lock("alice", "/home/orig", types.LockExclusive, 0))
	// The lock on the original also blocks access through the link.
	if _, err := b.Get("bob", "/home/lnk"); !errors.Is(err, types.ErrLocked) {
		t.Errorf("link read under exclusive lock = %v", err)
	}
}

func TestStatPathMissing(t *testing.T) {
	b := newBroker(t)
	if _, err := b.StatPath("alice", "/home/ghost"); !errors.Is(err, types.ErrPermission) && !errors.Is(err, types.ErrNotFound) {
		t.Errorf("stat missing = %v", err)
	}
	if _, err := b.StatPath("admin", "/home/ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("admin stat missing = %v", err)
	}
}

func TestSyncAllDirty(t *testing.T) {
	b := newBroker(t)
	// A mirrored file and a mirrored container both go dirty while
	// disk2 is down.
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("v1"), Resource: "mirror"})
	b.CreateContainer("alice", "/home/cc", "mirror")
	b.Cat.SetResourceOnline("disk2", false)
	must(t, b.Reingest("alice", "/home/f", []byte("v2")))
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/m", Data: []byte("member"), Container: "/home/cc"}); err != nil {
		t.Fatal(err)
	}
	b.Cat.SetResourceOnline("disk2", true)
	// Only admins may run the sweep.
	if _, err := b.SyncAllDirty("alice"); !errors.Is(err, types.ErrPermission) {
		t.Fatalf("non-admin sweep = %v", err)
	}
	n, err := b.SyncAllDirty("admin")
	if err != nil || n != 2 { // one file replica + one segment replica
		t.Fatalf("SyncAllDirty = %d, %v", n, err)
	}
	// Everything is clean and consistent on disk2 alone.
	b.Cat.SetResourceOnline("disk1", false)
	data, err := b.Get("alice", "/home/f")
	if err != nil || string(data) != "v2" {
		t.Errorf("file after sweep = %q, %v", data, err)
	}
	data, err = b.Get("alice", "/home/m")
	if err != nil || string(data) != "member" {
		t.Errorf("member after sweep = %q, %v", data, err)
	}
	// A second sweep finds nothing.
	b.Cat.SetResourceOnline("disk1", true)
	if n, _ := b.SyncAllDirty("admin"); n != 0 {
		t.Errorf("idle sweep = %d", n)
	}
}
