package core

import (
	"fmt"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/container"
	"gosrb/internal/replica"
	"gosrb/internal/types"
)

// ContainerDataType tags container objects in the catalog.
const ContainerDataType = "srb-container"

// CreateContainer creates an empty container on the named resource.
// With a logical resource the segment exists on every member and
// "replication of a container (and its objects) is done by the SRB
// system using semantics associated with the logical resource
// specification of the container" (paper §5).
func (b *Broker) CreateContainer(user, path, resource string) (types.DataObject, error) {
	start := time.Now()
	o, err := b.createContainer(user, path, resource)
	b.ops.mkContainer.Done(start, err)
	return o, err
}

func (b *Broker) createContainer(user, path, resource string) (types.DataObject, error) {
	coll := types.Parent(path)
	if err := b.need(user, coll, acl.Write, "mkcontainer"); err != nil {
		return types.DataObject{}, err
	}
	if b.Cat.ResourceLevel(resource, user) < acl.Write {
		return types.DataObject{}, types.E("mkcontainer", resource, types.ErrPermission)
	}
	members, err := b.Cat.ResolvePhysical(resource)
	if err != nil {
		return types.DataObject{}, err
	}
	obj := &types.DataObject{
		Name: types.Base(path), Collection: coll, Owner: user,
		Kind: types.KindFile, DataType: ContainerDataType,
	}
	id, err := b.Cat.RegisterObject(obj)
	if err != nil {
		return types.DataObject{}, err
	}
	obj.ID = id
	var reps []types.Replica
	for i, m := range members {
		physPath := replica.PhysPathFor(obj, types.ReplicaNumber(i))
		d, derr := b.Driver(m.Name)
		if derr != nil {
			b.Cat.DeleteObject(path)
			return types.DataObject{}, derr
		}
		if _, err := container.NewWriter(d, physPath); err != nil {
			b.Cat.DeleteObject(path)
			return types.DataObject{}, err
		}
		reps = append(reps, types.Replica{
			Number: types.ReplicaNumber(i), Resource: m.Name,
			PhysicalPath: physPath, Status: types.ReplicaClean,
			Size: container.HeaderSize, CreatedAt: b.now(),
		})
	}
	err = b.Cat.UpdateObject(path, func(o *types.DataObject) error {
		o.Replicas = reps
		o.Size = container.HeaderSize
		return nil
	})
	if err != nil {
		return types.DataObject{}, err
	}
	b.audit(user, "mkcontainer", path, true, resource)
	return b.Cat.GetObject(path)
}

// ingestIntoContainer appends the data as a record in every clean
// online segment replica (offsets stay aligned because appends are
// serialised per container) and registers the member object.
func (b *Broker) ingestIntoContainer(user, path string, opts IngestOpts) (types.DataObject, error) {
	contPath := types.CleanPath(opts.Container)
	cont, err := b.Cat.GetObject(contPath)
	if err != nil {
		return types.DataObject{}, types.E("ingest", contPath, types.ErrNotFound)
	}
	if cont.DataType != ContainerDataType {
		return types.DataObject{}, types.E("ingest", contPath, types.ErrInvalid)
	}
	if err := b.need(user, contPath, acl.Write, "ingest"); err != nil {
		return types.DataObject{}, err
	}

	lock := b.contLock(contPath)
	lock.Lock()
	defer lock.Unlock()

	// Re-read under the append lock for a current view.
	cont, err = b.Cat.GetObject(contPath)
	if err != nil {
		return types.DataObject{}, err
	}
	var offset int64 = -1
	appended := make(map[types.ReplicaNumber]bool)
	for _, rep := range cont.Replicas {
		if rep.Status != types.ReplicaClean {
			continue
		}
		res, rerr := b.Cat.GetResource(rep.Resource)
		if rerr != nil || !res.Online {
			continue
		}
		d, derr := b.Driver(rep.Resource)
		if derr != nil {
			continue
		}
		w, werr := container.NewWriter(d, rep.PhysicalPath)
		if werr != nil {
			continue
		}
		off, aerr := w.Append(opts.Data)
		if aerr != nil {
			continue
		}
		if offset < 0 {
			offset = off
		} else if off != offset {
			// Alignment broken (should not happen): mark dirty.
			continue
		}
		appended[rep.Number] = true
	}
	if offset < 0 {
		b.audit(user, "ingest", path, false, "container has no writable replica")
		return types.DataObject{}, types.E("ingest", contPath, types.ErrOffline)
	}
	// Update container replica states and size.
	if err := b.Cat.UpdateObject(contPath, func(o *types.DataObject) error {
		newSize := offset + int64(len(opts.Data))
		o.Size = newSize
		for i := range o.Replicas {
			r := &o.Replicas[i]
			if appended[r.Number] {
				r.Size = newSize
			} else {
				r.Status = types.ReplicaDirty
			}
		}
		return nil
	}); err != nil {
		return types.DataObject{}, err
	}

	dataType := opts.DataType
	if dataType == "" {
		dataType = "generic"
	}
	obj := &types.DataObject{
		Name: types.Base(path), Collection: types.Parent(path), Owner: user,
		Kind: types.KindFile, DataType: dataType,
		Container: contPath, ContainerOffset: offset, ContainerSize: int64(len(opts.Data)),
		Size: int64(len(opts.Data)), Checksum: replica.Checksum(opts.Data),
	}
	if _, err := b.Cat.RegisterObject(obj); err != nil {
		return types.DataObject{}, err
	}
	path = obj.Path() // linked sub-collections resolve at registration
	for _, avu := range opts.Meta {
		if err := b.Cat.AddMeta(path, types.MetaUser, avu); err != nil {
			return types.DataObject{}, err
		}
	}
	b.audit(user, "ingest", path, true, fmt.Sprintf("into container %s at %d", contPath, offset))
	return b.Cat.GetObject(path)
}

// readContainerMember extracts a member's bytes from any clean online
// segment replica.
func (b *Broker) readContainerMember(o *types.DataObject) ([]byte, error) {
	cont, err := b.Cat.GetObject(o.Container)
	if err != nil {
		return nil, types.E("get", o.Container, types.ErrNotFound)
	}
	var lastErr error = types.ErrOffline
	for _, rep := range cont.Replicas {
		if rep.Status != types.ReplicaClean {
			continue
		}
		res, rerr := b.Cat.GetResource(rep.Resource)
		if rerr != nil || !res.Online {
			continue
		}
		d, derr := b.Driver(rep.Resource)
		if derr != nil {
			lastErr = derr
			continue
		}
		data, err := container.Read(d, rep.PhysicalPath, o.ContainerOffset, o.ContainerSize)
		if err != nil {
			lastErr = err
			continue
		}
		return data, nil
	}
	return nil, types.E("get", o.Path(), lastErr)
}

// reingestContainerMember appends the new contents as a fresh record
// and repoints the member; the old bytes remain in the segment until
// the container is compacted or removed.
func (b *Broker) reingestContainerMember(user, path string, data []byte) error {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return err
	}
	tmp, err := b.ingestAppendOnly(o.Container, data)
	if err != nil {
		return err
	}
	err = b.Cat.UpdateObject(path, func(obj *types.DataObject) error {
		obj.ContainerOffset = tmp
		obj.ContainerSize = int64(len(data))
		obj.Size = int64(len(data))
		obj.Checksum = replica.Checksum(data)
		return nil
	})
	b.audit(user, "reingest", path, err == nil, "container member")
	return err
}

// ingestAppendOnly appends raw bytes to a container's clean replicas
// and returns the aligned payload offset.
func (b *Broker) ingestAppendOnly(contPath string, data []byte) (int64, error) {
	lock := b.contLock(contPath)
	lock.Lock()
	defer lock.Unlock()
	cont, err := b.Cat.GetObject(contPath)
	if err != nil {
		return 0, err
	}
	var offset int64 = -1
	appended := make(map[types.ReplicaNumber]bool)
	for _, rep := range cont.Replicas {
		if rep.Status != types.ReplicaClean {
			continue
		}
		res, rerr := b.Cat.GetResource(rep.Resource)
		if rerr != nil || !res.Online {
			continue
		}
		d, derr := b.Driver(rep.Resource)
		if derr != nil {
			continue
		}
		w, werr := container.NewWriter(d, rep.PhysicalPath)
		if werr != nil {
			continue
		}
		off, aerr := w.Append(data)
		if aerr != nil {
			continue
		}
		if offset < 0 {
			offset = off
		}
		appended[rep.Number] = true
	}
	if offset < 0 {
		return 0, types.E("append", contPath, types.ErrOffline)
	}
	err = b.Cat.UpdateObject(contPath, func(o *types.DataObject) error {
		newSize := offset + int64(len(data))
		o.Size = newSize
		for i := range o.Replicas {
			r := &o.Replicas[i]
			if appended[r.Number] {
				r.Size = newSize
			} else {
				r.Status = types.ReplicaDirty
			}
		}
		return nil
	})
	return offset, err
}

// SyncContainer refreshes dirty segment replicas from a clean one and
// returns how many were repaired.
func (b *Broker) SyncContainer(user, contPath string) (int, error) {
	start := time.Now()
	n, err := b.syncContainer(user, contPath)
	b.ops.syncContainer.Done(start, err)
	return n, err
}

func (b *Broker) syncContainer(user, contPath string) (int, error) {
	cont, err := b.Cat.GetObject(contPath)
	if err != nil {
		return 0, err
	}
	if cont.DataType != ContainerDataType {
		return 0, types.E("synccontainer", contPath, types.ErrInvalid)
	}
	if err := b.need(user, contPath, acl.Write, "synccontainer"); err != nil {
		return 0, err
	}
	lock := b.contLock(contPath)
	lock.Lock()
	defer lock.Unlock()
	cont, err = b.Cat.GetObject(contPath)
	if err != nil {
		return 0, err
	}
	var srcRep *types.Replica
	for i := range cont.Replicas {
		if cont.Replicas[i].Status == types.ReplicaClean {
			if res, err := b.Cat.GetResource(cont.Replicas[i].Resource); err == nil && res.Online {
				srcRep = &cont.Replicas[i]
				break
			}
		}
	}
	if srcRep == nil {
		return 0, types.E("synccontainer", contPath, types.ErrOffline)
	}
	srcD, err := b.Driver(srcRep.Resource)
	if err != nil {
		return 0, err
	}
	fixed := make(map[types.ReplicaNumber]bool)
	for _, rep := range cont.Replicas {
		if rep.Status != types.ReplicaDirty {
			continue
		}
		res, rerr := b.Cat.GetResource(rep.Resource)
		if rerr != nil || !res.Online {
			continue
		}
		d, derr := b.Driver(rep.Resource)
		if derr != nil {
			continue
		}
		if _, err := container.Copy(d, rep.PhysicalPath, srcD, srcRep.PhysicalPath); err != nil {
			continue
		}
		fixed[rep.Number] = true
	}
	if len(fixed) > 0 {
		err = b.Cat.UpdateObject(contPath, func(o *types.DataObject) error {
			for i := range o.Replicas {
				if fixed[o.Replicas[i].Number] {
					o.Replicas[i].Status = types.ReplicaClean
					o.Replicas[i].Size = o.Size
				}
			}
			return nil
		})
	}
	b.audit(user, "synccontainer", contPath, err == nil, fmt.Sprintf("%d replicas", len(fixed)))
	return len(fixed), err
}

// DeleteContainer removes an empty container and its segments.
func (b *Broker) DeleteContainer(user, contPath string) error {
	cont, err := b.Cat.GetObject(contPath)
	if err != nil {
		return err
	}
	if cont.DataType != ContainerDataType {
		return types.E("rmcontainer", contPath, types.ErrInvalid)
	}
	if err := b.need(user, contPath, acl.Own, "rmcontainer"); err != nil {
		return err
	}
	if members := b.Cat.ObjectsInContainer(contPath); len(members) > 0 {
		return types.E("rmcontainer", contPath, types.ErrNotEmpty)
	}
	for _, rep := range cont.Replicas {
		if d, err := b.Driver(rep.Resource); err == nil {
			d.Remove(rep.PhysicalPath)
		}
	}
	err = b.Cat.DeleteObject(contPath)
	b.audit(user, "rmcontainer", contPath, err == nil, "")
	return err
}
