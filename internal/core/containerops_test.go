package core

import (
	"errors"
	"fmt"
	"testing"

	"gosrb/internal/types"
)

func TestContainerLifecycle(t *testing.T) {
	b := newBroker(t)
	cont, err := b.CreateContainer("alice", "/home/cont1", "disk1")
	if err != nil {
		t.Fatal(err)
	}
	if cont.DataType != ContainerDataType || len(cont.Replicas) != 1 {
		t.Fatalf("container = %+v", cont)
	}
	// Ingest members; container spec overrides resource spec.
	var want []string
	for i := 0; i < 20; i++ {
		data := []byte(fmt.Sprintf("member-%d-data", i))
		want = append(want, string(data))
		_, err := b.Ingest("alice", IngestOpts{
			Path: fmt.Sprintf("/home/small%02d", i), Data: data,
			Resource:  "disk2", // ignored: container wins
			Container: "/home/cont1",
		})
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	// Members read back through the container.
	for i := 0; i < 20; i++ {
		got, err := b.Get("alice", fmt.Sprintf("/home/small%02d", i))
		if err != nil || string(got) != want[i] {
			t.Errorf("member %d = %q, %v", i, got, err)
		}
	}
	o, _ := b.Cat.GetObject("/home/small00")
	if o.Container != "/home/cont1" || len(o.Replicas) != 0 {
		t.Errorf("member object = %+v", o)
	}
	// Members are indexed by container.
	if got := len(b.Cat.ObjectsInContainer("/home/cont1")); got != 20 {
		t.Errorf("members = %d", got)
	}
	// A non-empty container refuses deletion.
	if err := b.DeleteContainer("alice", "/home/cont1"); !errors.Is(err, types.ErrNotEmpty) {
		t.Errorf("non-empty delete: %v", err)
	}
	// Delete members, then the container (bytes removed).
	for i := 0; i < 20; i++ {
		if err := b.Delete("alice", fmt.Sprintf("/home/small%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.DeleteContainer("alice", "/home/cont1"); err != nil {
		t.Fatal(err)
	}
	d, _ := b.Driver("disk1")
	if _, err := d.Stat(cont.Replicas[0].PhysicalPath); !errors.Is(err, types.ErrNotFound) {
		t.Error("segment should be removed")
	}
}

func TestContainerOnLogicalResource(t *testing.T) {
	b := newBroker(t)
	cont, err := b.CreateContainer("alice", "/home/cc", "mirror")
	if err != nil {
		t.Fatal(err)
	}
	if len(cont.Replicas) != 2 {
		t.Fatalf("segment replicas = %+v", cont.Replicas)
	}
	b.Ingest("alice", IngestOpts{Path: "/home/m1", Data: []byte("aligned"), Container: "/home/cc"})
	// Offsets are aligned: the member reads from either segment.
	b.Cat.SetResourceOnline("disk1", false)
	data, err := b.Get("alice", "/home/m1")
	if err != nil || string(data) != "aligned" {
		t.Errorf("read via disk2 segment = %q, %v", data, err)
	}
	b.Cat.SetResourceOnline("disk1", true)
	b.Cat.SetResourceOnline("disk2", false)
	data, err = b.Get("alice", "/home/m1")
	if err != nil || string(data) != "aligned" {
		t.Errorf("read via disk1 segment = %q, %v", data, err)
	}
}

func TestContainerDirtyAndSync(t *testing.T) {
	b := newBroker(t)
	b.CreateContainer("alice", "/home/cc", "mirror")
	// disk2 goes down; appends land only on disk1 and mark disk2 dirty.
	b.Cat.SetResourceOnline("disk2", false)
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/m1", Data: []byte("while-down"), Container: "/home/cc"}); err != nil {
		t.Fatal(err)
	}
	cont, _ := b.Cat.GetObject("/home/cc")
	var st1, st2 types.ReplicaStatus
	for _, r := range cont.Replicas {
		if r.Resource == "disk1" {
			st1 = r.Status
		} else {
			st2 = r.Status
		}
	}
	if st1 != types.ReplicaClean || st2 != types.ReplicaDirty {
		t.Fatalf("statuses = %v, %v", st1, st2)
	}
	// Back online: sync repairs the dirty segment.
	b.Cat.SetResourceOnline("disk2", true)
	n, err := b.SyncContainer("alice", "/home/cc")
	if err != nil || n != 1 {
		t.Fatalf("SyncContainer = %d, %v", n, err)
	}
	// Reads work from the repaired copy alone.
	b.Cat.SetResourceOnline("disk1", false)
	data, err := b.Get("alice", "/home/m1")
	if err != nil || string(data) != "while-down" {
		t.Errorf("read from synced = %q, %v", data, err)
	}
}

func TestContainerMemberReingest(t *testing.T) {
	b := newBroker(t)
	b.CreateContainer("alice", "/home/cc", "disk1")
	b.Ingest("alice", IngestOpts{Path: "/home/m", Data: []byte("old"), Container: "/home/cc"})
	if err := b.Reingest("alice", "/home/m", []byte("new contents")); err != nil {
		t.Fatal(err)
	}
	data, err := b.Get("alice", "/home/m")
	if err != nil || string(data) != "new contents" {
		t.Errorf("after member reingest = %q, %v", data, err)
	}
}

func TestContainerMemberNotReplicable(t *testing.T) {
	b := newBroker(t)
	b.CreateContainer("alice", "/home/cc", "disk1")
	b.Ingest("alice", IngestOpts{Path: "/home/m", Data: []byte("x"), Container: "/home/cc"})
	if _, err := b.Replicate("alice", "/home/m", "disk2"); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("replicating container member: %v", err)
	}
}

func TestIngestIntoNonContainer(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/plain", Data: []byte("x"), Resource: "disk1"})
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/m", Data: nil, Container: "/home/plain"}); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("non-container target: %v", err)
	}
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/m", Data: nil, Container: "/home/ghost"}); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing container: %v", err)
	}
}

func TestConcurrentContainerAppends(t *testing.T) {
	b := newBroker(t)
	b.CreateContainer("alice", "/home/cc", "mirror")
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 10; i++ {
				_, err = b.Ingest("alice", IngestOpts{
					Path:      fmt.Sprintf("/home/c-%d-%d", w, i),
					Data:      []byte(fmt.Sprintf("payload %d %d", w, i)),
					Container: "/home/cc",
				})
				if err != nil {
					break
				}
			}
			done <- err
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Every member reads back correctly from both segments.
	for w := 0; w < 8; w++ {
		for i := 0; i < 10; i++ {
			p := fmt.Sprintf("/home/c-%d-%d", w, i)
			got, err := b.Get("alice", p)
			if err != nil || string(got) != fmt.Sprintf("payload %d %d", w, i) {
				t.Fatalf("%s = %q, %v", p, got, err)
			}
		}
	}
}
