package core

import (
	"errors"
	"strings"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/storage"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/types"
)

// withDB adds a database resource to the rig and returns its engine.
func withDB(t *testing.T, b *Broker) *dbfs.FS {
	t.Helper()
	db := dbfs.New()
	if err := b.AddPhysicalResource("admin", "dbrsrc", types.ClassDatabase, "dbfs", db); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRegisterFile(t *testing.T) {
	b := newBroker(t)
	d, _ := b.Driver("disk1")
	if err := storage.WriteAll(d, "/outside/existing.dat", []byte("pre-existing bytes")); err != nil {
		t.Fatal(err)
	}
	o, err := b.RegisterFile("alice", "/home/reg", "disk1", "/outside/existing.dat", nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != types.KindRegisteredFile || !o.Replicas[0].Registered {
		t.Errorf("registered object = %+v", o)
	}
	data, err := b.Get("alice", "/home/reg")
	if err != nil || string(data) != "pre-existing bytes" {
		t.Errorf("Get registered = %q, %v", data, err)
	}
	// The bytes may drift without SRB knowing; reads see current bytes.
	storage.WriteAll(d, "/outside/existing.dat", []byte("drifted"))
	data, _ = b.Get("alice", "/home/reg")
	if string(data) != "drifted" {
		t.Errorf("drifted read = %q", data)
	}
	// Registering a missing physical path fails.
	if _, err := b.RegisterFile("alice", "/home/x", "disk1", "/nope", nil); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing phys: %v", err)
	}
	// Deletion removes the physical file too (paper allows it).
	if err := b.Delete("alice", "/home/reg"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stat("/outside/existing.dat"); !errors.Is(err, types.ErrNotFound) {
		t.Error("registered file should be physically deleted")
	}
}

func TestShadowDirectory(t *testing.T) {
	b := newBroker(t)
	d, _ := b.Driver("disk1")
	storage.WriteAll(d, "/cone/a.txt", []byte("A"))
	storage.WriteAll(d, "/cone/sub/b.txt", []byte("B"))
	o, err := b.RegisterDirectory("alice", "/home/shadow", "disk1", "/cone")
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != types.KindShadowDir {
		t.Fatalf("kind = %v", o.Kind)
	}
	infos, err := b.ShadowList("alice", "/home/shadow", ".")
	if err != nil || len(infos) != 2 {
		t.Fatalf("ShadowList = %+v, %v", infos, err)
	}
	infos, err = b.ShadowList("alice", "/home/shadow", "sub")
	if err != nil || len(infos) != 1 {
		t.Errorf("sub list = %+v, %v", infos, err)
	}
	data, err := b.ShadowOpen("alice", "/home/shadow", "sub/b.txt")
	if err != nil || string(data) != "B" {
		t.Errorf("ShadowOpen = %q, %v", data, err)
	}
	// Escapes are confined.
	if _, err := b.ShadowOpen("alice", "/home/shadow", "../../etc/passwd"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("escape: %v", err)
	}
	// Get renders the cone listing.
	listing, err := b.Get("alice", "/home/shadow")
	if err != nil || !strings.Contains(string(listing), "/cone/a.txt") {
		t.Errorf("Get shadow = %q, %v", listing, err)
	}
	// Deletion unlinks without touching the cone.
	if err := b.Delete("alice", "/home/shadow"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stat("/cone/a.txt"); err != nil {
		t.Error("cone must survive shadow deletion")
	}
}

func TestRegisterSQLAndExecute(t *testing.T) {
	b := newBroker(t)
	db := withDB(t, b)
	db.Database().Exec("CREATE TABLE stars (name, mag)")
	db.Database().Exec("INSERT INTO stars VALUES ('vega', 0.03), ('sirius', -1.46)")

	o, err := b.RegisterSQL("alice", "/home/q1", types.SQLSpec{
		Resource: "dbrsrc",
		Query:    "SELECT name, mag FROM stars ORDER BY mag",
		Template: "HTMLREL",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != types.KindSQL {
		t.Fatalf("kind = %v", o.Kind)
	}
	out, err := b.Get("alice", "/home/q1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "<td>sirius</td>") || !strings.Contains(string(out), "<th>name</th>") {
		t.Errorf("HTMLREL output:\n%s", out)
	}
	// The query runs at retrieval: new rows appear.
	db.Database().Exec("INSERT INTO stars VALUES ('deneb', 1.25)")
	out, _ = b.Get("alice", "/home/q1")
	if !strings.Contains(string(out), "deneb") {
		t.Error("retrieval-time execution should see new rows")
	}
	// Non-SELECT registrations are rejected.
	if _, err := b.RegisterSQL("alice", "/home/q2", types.SQLSpec{
		Resource: "dbrsrc", Query: "DELETE FROM stars",
	}); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("non-select: %v", err)
	}
	// Deletion removes the query but not the table.
	if err := b.Delete("alice", "/home/q1"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Database().Exec("SELECT COUNT(*) FROM stars")
	if err != nil || res.Rows[0][0].Float() != 3 {
		t.Error("underlying table must survive query deletion")
	}
}

func TestPartialSQLCompletedAtRetrieval(t *testing.T) {
	b := newBroker(t)
	db := withDB(t, b)
	db.Database().Exec("CREATE TABLE stars (name, mag)")
	db.Database().Exec("INSERT INTO stars VALUES ('vega', 0.03), ('sirius', -1.46)")
	b.RegisterSQL("alice", "/home/qp", types.SQLSpec{
		Resource: "dbrsrc",
		Query:    "SELECT name FROM stars",
		Partial:  true,
		Template: "XMLREL",
	})
	out, err := b.ExecuteSQL("alice", "/home/qp", "WHERE mag < 0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "sirius") || strings.Contains(string(out), "vega") {
		t.Errorf("partial query output:\n%s", out)
	}
}

func TestSQLWithCustomStyleSheet(t *testing.T) {
	b := newBroker(t)
	db := withDB(t, b)
	db.Database().Exec("CREATE TABLE t (a, b)")
	db.Database().Exec("INSERT INTO t VALUES ('x', 'y')")
	// The style sheet is itself a T-language file stored in SRB.
	sheet := "head: BEGIN\nrow: [$1|$2]\ntail: END\n"
	b.Ingest("alice", IngestOpts{Path: "/home/sheet.t", Data: []byte(sheet), Resource: "disk1"})
	b.RegisterSQL("alice", "/home/q", types.SQLSpec{
		Resource: "dbrsrc", Query: "SELECT a, b FROM t", Template: "/home/sheet.t",
	})
	out, err := b.Get("alice", "/home/q")
	if err != nil {
		t.Fatal(err)
	}
	want := "BEGIN\n[x|y]\nEND\n"
	if string(out) != want {
		t.Errorf("styled output = %q, want %q", out, want)
	}
}

func TestRegisterURL(t *testing.T) {
	b := newBroker(t)
	b.Fetcher().RegisterMemBytes("mem://site/page", []byte("remote content"))
	o, err := b.RegisterURL("alice", "/home/u", "mem://site/page")
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != types.KindURL {
		t.Fatalf("kind = %v", o.Kind)
	}
	data, err := b.Get("alice", "/home/u")
	if err != nil || string(data) != "remote content" {
		t.Errorf("url get = %q, %v", data, err)
	}
	// Deletion removes the pointer, not the content.
	if err := b.Delete("alice", "/home/u"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Fetcher().Fetch("mem://site/page"); err != nil {
		t.Error("URL contents must survive deletion")
	}
	if _, err := b.RegisterURL("alice", "/home/u2", ""); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("empty url: %v", err)
	}
}

func TestMethodObjects(t *testing.T) {
	b := newBroker(t)
	// Admin installs the srbps proxy command (the paper's example).
	err := b.RegisterCommand("admin", "srbps", func(args []string) ([]byte, error) {
		return []byte("PID CMD\n1 srbd " + strings.Join(args, " ")), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Non-admin cannot install commands.
	if err := b.RegisterCommand("alice", "evil", nil); !errors.Is(err, types.ErrPermission) {
		t.Errorf("non-admin install: %v", err)
	}
	o, err := b.RegisterMethod("alice", "/home/ps", types.MethodSpec{
		Proxy: true, Name: "srbps", Args: []string{"-a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != types.KindMethod {
		t.Fatalf("kind = %v", o.Kind)
	}
	out, err := b.InvokeMethod("alice", "/home/ps", []string{"-x"})
	if err != nil || !strings.Contains(string(out), "srbd -a -x") {
		t.Errorf("invoke = %q, %v", out, err)
	}
	// Get also runs the method (access = execution).
	out, err = b.Get("alice", "/home/ps")
	if err != nil || !strings.Contains(string(out), "PID CMD") {
		t.Errorf("get method = %q, %v", out, err)
	}
	// Unregistered command name refuses registration.
	if _, err := b.RegisterMethod("alice", "/home/m2", types.MethodSpec{Name: "ghost"}); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("unknown command: %v", err)
	}
}

func TestRegisterReplicaAlternates(t *testing.T) {
	b := newBroker(t)
	b.Fetcher().RegisterMemBytes("mem://primary", []byte("primary"))
	b.Fetcher().RegisterMemBytes("mem://backup", []byte("backup"))
	b.RegisterURL("alice", "/home/u", "mem://primary")
	if err := b.RegisterReplicaSpec("alice", "/home/u", types.AltSpec{
		Kind: types.KindURL, URL: "mem://backup",
	}); err != nil {
		t.Fatal(err)
	}
	// Primary healthy: primary served.
	data, _ := b.Get("alice", "/home/u")
	if string(data) != "primary" {
		t.Errorf("primary read = %q", data)
	}
	// Primary gone: the registered replicate answers.
	b.Fetcher().RegisterMem("mem://primary", nil)
	data, err := b.Get("alice", "/home/u")
	if err != nil || string(data) != "backup" {
		t.Errorf("alternate read = %q, %v", data, err)
	}
	// Alternates only attach to registered kinds.
	b.Ingest("alice", IngestOpts{Path: "/home/plain", Data: []byte("x"), Resource: "disk1"})
	if err := b.RegisterReplicaSpec("alice", "/home/plain", types.AltSpec{Kind: types.KindURL, URL: "mem://backup"}); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("alt on plain file: %v", err)
	}
}

func TestIngestReplicaSyntacticallyDifferent(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/img", Data: []byte("TIFF bytes"), Resource: "disk1"})
	rep, err := b.IngestReplica("alice", "/home/img", "disk2", []byte("GIF bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Number != 1 {
		t.Errorf("replica = %+v", rep)
	}
	o, _ := b.Cat.GetObject("/home/img")
	if len(o.Replicas) != 2 {
		t.Fatalf("replicas = %+v", o.Replicas)
	}
	// SRB does not check equality; both copies are clean and readable.
	if o.Replicas[0].Checksum == o.Replicas[1].Checksum {
		t.Error("checksums should differ for different bytes")
	}
}

func TestRegisteredDirDenyIngest(t *testing.T) {
	b := newBroker(t)
	d, _ := b.Driver("disk1")
	storage.WriteAll(d, "/cone/a", []byte("A"))
	b.RegisterDirectory("alice", "/home/sh", "disk1", "/cone")
	// Shadow dirs expose read-only views: Reingest is unsupported.
	if err := b.Reingest("alice", "/home/sh", []byte("x")); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("reingest shadow: %v", err)
	}
}

func TestResourceACLBlocksIngest(t *testing.T) {
	b := newBroker(t)
	b.Cat.SetResourceACL("disk1", "bob", acl.Read)
	b.Cat.SetACL("/home", "bob", acl.Write)
	if _, err := b.Ingest("bob", IngestOpts{Path: "/home/bobf", Data: nil, Resource: "disk1"}); !errors.Is(err, types.ErrPermission) {
		t.Errorf("resource ACL: %v", err)
	}
	if _, err := b.Ingest("bob", IngestOpts{Path: "/home/bobf", Data: nil, Resource: "disk2"}); err != nil {
		t.Errorf("open resource: %v", err)
	}
}
