package core

import (
	"errors"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/mcat"
	"gosrb/internal/metadata"
	"gosrb/internal/types"
	"gosrb/internal/workload"
)

func TestAddMetaRequiresOwnership(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("x"), Resource: "disk1"})
	b.Chmod("alice", "/home/f", "bob", acl.Write)
	// Write is not enough: the paper demands ownership for user/type meta.
	err := b.AddMeta("bob", "/home/f", types.MetaUser, types.AVU{Name: "k", Value: "v"})
	if !errors.Is(err, types.ErrPermission) {
		t.Errorf("write-level meta add: %v", err)
	}
	if err := b.AddMeta("alice", "/home/f", types.MetaUser, types.AVU{Name: "k", Value: "v"}); err != nil {
		t.Fatal(err)
	}
	// Only user/type classes are writable through AddMeta.
	if err := b.AddMeta("alice", "/home/f", types.MetaAnnotation, types.AVU{Name: "x"}); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("annotation via AddMeta: %v", err)
	}
}

func TestAnnotateNeedsOnlyRead(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("x"), Resource: "disk1"})
	b.Chmod("alice", "/home/f", "bob", acl.Read)
	if err := b.Annotate("bob", "/home/f", types.Annotation{Text: "great data!", Kind: "rating"}); err != nil {
		t.Fatalf("read-level annotate: %v", err)
	}
	anns, err := b.Annotations("alice", "/home/f")
	if err != nil || len(anns) != 1 || anns[0].Author != "bob" {
		t.Errorf("annotations = %+v, %v", anns, err)
	}
	// No grant at all: denied.
	b.Cat.AddUser(types.User{Name: "carol", Domain: "x"})
	if err := b.Annotate("carol", "/home/f", types.Annotation{Text: "hi"}); !errors.Is(err, types.ErrPermission) {
		t.Errorf("ungranted annotate: %v", err)
	}
}

func TestSystemMetaView(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("12345"), Resource: "mirror"})
	avus, err := b.GetMeta("alice", "/home/f", types.MetaSystem)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]string{}
	for _, a := range avus {
		m[a.Name] = a.Value
	}
	if m["sys:size"] != "5" || m["sys:owner"] != "alice" || m["sys:replicas"] != "2" {
		t.Errorf("system meta = %v", m)
	}
	// Collections have system metadata too.
	avus, err = b.GetMeta("alice", "/home", types.MetaSystem)
	if err != nil || len(avus) == 0 {
		t.Errorf("collection system meta = %+v, %v", avus, err)
	}
}

func TestFileBasedMetadata(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("data"), Resource: "disk1"})
	triplets := metadata.FormatTriplets([]types.AVU{
		{Name: "instrument", Value: "2MASS camera"},
		{Name: "exposure", Value: "7.8", Units: "seconds"},
	})
	b.Ingest("alice", IngestOpts{Path: "/home/f.meta", Data: triplets, Resource: "disk1"})
	if err := b.AttachFileMeta("alice", "/home/f", "/home/f.meta"); err != nil {
		t.Fatal(err)
	}
	avus, err := b.GetMeta("alice", "/home/f", types.MetaFile)
	if err != nil || len(avus) != 2 {
		t.Fatalf("file meta = %+v, %v", avus, err)
	}
	if avus[1].Units != "seconds" {
		t.Errorf("units = %+v", avus[1])
	}
	// File-based metadata is view-only: it must not answer queries.
	hits, _ := b.Query("alice", mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "instrument", Op: "like", Value: "%2mass%"}}})
	if len(hits) != 0 {
		t.Errorf("file meta must not be queryable: %v", hits)
	}
}

func TestExtractMetaFITS(t *testing.T) {
	b := newBroker(t)
	g := workload.NewGen(1)
	spec := g.SkySurvey("/home", 1, 1)[0]
	hdr := g.FITSHeader(spec)
	b.Mkdir("alice", spec.Collection)
	b.Ingest("alice", IngestOpts{Path: spec.Path(), Data: hdr, Resource: "disk1", DataType: "fits image"})
	n, err := b.ExtractMeta("alice", spec.Path(), "fits-cards", "")
	if err != nil || n == 0 {
		t.Fatalf("ExtractMeta = %d, %v", n, err)
	}
	avus, _ := b.GetMeta("alice", spec.Path(), types.MetaType)
	found := false
	for _, a := range avus {
		if a.Name == "SURVEY" {
			found = true
		}
	}
	if !found {
		t.Errorf("extracted meta = %+v", avus)
	}
	// Extracted metadata is queryable.
	hits, _ := b.Query("alice", mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "SIMPLE", Op: "=", Value: "T"}}})
	if len(hits) != 1 {
		t.Errorf("query extracted = %v", hits)
	}
}

func TestExtractFromSecondObject(t *testing.T) {
	b := newBroker(t)
	// DICOM-style: the image and a companion header file.
	b.Ingest("alice", IngestOpts{Path: "/home/scan.img", Data: []byte("binary image"), Resource: "disk1", DataType: "dicom image"})
	b.Ingest("alice", IngestOpts{Path: "/home/scan.hdr", Data: []byte("(0010,0010) DOE^JANE\n(0008,0060) CT\n"), Resource: "disk1"})
	n, err := b.ExtractMeta("alice", "/home/scan.img", "dicom-companion", "/home/scan.hdr")
	if err != nil || n != 2 {
		t.Fatalf("second-object extract = %d, %v", n, err)
	}
	// Omitting the companion fails for a SecondObject method.
	if _, err := b.ExtractMeta("alice", "/home/scan.img", "dicom-companion", ""); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("missing companion: %v", err)
	}
}

func TestQueryFiltersByPermission(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/mine", Data: nil, Resource: "disk1",
		Meta: []types.AVU{{Name: "tag", Value: "x"}}})
	b.Ingest("alice", IngestOpts{Path: "/home/shared", Data: nil, Resource: "disk1",
		Meta: []types.AVU{{Name: "tag", Value: "x"}}})
	b.Chmod("alice", "/home/shared", "bob", acl.Read)
	hits, err := b.Query("bob", mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "tag", Op: "=", Value: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Path != "/home/shared" {
		t.Errorf("filtered hits = %+v", hits)
	}
	// Admin sees both.
	hits, _ = b.Query("admin", mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "tag", Op: "=", Value: "x"}}})
	if len(hits) != 2 {
		t.Errorf("admin hits = %+v", hits)
	}
}

func TestCopyMetaBetweenObjects(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/a", Data: nil, Resource: "disk1",
		Meta: []types.AVU{{Name: "k", Value: "v"}}})
	b.Ingest("alice", IngestOpts{Path: "/home/b", Data: nil, Resource: "disk1"})
	if err := b.CopyMeta("alice", "/home/a", "/home/b"); err != nil {
		t.Fatal(err)
	}
	avus, _ := b.GetMeta("alice", "/home/b", types.MetaUser)
	if len(avus) != 1 {
		t.Errorf("copied meta = %+v", avus)
	}
}

func TestUpdateAndDeleteMeta(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: nil, Resource: "disk1",
		Meta: []types.AVU{{Name: "color", Value: "red"}}})
	n, err := b.UpdateMeta("alice", "/home/f", types.MetaUser, "color", "", types.AVU{Name: "color", Value: "blue"})
	if err != nil || n != 1 {
		t.Fatalf("UpdateMeta = %d, %v", n, err)
	}
	if _, err := b.UpdateMeta("bob", "/home/f", types.MetaUser, "color", "", types.AVU{}); !errors.Is(err, types.ErrPermission) {
		t.Errorf("foreign update: %v", err)
	}
	n, err = b.DeleteMeta("alice", "/home/f", types.MetaUser, "color", "")
	if err != nil || n != 1 {
		t.Fatalf("DeleteMeta = %d, %v", n, err)
	}
}

func TestStructuralNeedsCurate(t *testing.T) {
	b := newBroker(t)
	b.Mkdir("alice", "/home/coll")
	// alice created it, so she curates it.
	if err := b.SetStructural("alice", "/home/coll", types.StructuralAttr{Name: "species", Mandatory: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetStructural("bob", "/home/coll", types.StructuralAttr{Name: "x"}); !errors.Is(err, types.ErrPermission) {
		t.Errorf("foreign structural: %v", err)
	}
	attrs, err := b.Structural("alice", "/home/coll")
	if err != nil || len(attrs) != 1 {
		t.Errorf("Structural = %+v, %v", attrs, err)
	}
}

func TestQueryAttrNamesDropdown(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: nil, Resource: "disk1",
		Meta: []types.AVU{{Name: "survey", Value: "2mass"}}})
	names := b.QueryAttrNames("alice", "/home")
	if len(names) != 1 || names[0] != "survey" {
		t.Errorf("attr names = %v", names)
	}
}
