// Package core implements the SRB broker: the component that realises
// the paper's storage-resource-brokering semantics over the MCAT
// catalog and the storage drivers. Every operation the Scommands, the
// federated server and the MySRB web interface offer is a method here,
// with access control, lock discipline and auditing enforced uniformly.
//
// The broker is fully usable in-process (the examples and tests drive
// it directly); internal/server exposes the same surface over the wire.
package core

import (
	"sync"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/mcat"
	"gosrb/internal/metadata"
	"gosrb/internal/replica"
	"gosrb/internal/sqlengine"
	"gosrb/internal/storage"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/urlfs"
	"gosrb/internal/types"
)

// CommandFunc is a proxy command executed by a registered method
// object. Commands are installed by an administrator, mirroring the
// paper's "users have to ask a SRB administrator to place an object in
// a, possibly remote, SRB bin directory".
type CommandFunc func(args []string) ([]byte, error)

// Broker brokers access to the data grid.
type Broker struct {
	// Cat is the metadata catalog, exposed for read-side integrations
	// (MySRB renders listings straight from it).
	Cat *mcat.Catalog

	rm      *replica.Manager
	extract *metadata.Registry
	fetcher *urlfs.Fetcher

	mu       sync.RWMutex
	drivers  map[string]storage.Driver
	dbs      map[string]*sqlengine.DB
	commands map[string]CommandFunc

	// containerMu serialises appends per container path.
	containerMu sync.Mutex
	contLocks   map[string]*sync.Mutex

	serverName string
	now        func() time.Time
}

// New returns a broker over the catalog. serverName identifies this
// broker's server in the federation (resources it owns carry it).
func New(cat *mcat.Catalog, serverName string) *Broker {
	b := &Broker{
		Cat:        cat,
		extract:    metadata.NewRegistry(),
		fetcher:    urlfs.NewFetcher(),
		drivers:    make(map[string]storage.Driver),
		dbs:        make(map[string]*sqlengine.DB),
		commands:   make(map[string]CommandFunc),
		contLocks:  make(map[string]*sync.Mutex),
		serverName: serverName,
		now:        time.Now,
	}
	b.rm = replica.NewManager(cat, b)
	return b
}

// SetClock overrides the time source (tests).
func (b *Broker) SetClock(now func() time.Time) { b.now = now }

// ServerName returns the federation name of this broker's server.
func (b *Broker) ServerName() string { return b.serverName }

// Replicas exposes the replica manager (benchmarks tune its policy).
func (b *Broker) Replicas() *replica.Manager { return b.rm }

// Extractors exposes the metadata extraction registry.
func (b *Broker) Extractors() *metadata.Registry { return b.extract }

// Fetcher exposes the URL fetcher (examples register mem:// content).
func (b *Broker) Fetcher() *urlfs.Fetcher { return b.fetcher }

// Driver implements replica.DriverMap.
func (b *Broker) Driver(resource string) (storage.Driver, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	d, ok := b.drivers[resource]
	if !ok {
		return nil, types.E("driver", resource, types.ErrNotFound)
	}
	return d, nil
}

// Database returns the SQL engine behind a database resource.
func (b *Broker) Database(resource string) (*sqlengine.DB, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	db, ok := b.dbs[resource]
	if !ok {
		return nil, types.E("database", resource, types.ErrNotFound)
	}
	return db, nil
}

// AddPhysicalResource registers a physical resource and its driver.
// Only administrators may register resources.
func (b *Broker) AddPhysicalResource(user, name string, class types.ResourceClass, driverName string, d storage.Driver) error {
	if !b.Cat.IsAdmin(user) {
		return types.E("addresource", name, types.ErrPermission)
	}
	err := b.Cat.AddResource(types.Resource{
		Name: name, Kind: types.ResourcePhysical, Class: class,
		Driver: driverName, Server: b.serverName,
	})
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.drivers[name] = d
	if db, ok := d.(*dbfs.FS); ok {
		b.dbs[name] = db.Database()
	}
	b.mu.Unlock()
	b.audit(user, "addresource", name, true, driverName)
	return nil
}

// AddLogicalResource groups physical resources; storing into it
// replicates synchronously into every member (paper §5).
func (b *Broker) AddLogicalResource(user, name string, members []string) error {
	if !b.Cat.IsAdmin(user) {
		return types.E("addresource", name, types.ErrPermission)
	}
	err := b.Cat.AddResource(types.Resource{
		Name: name, Kind: types.ResourceLogical, Server: b.serverName, Members: members,
	})
	if err != nil {
		return err
	}
	b.audit(user, "addresource", name, true, "logical")
	return nil
}

// Remount installs the driver for a resource already present in the
// catalog — the restart path, when srbd reloads a catalog snapshot and
// re-attaches its local storage.
func (b *Broker) Remount(name string, d storage.Driver) error {
	if _, err := b.Cat.GetResource(name); err != nil {
		return err
	}
	b.mu.Lock()
	b.drivers[name] = d
	if db, ok := d.(*dbfs.FS); ok {
		b.dbs[name] = db.Database()
	}
	b.mu.Unlock()
	return nil
}

// RegisterCommand installs a proxy command under name. Administrators
// only, per the paper's security precaution.
func (b *Broker) RegisterCommand(user, name string, fn CommandFunc) error {
	if !b.Cat.IsAdmin(user) {
		return types.E("registercommand", name, types.ErrPermission)
	}
	b.mu.Lock()
	b.commands[name] = fn
	b.mu.Unlock()
	b.audit(user, "registercommand", name, true, "")
	return nil
}

// command resolves a proxy command.
func (b *Broker) command(name string) (CommandFunc, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	fn, ok := b.commands[name]
	return fn, ok
}

// contLock returns the append mutex for one container path.
func (b *Broker) contLock(path string) *sync.Mutex {
	b.containerMu.Lock()
	defer b.containerMu.Unlock()
	m, ok := b.contLocks[path]
	if !ok {
		m = &sync.Mutex{}
		b.contLocks[path] = m
	}
	return m
}

// audit records one operation outcome.
func (b *Broker) audit(user, op, target string, ok bool, detail string) {
	b.Cat.Audit.Op(user, op, target, ok, detail)
}

// ---- permission and lock helpers ----

// need verifies the user's effective level on path.
func (b *Broker) need(user, path string, level acl.Level, op string) error {
	if b.Cat.EffectiveLevel(path, user) >= level {
		return nil
	}
	b.audit(user, op, path, false, "permission denied (need "+level.String()+")")
	return types.E(op, path, types.ErrPermission)
}

// writeBlocked reports whether locks or a checkout block writes by user.
func writeBlocked(o *types.DataObject, user string, now time.Time) bool {
	if o.Lock.Active(now) && o.Lock.Holder != user {
		return true
	}
	if o.CheckedOutBy != "" && o.CheckedOutBy != user {
		return true
	}
	return false
}

// readBlocked reports whether an exclusive lock blocks reads by user.
func readBlocked(o *types.DataObject, user string, now time.Time) bool {
	return o.Lock.Active(now) && o.Lock.Kind == types.LockExclusive && o.Lock.Holder != user
}

// checkWrite combines the ACL and lock checks for mutating an object.
func (b *Broker) checkWrite(user, path, op string) (types.DataObject, error) {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return o, types.E(op, path, types.ErrNotFound)
	}
	if err := b.need(user, path, acl.Write, op); err != nil {
		return o, err
	}
	if writeBlocked(&o, user, b.now()) {
		b.audit(user, op, path, false, "locked")
		return o, types.E(op, path, types.ErrLocked)
	}
	return o, nil
}

// checkRead combines the ACL and lock checks for reading an object.
// Links check against the resolved target per the paper ("The access
// control of the original object is inherited by the linked object").
func (b *Broker) checkRead(user, path, op string) (types.DataObject, error) {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return o, types.E(op, path, types.ErrNotFound)
	}
	if o.Kind == types.KindLink {
		target, err := b.Cat.GetObject(o.LinkTarget)
		if err != nil {
			return o, types.E(op, o.LinkTarget, types.ErrNotFound)
		}
		if err := b.need(user, target.Path(), acl.Read, op); err != nil {
			return o, err
		}
		if readBlocked(&target, user, b.now()) {
			return o, types.E(op, path, types.ErrLocked)
		}
		return o, nil
	}
	if err := b.need(user, path, acl.Read, op); err != nil {
		return o, err
	}
	if readBlocked(&o, user, b.now()) {
		b.audit(user, op, path, false, "locked")
		return o, types.E(op, path, types.ErrLocked)
	}
	return o, nil
}
