// Package core implements the SRB broker: the component that realises
// the paper's storage-resource-brokering semantics over the MCAT
// catalog and the storage drivers. Every operation the Scommands, the
// federated server and the MySRB web interface offer is a method here,
// with access control, lock discipline and auditing enforced uniformly.
//
// The broker is fully usable in-process (the examples and tests drive
// it directly); internal/server exposes the same surface over the wire.
package core

import (
	"sync"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/metadata"
	"gosrb/internal/obs"
	"gosrb/internal/repair"
	"gosrb/internal/replica"
	"gosrb/internal/resilience"
	"gosrb/internal/sqlengine"
	"gosrb/internal/storage"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/urlfs"
	"gosrb/internal/types"
)

// CommandFunc is a proxy command executed by a registered method
// object. Commands are installed by an administrator, mirroring the
// paper's "users have to ask a SRB administrator to place an object in
// a, possibly remote, SRB bin directory".
type CommandFunc func(args []string) ([]byte, error)

// Broker brokers access to the data grid.
type Broker struct {
	// Cat is the metadata catalog, exposed for read-side integrations
	// (MySRB renders listings straight from it). It is the abstract
	// catalog contract: a monolithic *mcat.Catalog or the shard router.
	Cat shard.Catalog

	rm      *replica.Manager
	extract *metadata.Registry
	fetcher *urlfs.Fetcher

	mu       sync.RWMutex
	drivers  map[string]storage.Driver
	dbs      map[string]*sqlengine.DB
	commands map[string]CommandFunc

	// containerMu serialises appends per container path.
	containerMu sync.Mutex
	contLocks   map[string]*sync.Mutex

	serverName string
	now        func() time.Time

	// metrics is the broker's telemetry registry; ops caches the hot
	// per-operation handles so recording stays a pointer deref.
	metrics *obs.Registry
	ops     brokerOps

	// breakers holds the per-target circuit breakers (one per federated
	// peer, one per storage resource) shared by the replica manager and
	// the server's federation paths.
	breakers *resilience.Set

	// repairEng, when attached, is the background maintenance engine
	// (async-replication queue drain + anti-entropy scrubbing). The
	// ingest path kicks it after enqueueing deferred fan-out; the
	// server's readiness, admin /repair and status surfaces read it.
	repairEng *repair.Engine

	// sloEval, when attached, is the SLO evaluator whose standings and
	// alert log the server's /alerts, /healthz and OpAlerts surfaces
	// read. nil when the daemon declared no rules.
	sloEval *obs.SLOEvaluator

	// incidents, when attached, is the flight recorder whose bundle
	// index the /incidents and OpIncidents surfaces read. nil when the
	// daemon runs without a telemetry dir.
	incidents *obs.IncidentRecorder
}

// brokerOps caches the per-operation metric handles. All fields may be
// nil (instrumentation disabled), which obs treats as no-ops.
type brokerOps struct {
	get, ingest, reingest, replicate, ingestReplica *obs.Op
	delete_, list, query                            *obs.Op
	mkContainer, syncContainer                      *obs.Op

	// fanoutOK/fanoutFail mirror the replica.Manager counters for the
	// ingest member loop, cached so the hot path skips the registry map.
	fanoutOK, fanoutFail *obs.Counter

	// heat is the hot-key table the dispatch path feeds (one record per
	// operation, keyed by the depth-2 routing prefix).
	heat *obs.HeatTable
}

func newBrokerOps(r *obs.Registry) brokerOps {
	return brokerOps{
		fanoutOK:      r.Counter("replica.fanout.ok"),
		fanoutFail:    r.Counter("replica.fanout.fail"),
		heat:          r.HeatKeys(),
		get:           r.Op("broker.get"),
		ingest:        r.Op("broker.ingest"),
		reingest:      r.Op("broker.reingest"),
		replicate:     r.Op("broker.replicate"),
		ingestReplica: r.Op("broker.ingestreplica"),
		delete_:       r.Op("broker.delete"),
		list:          r.Op("broker.list"),
		query:         r.Op("broker.query"),
		mkContainer:   r.Op("broker.mkcontainer"),
		syncContainer: r.Op("broker.synccontainer"),
	}
}

// New returns a broker over the catalog — a monolithic *mcat.Catalog
// or a sharded router; the broker cannot tell the difference.
// serverName identifies this broker's server in the federation
// (resources it owns carry it).
func New(cat shard.Catalog, serverName string) *Broker {
	b := &Broker{
		Cat:        cat,
		extract:    metadata.NewRegistry(),
		fetcher:    urlfs.NewFetcher(),
		drivers:    make(map[string]storage.Driver),
		dbs:        make(map[string]*sqlengine.DB),
		commands:   make(map[string]CommandFunc),
		contLocks:  make(map[string]*sync.Mutex),
		serverName: serverName,
		now:        time.Now,
		metrics:    obs.NewRegistry(),
	}
	b.ops = newBrokerOps(b.metrics)
	b.breakers = resilience.NewSet(resilience.DefaultBreakerConfig, b.metrics)
	b.rm = replica.NewManager(cat, b)
	b.rm.SetMetrics(b.metrics)
	b.rm.SetBreakers(b.breakers)
	return b
}

// SetRepair attaches the background maintenance engine. Call once at
// daemon startup, after SetMetrics, before serving traffic.
func (b *Broker) SetRepair(e *repair.Engine) {
	b.mu.Lock()
	b.repairEng = e
	b.mu.Unlock()
}

// Repair returns the attached maintenance engine (nil when the daemon
// runs without one, e.g. bare in-process brokers in tests).
func (b *Broker) Repair() *repair.Engine {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.repairEng
}

// SetSLO attaches the SLO evaluator. Call once at daemon startup.
func (b *Broker) SetSLO(e *obs.SLOEvaluator) {
	b.mu.Lock()
	b.sloEval = e
	b.mu.Unlock()
}

// SLO returns the attached evaluator (nil when no rules were declared).
func (b *Broker) SLO() *obs.SLOEvaluator {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.sloEval
}

// SetIncidents attaches the incident flight recorder. Call once at
// daemon startup.
func (b *Broker) SetIncidents(r *obs.IncidentRecorder) {
	b.mu.Lock()
	b.incidents = r
	b.mu.Unlock()
}

// Incidents returns the attached flight recorder (nil when the daemon
// runs without a telemetry dir).
func (b *Broker) Incidents() *obs.IncidentRecorder {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.incidents
}

// repairKick wakes the engine's dispatcher after an enqueue.
func (b *Broker) repairKick() {
	if e := b.Repair(); e != nil {
		e.Kick()
	}
}

// Breakers returns the broker's circuit-breaker set. The server
// consults it before federation hops; the replica manager consults it
// when choosing replicas, so reads fail over past tripped resources.
func (b *Broker) Breakers() *resilience.Set { return b.breakers }

// Metrics returns the broker's telemetry registry. srbd's admin
// endpoint, the OpStats wire op and the MySRB status page all render
// from its snapshot.
func (b *Broker) Metrics() *obs.Registry { return b.metrics }

// SetMetrics replaces the telemetry registry; nil disables broker
// instrumentation entirely (the overhead-benchmark baseline). Call it
// before mounting resources so drivers pick up the same registry.
func (b *Broker) SetMetrics(r *obs.Registry) {
	b.metrics = r
	b.ops = newBrokerOps(r)
	b.breakers = resilience.NewSet(resilience.DefaultBreakerConfig, r)
	b.rm.SetMetrics(r)
	b.rm.SetBreakers(b.breakers)
}

// SetHeatTracking switches hot-key/hot-object heat recording on or off
// while leaving the rest of the instrumentation in place — the isolated
// baseline the heat-overhead benchmark compares against.
func (b *Broker) SetHeatTracking(on bool) {
	if on {
		b.ops.heat = b.metrics.HeatKeys()
	} else {
		b.ops.heat = nil
	}
	b.rm.SetHeatTracking(on)
}

// ioMetricsFor names the per-driver byte counters for one resource.
func (b *Broker) ioMetricsFor(resource string) storage.IOMetrics {
	return storage.IOMetrics{
		BytesIn:  b.metrics.Counter("storage." + resource + ".bytes_in"),
		BytesOut: b.metrics.Counter("storage." + resource + ".bytes_out"),
		Reads:    b.metrics.Counter("storage." + resource + ".reads"),
		Writes:   b.metrics.Counter("storage." + resource + ".writes"),
		Errors:   b.metrics.Counter("storage." + resource + ".errors"),
	}
}

// SetClock overrides the time source (tests).
func (b *Broker) SetClock(now func() time.Time) { b.now = now }

// ServerName returns the federation name of this broker's server.
func (b *Broker) ServerName() string { return b.serverName }

// Replicas exposes the replica manager (benchmarks tune its policy).
func (b *Broker) Replicas() *replica.Manager { return b.rm }

// Extractors exposes the metadata extraction registry.
func (b *Broker) Extractors() *metadata.Registry { return b.extract }

// Fetcher exposes the URL fetcher (examples register mem:// content).
func (b *Broker) Fetcher() *urlfs.Fetcher { return b.fetcher }

// Driver implements replica.DriverMap.
func (b *Broker) Driver(resource string) (storage.Driver, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	d, ok := b.drivers[resource]
	if !ok {
		return nil, types.E("driver", resource, types.ErrNotFound)
	}
	return d, nil
}

// Database returns the SQL engine behind a database resource.
func (b *Broker) Database(resource string) (*sqlengine.DB, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	db, ok := b.dbs[resource]
	if !ok {
		return nil, types.E("database", resource, types.ErrNotFound)
	}
	return db, nil
}

// AddPhysicalResource registers a physical resource and its driver.
// Only administrators may register resources.
func (b *Broker) AddPhysicalResource(user, name string, class types.ResourceClass, driverName string, d storage.Driver) error {
	if !b.Cat.IsAdmin(user) {
		return types.E("addresource", name, types.ErrPermission)
	}
	err := b.Cat.AddResource(types.Resource{
		Name: name, Kind: types.ResourcePhysical, Class: class,
		Driver: driverName, Server: b.serverName,
	})
	if err != nil {
		return err
	}
	b.mount(name, d)
	b.audit(user, "addresource", name, true, driverName)
	return nil
}

// mount installs a driver under byte-level instrumentation — or bare
// when metrics are disabled, so the uninstrumented baseline pays no
// wrapper cost at all. The dbfs engine is captured from the raw driver
// before wrapping.
func (b *Broker) mount(name string, d storage.Driver) {
	b.mu.Lock()
	if b.metrics == nil {
		b.drivers[name] = d
	} else {
		b.drivers[name] = storage.Instrument(d, b.ioMetricsFor(name))
	}
	if db, ok := d.(*dbfs.FS); ok {
		b.dbs[name] = db.Database()
	}
	b.mu.Unlock()
}

// AddLogicalResource groups physical resources; storing into it
// replicates synchronously into every member (paper §5).
func (b *Broker) AddLogicalResource(user, name string, members []string) error {
	return b.AddLogicalResourcePolicy(user, name, members, "")
}

// AddLogicalResourcePolicy registers a logical resource with an
// explicit replication policy: "" or "sync" fans out on the write
// path, "async:k" lands k replicas synchronously and queues the rest
// for the repair engine.
func (b *Broker) AddLogicalResourcePolicy(user, name string, members []string, policy string) error {
	if !b.Cat.IsAdmin(user) {
		return types.E("addresource", name, types.ErrPermission)
	}
	err := b.Cat.AddResource(types.Resource{
		Name: name, Kind: types.ResourceLogical, Server: b.serverName, Members: members, ReplPolicy: policy,
	})
	if err != nil {
		return err
	}
	detail := "logical"
	if policy != "" {
		detail += " policy=" + policy
	}
	b.audit(user, "addresource", name, true, detail)
	return nil
}

// Remount installs the driver for a resource already present in the
// catalog — the restart path, when srbd reloads a catalog snapshot and
// re-attaches its local storage.
func (b *Broker) Remount(name string, d storage.Driver) error {
	if _, err := b.Cat.GetResource(name); err != nil {
		return err
	}
	b.mount(name, d)
	return nil
}

// RegisterCommand installs a proxy command under name. Administrators
// only, per the paper's security precaution.
func (b *Broker) RegisterCommand(user, name string, fn CommandFunc) error {
	if !b.Cat.IsAdmin(user) {
		return types.E("registercommand", name, types.ErrPermission)
	}
	b.mu.Lock()
	b.commands[name] = fn
	b.mu.Unlock()
	b.audit(user, "registercommand", name, true, "")
	return nil
}

// command resolves a proxy command.
func (b *Broker) command(name string) (CommandFunc, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	fn, ok := b.commands[name]
	return fn, ok
}

// contLock returns the append mutex for one container path.
func (b *Broker) contLock(path string) *sync.Mutex {
	b.containerMu.Lock()
	defer b.containerMu.Unlock()
	m, ok := b.contLocks[path]
	if !ok {
		m = &sync.Mutex{}
		b.contLocks[path] = m
	}
	return m
}

// audit records one operation outcome.
func (b *Broker) audit(user, op, target string, ok bool, detail string) {
	b.Cat.AuditLog().Op(user, op, target, ok, detail)
}

// auditTraced records one operation outcome stamped with the trace ID
// of the span the operation ran under (nil span = plain record), so
// the audit trail joins to the span-tree and usage-accounting streams.
func (b *Broker) auditTraced(sp *obs.Span, user, op, target string, ok bool, detail string) {
	b.Cat.AuditLog().OpTraced(sp.TraceID(), user, op, target, ok, detail)
}

// ---- permission and lock helpers ----

// need verifies the user's effective level on path.
func (b *Broker) need(user, path string, level acl.Level, op string) error {
	if b.Cat.EffectiveLevel(path, user) >= level {
		return nil
	}
	b.audit(user, op, path, false, "permission denied (need "+level.String()+")")
	return types.E(op, path, types.ErrPermission)
}

// writeBlocked reports whether locks or a checkout block writes by user.
func writeBlocked(o *types.DataObject, user string, now time.Time) bool {
	if o.Lock.Active(now) && o.Lock.Holder != user {
		return true
	}
	if o.CheckedOutBy != "" && o.CheckedOutBy != user {
		return true
	}
	return false
}

// readBlocked reports whether an exclusive lock blocks reads by user.
func readBlocked(o *types.DataObject, user string, now time.Time) bool {
	return o.Lock.Active(now) && o.Lock.Kind == types.LockExclusive && o.Lock.Holder != user
}

// checkWrite combines the ACL and lock checks for mutating an object.
func (b *Broker) checkWrite(user, path, op string) (types.DataObject, error) {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return o, types.E(op, path, types.ErrNotFound)
	}
	if err := b.need(user, path, acl.Write, op); err != nil {
		return o, err
	}
	if writeBlocked(&o, user, b.now()) {
		b.audit(user, op, path, false, "locked")
		return o, types.E(op, path, types.ErrLocked)
	}
	return o, nil
}

// checkRead combines the ACL and lock checks for reading an object.
// Links check against the resolved target per the paper ("The access
// control of the original object is inherited by the linked object").
func (b *Broker) checkRead(user, path, op string) (types.DataObject, error) {
	o, err := b.Cat.GetObject(path)
	if err != nil {
		return o, types.E(op, path, types.ErrNotFound)
	}
	if o.Kind == types.KindLink {
		target, err := b.Cat.GetObject(o.LinkTarget)
		if err != nil {
			return o, types.E(op, o.LinkTarget, types.ErrNotFound)
		}
		if err := b.need(user, target.Path(), acl.Read, op); err != nil {
			return o, err
		}
		if readBlocked(&target, user, b.now()) {
			return o, types.E(op, path, types.ErrLocked)
		}
		return o, nil
	}
	if err := b.need(user, path, acl.Read, op); err != nil {
		return o, err
	}
	if readBlocked(&o, user, b.now()) {
		b.audit(user, op, path, false, "locked")
		return o, types.E(op, path, types.ErrLocked)
	}
	return o, nil
}
