package core

import (
	"errors"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/audit"
	"gosrb/internal/mcat"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// newBroker builds a broker with two memfs resources, a logical
// resource over both, and two non-admin users.
func newBroker(t *testing.T) *Broker {
	t.Helper()
	cat := mcat.New("admin", "sdsc")
	b := New(cat, "srb1")
	for _, r := range []string{"disk1", "disk2"} {
		if err := b.AddPhysicalResource("admin", r, types.ClassFileSystem, "memfs", memfs.New()); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddLogicalResource("admin", "mirror", []string{"disk1", "disk2"}); err != nil {
		t.Fatal(err)
	}
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.AddUser(types.User{Name: "bob", Domain: "caltech"})
	if err := cat.MkColl("/home", "admin"); err != nil {
		t.Fatal(err)
	}
	// Write inherits down the hierarchy, so the grant is per-user: a
	// public write grant would let anyone read everyone's objects.
	cat.SetACL("/home", "alice", acl.Write)
	return b
}

func TestIngestAndGet(t *testing.T) {
	b := newBroker(t)
	o, err := b.Ingest("alice", IngestOpts{
		Path: "/home/f.txt", Data: []byte("hello grid"), Resource: "disk1",
		Meta: []types.AVU{{Name: "color", Value: "red"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Size != 10 || len(o.Replicas) != 1 || o.Owner != "alice" {
		t.Errorf("object = %+v", o)
	}
	data, err := b.Get("alice", "/home/f.txt")
	if err != nil || string(data) != "hello grid" {
		t.Errorf("Get = %q, %v", data, err)
	}
	avus, _ := b.GetMeta("alice", "/home/f.txt", types.MetaUser)
	if len(avus) != 1 || avus[0].Value != "red" {
		t.Errorf("meta = %+v", avus)
	}
	// A stranger without a grant cannot read.
	if _, err := b.Get("bob", "/home/f.txt"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("stranger read: %v", err)
	}
	// Owner grants read; bob succeeds.
	if err := b.Chmod("alice", "/home/f.txt", "bob", acl.Read); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("bob", "/home/f.txt"); err != nil {
		t.Errorf("granted read: %v", err)
	}
}

func TestIngestIntoLogicalResourceReplicates(t *testing.T) {
	b := newBroker(t)
	o, err := b.Ingest("alice", IngestOpts{Path: "/home/m.dat", Data: []byte("mirrored"), Resource: "mirror"})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Replicas) != 2 {
		t.Fatalf("replicas = %+v", o.Replicas)
	}
	seen := map[string]bool{}
	for _, r := range o.Replicas {
		if r.Status != types.ReplicaClean {
			t.Errorf("replica %d not clean: %+v", r.Number, r)
		}
		seen[r.Resource] = true
	}
	if !seen["disk1"] || !seen["disk2"] {
		t.Errorf("replicas on %v", seen)
	}
	// Failover: disk1 down, reads succeed from disk2.
	b.Cat.SetResourceOnline("disk1", false)
	data, err := b.Get("alice", "/home/m.dat")
	if err != nil || string(data) != "mirrored" {
		t.Errorf("failover Get = %q, %v", data, err)
	}
}

func TestIngestGuards(t *testing.T) {
	b := newBroker(t)
	if _, err := b.Ingest("alice", IngestOpts{Path: "/ghost/f", Data: nil, Resource: "disk1"}); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing collection: %v", err)
	}
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/f"}); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("no resource: %v", err)
	}
	// Root collection is not publicly writable.
	if _, err := b.Ingest("alice", IngestOpts{Path: "/top", Data: nil, Resource: "disk1"}); !errors.Is(err, types.ErrPermission) {
		t.Errorf("root ingest: %v", err)
	}
	// Mandatory structural metadata is enforced.
	b.Cat.SetStructural("/home", types.StructuralAttr{Name: "project", Mandatory: true})
	if _, err := b.Ingest("alice", IngestOpts{Path: "/home/x", Data: nil, Resource: "disk1"}); !errors.Is(err, types.ErrMandatoryMeta) {
		t.Errorf("mandatory meta: %v", err)
	}
	if _, err := b.Ingest("alice", IngestOpts{
		Path: "/home/x", Data: nil, Resource: "disk1",
		Meta: []types.AVU{{Name: "project", Value: "srb"}},
	}); err != nil {
		t.Errorf("satisfied mandatory: %v", err)
	}
}

func TestReingestKeepsMetadata(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("v1"), Resource: "mirror",
		Meta: []types.AVU{{Name: "k", Value: "v"}}})
	if err := b.Reingest("alice", "/home/f", []byte("version two")); err != nil {
		t.Fatal(err)
	}
	data, _ := b.Get("alice", "/home/f")
	if string(data) != "version two" {
		t.Errorf("after reingest = %q", data)
	}
	avus, _ := b.GetMeta("alice", "/home/f", types.MetaUser)
	if len(avus) != 1 {
		t.Error("metadata must survive reingest")
	}
	o, _ := b.Cat.GetObject("/home/f")
	for _, r := range o.Replicas {
		if r.Status != types.ReplicaClean || r.Size != 11 {
			t.Errorf("replica after reingest: %+v", r)
		}
	}
}

func TestMkdirListDelete(t *testing.T) {
	b := newBroker(t)
	if err := b.Mkdir("alice", "/home/sub"); err != nil {
		t.Fatal(err)
	}
	b.Ingest("alice", IngestOpts{Path: "/home/sub/f", Data: []byte("x"), Resource: "disk1"})
	stats, err := b.List("alice", "/home/sub")
	if err != nil || len(stats) != 1 {
		t.Errorf("List = %+v, %v", stats, err)
	}
	st, err := b.StatPath("alice", "/home/sub")
	if err != nil || !st.IsCollect {
		t.Errorf("StatPath coll = %+v, %v", st, err)
	}
	st, err = b.StatPath("alice", "/home/sub/f")
	if err != nil || st.Size != 1 {
		t.Errorf("StatPath obj = %+v, %v", st, err)
	}
	if err := b.RmColl("alice", "/home/sub"); !errors.Is(err, types.ErrNotEmpty) {
		t.Errorf("rmcoll non-empty: %v", err)
	}
	if err := b.Delete("alice", "/home/sub/f"); err != nil {
		t.Fatal(err)
	}
	if err := b.RmColl("alice", "/home/sub"); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRemovesBytesAndMetadata(t *testing.T) {
	b := newBroker(t)
	o, _ := b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("bye"), Resource: "disk1",
		Meta: []types.AVU{{Name: "k", Value: "v"}}})
	d, _ := b.Driver("disk1")
	if _, err := d.Stat(o.Replicas[0].PhysicalPath); err != nil {
		t.Fatal("bytes should exist before delete")
	}
	if err := b.Delete("alice", "/home/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stat(o.Replicas[0].PhysicalPath); !errors.Is(err, types.ErrNotFound) {
		t.Error("bytes should be removed")
	}
	hits, _ := b.Cat.RunQuery(mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "k", Op: "=", Value: "v"}}})
	if len(hits) != 0 {
		t.Error("metadata should die with the object")
	}
	// Delete requires Own.
	b.Ingest("alice", IngestOpts{Path: "/home/g", Data: nil, Resource: "disk1"})
	if err := b.Delete("bob", "/home/g"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("foreign delete: %v", err)
	}
}

func TestDeleteReplicaOneAtATime(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("multi"), Resource: "mirror",
		Meta: []types.AVU{{Name: "k", Value: "v"}}})
	if err := b.DeleteReplica("alice", "/home/f", 0); err != nil {
		t.Fatal(err)
	}
	o, _ := b.Cat.GetObject("/home/f")
	if len(o.Replicas) != 1 {
		t.Fatalf("replicas = %+v", o.Replicas)
	}
	// Deleting the last replica deletes object + metadata.
	if err := b.DeleteReplica("alice", "/home/f", o.Replicas[0].Number); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Cat.GetObject("/home/f"); !errors.Is(err, types.ErrNotFound) {
		t.Error("object should be gone after last replica")
	}
}

func TestCopyDropsUserMetadata(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/src", Data: []byte("payload"), Resource: "disk1",
		Meta: []types.AVU{{Name: "k", Value: "v"}}})
	b.Annotate("alice", "/home/src", types.Annotation{Text: "note"})
	if err := b.Copy("alice", "/home/src", "/home/dst", ""); err != nil {
		t.Fatal(err)
	}
	data, err := b.Get("alice", "/home/dst")
	if err != nil || string(data) != "payload" {
		t.Errorf("copy contents = %q, %v", data, err)
	}
	avus, _ := b.GetMeta("alice", "/home/dst", types.MetaUser)
	if len(avus) != 0 {
		t.Error("copy must not carry user metadata")
	}
	anns, _ := b.Annotations("alice", "/home/dst")
	if len(anns) != 0 {
		t.Error("copy must not carry annotations")
	}
	// Copies are unconnected: changing the copy leaves the source alone.
	b.Reingest("alice", "/home/dst", []byte("changed"))
	src, _ := b.Get("alice", "/home/src")
	if string(src) != "payload" {
		t.Error("source affected by copy mutation")
	}
}

func TestCopyCollectionRecursive(t *testing.T) {
	b := newBroker(t)
	b.Mkdir("alice", "/home/proj")
	b.Mkdir("alice", "/home/proj/sub")
	b.Ingest("alice", IngestOpts{Path: "/home/proj/a", Data: []byte("1"), Resource: "disk1"})
	b.Ingest("alice", IngestOpts{Path: "/home/proj/sub/b", Data: []byte("2"), Resource: "disk1"})
	if err := b.Copy("alice", "/home/proj", "/home/proj2", ""); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/home/proj2/a", "/home/proj2/sub/b"} {
		if _, err := b.Get("alice", p); err != nil {
			t.Errorf("copied %s: %v", p, err)
		}
	}
}

func TestMoveKeepsMetadata(t *testing.T) {
	b := newBroker(t)
	b.Mkdir("alice", "/home/a")
	b.Mkdir("alice", "/home/b")
	b.Ingest("alice", IngestOpts{Path: "/home/a/f", Data: []byte("x"), Resource: "disk1",
		Meta: []types.AVU{{Name: "k", Value: "v"}}})
	if err := b.Move("alice", "/home/a/f", "/home/b/g"); err != nil {
		t.Fatal(err)
	}
	avus, err := b.GetMeta("alice", "/home/b/g", types.MetaUser)
	if err != nil || len(avus) != 1 {
		t.Errorf("meta after move = %+v, %v", avus, err)
	}
	// Bytes are reachable without a physical move.
	data, err := b.Get("alice", "/home/b/g")
	if err != nil || string(data) != "x" {
		t.Errorf("get after move = %q, %v", data, err)
	}
	// Move requires Own.
	b.Ingest("alice", IngestOpts{Path: "/home/a/h", Data: nil, Resource: "disk1"})
	if err := b.Move("bob", "/home/a/h", "/home/b/h"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("foreign move: %v", err)
	}
}

func TestLinkSemantics(t *testing.T) {
	b := newBroker(t)
	b.Mkdir("alice", "/home/orig")
	b.Mkdir("alice", "/home/links")
	b.Ingest("alice", IngestOpts{Path: "/home/orig/f", Data: []byte("linked data"), Resource: "disk1"})
	b.Chmod("alice", "/home/orig/f", acl.Public, acl.Read)
	if err := b.Link("alice", "/home/orig/f", "/home/links/lnk"); err != nil {
		t.Fatal(err)
	}
	data, err := b.Get("bob", "/home/links/lnk")
	if err != nil || string(data) != "linked data" {
		t.Errorf("get via link = %q, %v", data, err)
	}
	// Chained link collapses to the original target.
	if err := b.Link("alice", "/home/links/lnk", "/home/links/lnk2"); err != nil {
		t.Fatal(err)
	}
	o, _ := b.Cat.GetObject("/home/links/lnk2")
	if o.LinkTarget != "/home/orig/f" {
		t.Errorf("chained link target = %q", o.LinkTarget)
	}
	// Deleting a link only unlinks.
	if err := b.Delete("alice", "/home/links/lnk"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("alice", "/home/orig/f"); err != nil {
		t.Error("original must survive link deletion")
	}
	// Link permission follows the target: revoke public read.
	b.Chmod("alice", "/home/orig/f", acl.Public, acl.None)
	if _, err := b.Get("bob", "/home/links/lnk2"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("link access after revoke: %v", err)
	}
}

func TestAuditTrail(t *testing.T) {
	b := newBroker(t)
	b.Ingest("alice", IngestOpts{Path: "/home/f", Data: []byte("x"), Resource: "disk1"})
	b.Get("alice", "/home/f")
	b.Get("bob", "/home/f") // denied
	all := b.Cat.AuditLog().Query(audit.Filter{})
	if len(all) < 3 {
		t.Errorf("audit records = %d", len(all))
	}
	gets := b.Cat.AuditLog().Query(audit.Filter{Op: "get", User: "alice"})
	if len(gets) != 1 || !gets[0].OK {
		t.Errorf("alice get audit = %+v", gets)
	}
	denied := 0
	for _, r := range all {
		if !r.OK {
			denied++
		}
	}
	if denied == 0 {
		t.Error("denied access must be audited")
	}
}
