package core

import (
	"fmt"

	"gosrb/internal/types"
)

// SyncAllDirty sweeps the whole catalog and repairs every dirty replica
// it can reach: plain objects through the replica manager, container
// segments through SyncContainer. It returns how many replicas were
// refreshed. srbd runs this periodically so replica consistency is
// maintained "with very little effort on the part of the users"
// (paper §2). Administrators only.
func (b *Broker) SyncAllDirty(user string) (int, error) {
	if !b.Cat.IsAdmin(user) {
		return 0, types.E("syncall", "", types.ErrPermission)
	}
	total := 0
	for _, p := range b.Cat.SubtreeObjects("/") {
		o, err := b.Cat.GetObject(p)
		if err != nil {
			continue
		}
		dirty := false
		for _, r := range o.Replicas {
			if r.Status == types.ReplicaDirty {
				dirty = true
				break
			}
		}
		if !dirty {
			continue
		}
		var n int
		if o.DataType == ContainerDataType {
			n, err = b.SyncContainer(user, p)
		} else if o.Kind == types.KindFile && o.Container == "" {
			n, err = b.rm.SyncDirty(p)
		}
		if err == nil {
			total += n
		}
	}
	if total > 0 {
		b.audit(user, "syncall", "/", true, fmt.Sprintf("%d replicas refreshed", total))
	}
	return total, nil
}
