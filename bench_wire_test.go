// Wire-throughput bench: small-op throughput over a high-latency link,
// serial vs pipelined vs batched. The link is a simnet.Delay conn that
// charges the full 5ms RTT on each request's delivery, so a serial
// protocol pays the link once per op while pipelined requests overlap
// their delays and a batch pays it once for the whole set — the
// throughput model the connection pool, request pipelining, and bulk
// ops exist to exploit. `make bench-wire` writes BENCH_wire.json;
// `make bench-wire-gate` (in `make check`) holds the ≥3x floor.
package gosrb_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/server"
	"gosrb/internal/simnet"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
	"gosrb/internal/workload"
)

// wireBenchRTT is the simulated round trip each request pays.
const wireBenchRTT = 5 * time.Millisecond

// wireBenchOps is the number of small ops per measured round.
const wireBenchOps = 32

// wireBenchRig starts one server seeded with wireBenchOps small objects
// and returns a client whose conns ride the delayed link.
func wireBenchRig(tb testing.TB) (*client.Client, []string) {
	tb.Helper()
	cat := mcat.New("admin", "sdsc")
	br := core.New(cat, "srb1")
	if err := br.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		tb.Fatal(err)
	}
	cat.MkColl("/d", "admin")
	payload := workload.NewGen(7).Bytes(256)
	paths := make([]string, wireBenchOps)
	for i := range paths {
		paths[i] = fmt.Sprintf("/d/f%03d", i)
		if _, err := br.Ingest("admin", core.IngestOpts{Path: paths[i], Data: payload, Resource: "disk1"}); err != nil {
			tb.Fatal(err)
		}
	}
	authn := auth.New()
	authn.Register("admin", "pw")
	s := server.New(br, authn, server.Proxy)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	cl, err := client.DialWith(addr, "admin", "pw", func(addr string) (net.Conn, error) {
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		return simnet.Delay(nc, wireBenchRTT), nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { cl.Close() })
	return cl, paths
}

// wireSerial stats every path one at a time — each op waits out its own
// round trip, the pre-pipelining throughput model.
func wireSerial(tb testing.TB, cl *client.Client, paths []string) time.Duration {
	tb.Helper()
	start := time.Now()
	for _, p := range paths {
		if _, err := cl.Stat(p); err != nil {
			tb.Fatal(err)
		}
	}
	return time.Since(start)
}

// wirePipelined stats every path from 16 workers sharing the pooled,
// multiplexed conns — in-flight requests overlap their link delays.
func wirePipelined(tb testing.TB, cl *client.Client, paths []string) time.Duration {
	tb.Helper()
	start := time.Now()
	var wg sync.WaitGroup
	idx := make(chan string, len(paths))
	for _, p := range paths {
		idx <- p
	}
	close(idx)
	errs := make(chan error, len(paths))
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range idx {
				if _, err := cl.Stat(p); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// wireBatched stats every path in one BulkStat round trip.
func wireBatched(tb testing.TB, cl *client.Client, paths []string) time.Duration {
	tb.Helper()
	start := time.Now()
	items, err := cl.BulkStat(paths)
	if err != nil {
		tb.Fatal(err)
	}
	for _, it := range items {
		if !it.OK {
			tb.Fatalf("bulkstat %s: %s", it.Path, it.ErrMsg)
		}
	}
	return time.Since(start)
}

func opsPerSec(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(wireBenchOps) / d.Seconds()
}

// TestWireBenchReport measures the three modes and writes
// BENCH_wire.json (the Makefile's bench-wire target, BENCH_WIRE=1).
func TestWireBenchReport(t *testing.T) {
	if os.Getenv("BENCH_WIRE") == "" {
		t.Skip("set BENCH_WIRE=1 to emit BENCH_wire.json")
	}
	cl, paths := wireBenchRig(t)
	// Warm-up: populate the pool and fault in every code path before
	// the clock runs.
	wireSerial(t, cl, paths[:2])
	wirePipelined(t, cl, paths)
	wireBatched(t, cl, paths)
	// Best-of-3 per mode: the minimum is the stable microbench estimator.
	best := func(run func(testing.TB, *client.Client, []string) time.Duration) time.Duration {
		var b time.Duration
		for round := 0; round < 3; round++ {
			if d := run(t, cl, paths); round == 0 || d < b {
				b = d
			}
		}
		return b
	}
	serial := best(wireSerial)
	pipelined := best(wirePipelined)
	batched := best(wireBatched)
	report := struct {
		Benchmark          string  `json:"benchmark"`
		RTTMillis          int64   `json:"rtt_ms"`
		Ops                int     `json:"ops"`
		SerialOpsPerSec    float64 `json:"serial_ops_per_sec"`
		PipelinedOpsPerSec float64 `json:"pipelined_ops_per_sec"`
		BatchedOpsPerSec   float64 `json:"batched_ops_per_sec"`
		PipelinedSpeedup   float64 `json:"pipelined_speedup"`
		BatchedSpeedup     float64 `json:"batched_speedup"`
	}{
		Benchmark:          "wire-throughput",
		RTTMillis:          wireBenchRTT.Milliseconds(),
		Ops:                wireBenchOps,
		SerialOpsPerSec:    opsPerSec(serial),
		PipelinedOpsPerSec: opsPerSec(pipelined),
		BatchedOpsPerSec:   opsPerSec(batched),
		PipelinedSpeedup:   serial.Seconds() / pipelined.Seconds(),
		BatchedSpeedup:     serial.Seconds() / batched.Seconds(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_wire.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial %.0f ops/s, pipelined %.0f ops/s (%.1fx), batched %.0f ops/s (%.1fx)",
		report.SerialOpsPerSec, report.PipelinedOpsPerSec, report.PipelinedSpeedup,
		report.BatchedOpsPerSec, report.BatchedSpeedup)
}

// TestWireBenchGate holds the throughput floor: pipelined and batched
// small-op throughput must both clear 3x serial at the 5ms RTT. Five
// pairwise rounds — every round measures all three modes back to back
// so background load hits them equally — and the gate keeps each
// mode's best round, the one least distorted by the scheduler. Gated
// behind BENCH_WIRE_GATE=1 (`make bench-wire-gate`, part of `make
// check`).
func TestWireBenchGate(t *testing.T) {
	if os.Getenv("BENCH_WIRE_GATE") == "" {
		t.Skip("set BENCH_WIRE_GATE=1 to check the wire throughput floor")
	}
	cl, paths := wireBenchRig(t)
	wireSerial(t, cl, paths[:2])
	wirePipelined(t, cl, paths)
	wireBatched(t, cl, paths)
	const floor = 3.0
	bestPipelined, bestBatched := 0.0, 0.0
	for round := 0; round < 5; round++ {
		serial := wireSerial(t, cl, paths)
		pipelined := wirePipelined(t, cl, paths)
		batched := wireBatched(t, cl, paths)
		if v := serial.Seconds() / pipelined.Seconds(); v > bestPipelined {
			bestPipelined = v
		}
		if v := serial.Seconds() / batched.Seconds(); v > bestBatched {
			bestBatched = v
		}
	}
	t.Logf("best speedups over %d ops at %v RTT: pipelined %.1fx, batched %.1fx",
		wireBenchOps, wireBenchRTT, bestPipelined, bestBatched)
	if bestPipelined < floor {
		t.Errorf("pipelined speedup %.2fx is under the %.0fx floor", bestPipelined, floor)
	}
	if bestBatched < floor {
		t.Errorf("batched speedup %.2fx is under the %.0fx floor", bestBatched, floor)
	}
}
