// Command mysrbd serves the MySRB web interface over an in-process SRB
// broker — the web gateway of the paper, available in the original at
// https://srb.npaci.edu/mySRB.html.
//
// Example:
//
//	mysrbd -addr :8080 \
//	       -resource disk1=posixfs:/var/srb/vault1 \
//	       -user curator=pw -catalog /var/srb/mcat.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/mysrb"
	"gosrb/internal/obs"
	"gosrb/internal/repair"
	"gosrb/internal/server"
	"gosrb/internal/storage/archivefs"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/storage/posixfs"
	"gosrb/internal/types"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		adminAddr = flag.String("admin-addr", "", "admin HTTP listen address for /metrics, /healthz, /grid and /debug/pprof (empty disables)")
		adminUser = flag.String("admin", "admin", "administrator user name")
		adminPw   = flag.String("admin-pw", os.Getenv("SRB_ADMIN_PW"), "administrator password (or $SRB_ADMIN_PW)")
		catalog   = flag.String("catalog", "", "MCAT snapshot to load/save")
		slowOp    = flag.Duration("slow-op", 0, "log the full span tree of any web request slower than this (0 disables)")

		repairWorkers = flag.Int("repair-workers", 2, "background repair worker goroutines draining the async-replication/scrub queue (0 leaves the queue undrained)")
		scrubEvery    = flag.Duration("scrub-interval", 0, "anti-entropy scrub interval: re-hash every replica against the catalog checksum and repair divergence (0 disables)")

		rollupEvery = flag.Duration("rollup-interval", obs.DefaultRollupInterval, "telemetry rollup capture interval feeding /metrics?window=, /grid and the dashboard (0 disables windowed stats)")
	heatDecay   = flag.Duration("heat-decay", time.Minute, "hot-key/hot-object score decay interval feeding the /heat page (0 disables decay)")
		sloRules    = flag.String("slo-rules", "", "SLO rules file, one rule per line (e.g. 'get p99 < 50ms over 5m'); empty disables SLO evaluation")
		sloEvery    = flag.Duration("slo-interval", 30*time.Second, "how often declared SLO rules are evaluated against the rollup ring")

		exemplarMin = flag.Duration("exemplar-threshold", obs.DefaultExemplarThreshold, "retain a tail exemplar (trace ID) on latency buckets at or above this duration; 0 keeps one per bucket regardless")

		telemetryDir = flag.String("telemetry-dir", "", "flight recorder directory: durable telemetry journal plus incident bundles, restored at boot (empty disables)")
		telemetryRet = flag.Duration("telemetry-retention", 24*time.Hour, "how much telemetry and incident history survives compaction (0 keeps whatever the rings retain)")
	)
	var resources, users repeated
	flag.Var(&resources, "resource", "resource: name=driver:arg; repeatable")
	flag.Var(&users, "user", "user account: name=password; repeatable")
	flag.Parse()

	logger := log.New(os.Stderr, "mysrbd: ", log.LstdFlags)
	if *adminPw == "" {
		*adminPw = "admin"
		logger.Printf("warning: using default admin password; set -admin-pw")
	}

	cat := mcat.New(*adminUser, "local")
	if *catalog != "" {
		if err := cat.LoadFile(*catalog); err == nil {
			logger.Printf("catalog loaded from %s", *catalog)
		}
	}
	broker := core.New(cat, "mysrb")
	broker.Metrics().SetExemplarThreshold(*exemplarMin)
	// Durable telemetry mirrors srbd: restore windowed history before
	// any job captures new rollups.
	var telem *obs.TelemetryStore
	var restoredAlerts []obs.Alert
	if *telemetryDir != "" {
		var err error
		telem, err = obs.OpenTelemetryStore(*telemetryDir, "mysrb", *telemetryRet)
		if err != nil {
			logger.Fatalf("telemetry: %v", err)
		}
		snap, err := telem.Restore(broker.Metrics())
		if err != nil {
			logger.Fatalf("telemetry restore: %v", err)
		}
		restoredAlerts = snap.Alerts
		if len(snap.Rollups)+len(snap.Alerts)+len(snap.Peers) > 0 {
			logger.Printf("telemetry restored: %d rollups, %d alerts, %d peer rows",
				len(snap.Rollups), len(snap.Alerts), len(snap.Peers))
		}
	}
	authn := auth.New()
	authn.Register(*adminUser, *adminPw)
	for _, u := range users {
		parts := strings.SplitN(u, "=", 2)
		if len(parts) != 2 {
			logger.Fatalf("bad -user %q", u)
		}
		authn.Register(parts[0], parts[1])
		if _, err := cat.GetUser(parts[0]); err != nil {
			cat.AddUser(types.User{Name: parts[0], Domain: "local"})
		}
	}
	for _, spec := range resources {
		if err := mountResource(broker, *adminUser, spec); err != nil {
			logger.Fatalf("-resource %q: %v", spec, err)
		}
	}
	if len(resources) == 0 {
		// A usable default so the quickstart works out of the box.
		if err := broker.AddPhysicalResource(*adminUser, "disk1", types.ClassCache, "memfs", memfs.New()); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("no -resource given; using in-memory resource disk1")
	}

	// Background maintenance mirrors srbd: the engine drains the async
	// replication queue and (when enabled) runs the anti-entropy
	// scrubber, so the /status page's repair section is live here too.
	eng := repair.New(repair.Config{
		Workers:  *repairWorkers,
		Queue:    cat,
		Exec:     broker.RunRepairTask,
		Metrics:  broker.Metrics(),
		Breakers: broker.Breakers(),
		Server:   "mysrb",
	})
	if *scrubEvery > 0 {
		eng.AddJob("scrub", *scrubEvery, 0.2, func(sp *obs.Span) error {
			rpt := broker.ScrubSubtree("/", sp)
			if rpt.Corrupt+rpt.Repaired+rpt.Replicated+rpt.Enqueued > 0 {
				logger.Printf("scrub: %d corrupt, %d repaired, %d replicated, %d enqueued (%d objects)",
					rpt.Corrupt, rpt.Repaired, rpt.Replicated, rpt.Enqueued, rpt.Objects)
			}
			return nil
		})
	}
	// Windowed telemetry mirrors srbd: rollup captures and SLO
	// evaluation ride the repair scheduler.
	if *rollupEvery > 0 {
		eng.AddJob("rollup", *rollupEvery, 0.1, func(sp *obs.Span) error {
			broker.Metrics().CaptureRollup(time.Now())
			return nil
		})
	}
	if *heatDecay > 0 {
		eng.AddJob("heat.decay", *heatDecay, 0.1, func(sp *obs.Span) error {
			broker.Metrics().HeatKeys().Decay(0.5)
			broker.Metrics().HeatObjects().Decay(0.5)
			return nil
		})
	}
	if *sloRules != "" {
		src, err := os.ReadFile(*sloRules)
		if err != nil {
			logger.Fatalf("slo rules: %v", err)
		}
		rules, err := obs.ParseSLORules(string(src))
		if err != nil {
			logger.Fatalf("slo rules: %v", err)
		}
		ev := obs.NewSLOEvaluator(broker.Metrics(), rules)
		for _, a := range restoredAlerts {
			ev.AlertLog().Add(a)
		}
		broker.SetSLO(ev)
		eng.AddJob("slo", *sloEvery, 0.1, func(sp *obs.Span) error {
			ev.Evaluate(time.Now())
			return nil
		})
		logger.Printf("%d SLO rule(s) from %s, evaluated every %s", len(rules), *sloRules, *sloEvery)
	}
	// The flight recorder mirrors srbd, minus the federated grid
	// snapshot (mysrbd has no wire server to gather it).
	if telem != nil {
		rec, err := obs.NewIncidentRecorder(obs.IncidentConfig{
			Dir:      filepath.Join(*telemetryDir, "incidents"),
			Server:   "mysrb",
			Registry: broker.Metrics(),
			Extra: func() map[string][]byte {
				files := make(map[string][]byte)
				if b, err := json.Marshal(broker.Breakers().States()); err == nil {
					files["breakers.json"] = b
				}
				if b, err := json.Marshal(eng.Status()); err == nil {
					files["repair.json"] = b
				}
				return files
			},
		})
		if err != nil {
			logger.Fatalf("flight recorder: %v", err)
		}
		broker.SetIncidents(rec)
		if ev := broker.SLO(); ev != nil {
			ev.SetOnFire(func(now time.Time, rule obs.SLORule, alert obs.Alert) {
				go func() {
					meta, err := rec.Capture(now, rule.Name, "slo-fired", alert.Detail, rule.Window)
					switch {
					case err == nil:
						logger.Printf("incident captured: %s", meta.ID)
					case !errors.Is(err, obs.ErrRateLimited):
						logger.Printf("incident capture: %v", err)
					}
				}()
			})
		}
		eng.AddJob("telemetry", obs.DefaultTelemetryFlush, 0.1, func(sp *obs.Span) error {
			var alog *obs.AlertLog
			if ev := broker.SLO(); ev != nil {
				alog = ev.AlertLog()
			}
			if err := telem.Flush(broker.Metrics(), alog, time.Now()); err != nil {
				return err
			}
			if *telemetryRet > 0 {
				rec.Prune(time.Now().Add(-*telemetryRet))
			}
			return nil
		})
		logger.Printf("flight recorder on %s (retention %s)", *telemetryDir, *telemetryRet)
	}
	broker.SetRepair(eng)
	eng.Start()

	app := mysrb.New(broker, authn)
	app.SetSlowOpThreshold(*slowOp)
	if *adminAddr != "" {
		// mysrbd has no wire server, so it mounts the same admin mux
		// srbd serves, minus the federated /grid fan-out (local-only).
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			logger.Fatalf("admin listen: %v", err)
		}
		admin := &http.Server{
			Handler:           server.NewAdminHandler(server.AdminEnv{Name: broker.ServerName(), Broker: broker}),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := admin.Serve(ln); err != nil && err != http.ErrServerClosed {
				logger.Printf("admin: %v", err)
			}
		}()
		logger.Printf("admin endpoint on http://%s (/metrics /healthz /grid /debug/pprof)", ln.Addr())
	}
	logger.Printf("MySRB version %s at http://%s/mySRB.html", obs.Version, *addr)
	if *catalog != "" {
		go func() {
			for range time.Tick(time.Minute) {
				cat.SaveFile(*catalog)
			}
		}()
	}
	if err := http.ListenAndServe(*addr, app); err != nil {
		logger.Fatal(err)
	}
}

func mountResource(b *core.Broker, admin, spec string) error {
	eq := strings.SplitN(spec, "=", 2)
	if len(eq) != 2 {
		return errBadSpec
	}
	da := strings.SplitN(eq[1], ":", 2)
	arg := ""
	if len(da) == 2 {
		arg = da[1]
	}
	switch da[0] {
	case "posixfs":
		fs, err := posixfs.New(arg)
		if err != nil {
			return err
		}
		return b.AddPhysicalResource(admin, eq[0], types.ClassFileSystem, "posixfs", fs)
	case "memfs":
		return b.AddPhysicalResource(admin, eq[0], types.ClassCache, "memfs", memfs.New())
	case "archivefs":
		cfg := archivefs.Config{StageLatency: 100 * time.Millisecond}
		if arg != "" {
			lat, err := time.ParseDuration(arg)
			if err != nil {
				return err
			}
			cfg.StageLatency = lat
		}
		return b.AddPhysicalResource(admin, eq[0], types.ClassArchive, "archivefs", archivefs.New(cfg))
	case "dbfs":
		return b.AddPhysicalResource(admin, eq[0], types.ClassDatabase, "dbfs", dbfs.New())
	default:
		return errBadSpec
	}
}

var errBadSpec = types.E("resource", "", types.ErrInvalid)
