package main

import (
	"testing"

	"gosrb/internal/core"
	"gosrb/internal/mcat"
)

func TestMountResource(t *testing.T) {
	cat := mcat.New("admin", "local")
	b := core.New(cat, "mysrb")
	cases := []string{
		"disk=posixfs:" + t.TempDir(),
		"cache=memfs:",
		"tape=archivefs:25ms",
		"db=dbfs:",
	}
	for _, spec := range cases {
		if err := mountResource(b, "admin", spec); err != nil {
			t.Errorf("mountResource(%q): %v", spec, err)
		}
	}
	if got := len(cat.Resources()); got != len(cases) {
		t.Errorf("resources registered = %d, want %d", got, len(cases))
	}
	for _, bad := range []string{"nope", "x=ghostfs:", "y=archivefs:badduration"} {
		if err := mountResource(b, "admin", bad); err == nil {
			t.Errorf("mountResource(%q) should fail", bad)
		}
	}
	// Drivers actually attached.
	if _, err := b.Driver("cache"); err != nil {
		t.Errorf("driver lookup: %v", err)
	}
	if _, err := b.Database("db"); err != nil {
		t.Errorf("database lookup: %v", err)
	}
}
