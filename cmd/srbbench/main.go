// Command srbbench regenerates the reproduction experiment tables
// E1–E10 (see DESIGN.md §3 and EXPERIMENTS.md). Each table exercises
// one measurable claim of the paper on a synthetic workload.
//
//	srbbench            # run everything at scale 1
//	srbbench -e e2 -scale 10
package main

import (
	"flag"
	"fmt"
	"os"

	"gosrb/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("e", "", "run one experiment by id (e1..e10, e1a); default all")
		scale = flag.Int("scale", 1, "workload scale factor")
	)
	flag.Parse()
	if *exp != "" {
		t, ok := experiments.ByID(*exp, *scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "srbbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		fmt.Println(t.Format())
		return
	}
	for _, t := range experiments.All(*scale) {
		fmt.Println(t.Format())
	}
}
