package main

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/faultnet"
	"gosrb/internal/mcat"
	"gosrb/internal/resilience"
	"gosrb/internal/server"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// chaosSeed fixes every random choice the injector makes, so each run
// of this test replays the identical fault schedule.
const chaosSeed = 42

// fakeTicker is a hand-driven clock for breaker cooldowns.
type fakeTicker struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeTicker) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeTicker) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestChaosFederatedFailover is the chaos end-to-end: an in-process
// two-server zone with deterministic fault injection. It kills the
// local resource under a replicated object (reads must fail over to
// the surviving replica via the peer), then kills the peer uplink
// mid-federation (the peer breaker must trip, fast-fail, and recover
// through a half-open probe once the link heals).
func TestChaosFederatedFailover(t *testing.T) {
	inj := faultnet.New(chaosSeed)

	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.MkColl("/home", "admin")
	cat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(cat, "srb1")
	b2 := core.New(cat, "srb2")
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs",
		inj.WrapDriver("disk1", memfs.New())); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs",
		inj.WrapDriver("disk2", memfs.New())); err != nil {
		t.Fatal(err)
	}

	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	s1 := server.New(b1, authn, server.Proxy)
	s2 := server.New(b2, authn, server.Proxy)
	t.Cleanup(func() { s1.Close(); s2.Close() })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.AddPeer("srb2", addr2, "zone-secret")
	s2.AddPeer("srb1", addr1, "zone-secret")

	// All of srb1's federation traffic runs over the injectable uplink,
	// with deterministic latency spikes from the seeded RNG.
	s1.SetPeerDialer(inj.WrapDial("uplink", func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	}))
	inj.Target("uplink").SpikeLatency(time.Millisecond, 0.25)
	s1.SetRetryPolicy(resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	clock := &fakeTicker{now: time.Unix(1_000_000, 0)}
	b1.Breakers().SetConfig(resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	b1.Breakers().SetClock(clock.Now)

	adminAddr, err := s1.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cl, err := client.Dial(addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	// Seed: one object replicated on both disks, one remote-only.
	if _, err := cl.Put("/home/chaos.txt", []byte("survives chaos"), client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Replicate("/home/chaos.txt", "disk2"); err != nil {
		t.Fatal(err)
	}
	func() {
		cl2, err := client.Dial(addr2, "alice", "alicepw")
		if err != nil {
			t.Fatal(err)
		}
		defer cl2.Close()
		if _, err := cl2.Put("/home/remote-only.txt", []byte("only on disk2"), client.PutOpts{Resource: "disk2"}); err != nil {
			t.Fatal(err)
		}
	}()

	// Phase 1 — kill the local resource. One client Get absorbs the
	// whole failover: local attempts fail, the resource breaker trips,
	// and the read federates to the surviving replica on srb2.
	inj.Target("disk1").Kill()
	data, err := cl.Get("/home/chaos.txt")
	if err != nil || string(data) != "survives chaos" {
		t.Fatalf("failover get = %q, %v", data, err)
	}
	if cl.Retries() == 0 {
		t.Error("client absorbed the outage without retrying — breaker never exercised")
	}
	if st := b1.Breakers().States()["resource.disk1"]; st != resilience.Open {
		t.Errorf("resource.disk1 breaker = %v, want Open", st)
	}

	// Phase 2 — kill the uplink mid-federation. Dial attempts fail,
	// the peer breaker opens, and further reads fast-fail offline.
	if data, err := cl.Get("/home/remote-only.txt"); err != nil || string(data) != "only on disk2" {
		t.Fatalf("pre-outage proxied get = %q, %v", data, err)
	}
	inj.Target("uplink").Kill()
	if _, err := cl.Get("/home/remote-only.txt"); err == nil {
		t.Fatal("get over dead uplink must fail")
	}
	if st := b1.Breakers().States()["peer.srb2"]; st != resilience.Open {
		t.Fatalf("peer.srb2 breaker = %v, want Open", st)
	}
	// Open breaker: the next read fast-fails, shaped as offline.
	if _, err := cl.Get("/home/remote-only.txt"); !errors.Is(err, types.ErrOffline) {
		t.Fatalf("fast-fail get = %v, want offline", err)
	}

	// The open breaker is visible on the admin endpoint.
	metrics := scrape(t, adminAddr)
	if !strings.Contains(metrics, "breaker.peer.srb2.state 2") {
		t.Errorf("/metrics missing open peer breaker:\n%s", grepLines(metrics, "breaker."))
	}

	// Phase 3 — heal the uplink. After the cooldown the breaker goes
	// half-open; the probe read succeeds and closes it.
	inj.Target("uplink").Revive()
	clock.Advance(2 * time.Minute)
	data, err = cl.Get("/home/remote-only.txt")
	if err != nil || string(data) != "only on disk2" {
		t.Fatalf("post-recovery get = %q, %v", data, err)
	}
	if st := b1.Breakers().States()["peer.srb2"]; st != resilience.Closed {
		t.Errorf("peer.srb2 breaker = %v, want Closed after probe", st)
	}
}

// scrape fetches the admin /metrics page.
func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// grepLines keeps only lines containing pat, for focused failure output.
func grepLines(s, pat string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, pat) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
