package main

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/faultnet"
	"gosrb/internal/mcat"
	"gosrb/internal/obs"
	"gosrb/internal/resilience"
	"gosrb/internal/server"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// chaosSeed fixes every random choice the injector makes, so each run
// of this test replays the identical fault schedule.
const chaosSeed = 42

// fakeTicker is a hand-driven clock for breaker cooldowns.
type fakeTicker struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeTicker) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeTicker) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestChaosFederatedFailover is the chaos end-to-end: an in-process
// two-server zone with deterministic fault injection. It kills the
// local resource under a replicated object (reads must fail over to
// the surviving replica via the peer), then kills the peer uplink
// mid-federation (the peer breaker must trip, fast-fail, and recover
// through a half-open probe once the link heals).
func TestChaosFederatedFailover(t *testing.T) {
	inj := faultnet.New(chaosSeed)

	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.MkColl("/home", "admin")
	cat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(cat, "srb1")
	b2 := core.New(cat, "srb2")
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs",
		inj.WrapDriver("disk1", memfs.New())); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs",
		inj.WrapDriver("disk2", memfs.New())); err != nil {
		t.Fatal(err)
	}

	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	s1 := server.New(b1, authn, server.Proxy)
	s2 := server.New(b2, authn, server.Proxy)
	t.Cleanup(func() { s1.Close(); s2.Close() })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.AddPeer("srb2", addr2, "zone-secret")
	s2.AddPeer("srb1", addr1, "zone-secret")

	// All of srb1's federation traffic runs over the injectable uplink,
	// with deterministic latency spikes from the seeded RNG.
	s1.SetPeerDialer(inj.WrapDial("uplink", func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	}))
	inj.Target("uplink").SpikeLatency(time.Millisecond, 0.25)
	s1.SetRetryPolicy(resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	clock := &fakeTicker{now: time.Unix(1_000_000, 0)}
	b1.Breakers().SetConfig(resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	b1.Breakers().SetClock(clock.Now)

	adminAddr, err := s1.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cl, err := client.Dial(addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	// Seed: one object replicated on both disks, one remote-only.
	if _, err := cl.Put("/home/chaos.txt", []byte("survives chaos"), client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Replicate("/home/chaos.txt", "disk2"); err != nil {
		t.Fatal(err)
	}
	func() {
		cl2, err := client.Dial(addr2, "alice", "alicepw")
		if err != nil {
			t.Fatal(err)
		}
		defer cl2.Close()
		if _, err := cl2.Put("/home/remote-only.txt", []byte("only on disk2"), client.PutOpts{Resource: "disk2"}); err != nil {
			t.Fatal(err)
		}
	}()

	// Phase 1 — kill the local resource. One client Get absorbs the
	// whole failover: local attempts fail, the resource breaker trips,
	// and the read federates to the surviving replica on srb2.
	inj.Target("disk1").Kill()
	data, err := cl.Get("/home/chaos.txt")
	if err != nil || string(data) != "survives chaos" {
		t.Fatalf("failover get = %q, %v", data, err)
	}
	if cl.Retries() == 0 {
		t.Error("client absorbed the outage without retrying — breaker never exercised")
	}
	if st := b1.Breakers().States()["resource.disk1"]; st != resilience.Open {
		t.Errorf("resource.disk1 breaker = %v, want Open", st)
	}

	// Phase 2 — kill the uplink mid-federation. Dial attempts fail,
	// the peer breaker opens, and further reads fast-fail offline.
	if data, err := cl.Get("/home/remote-only.txt"); err != nil || string(data) != "only on disk2" {
		t.Fatalf("pre-outage proxied get = %q, %v", data, err)
	}
	inj.Target("uplink").Kill()
	if _, err := cl.Get("/home/remote-only.txt"); err == nil {
		t.Fatal("get over dead uplink must fail")
	}
	if st := b1.Breakers().States()["peer.srb2"]; st != resilience.Open {
		t.Fatalf("peer.srb2 breaker = %v, want Open", st)
	}
	// Open breaker: the next read fast-fails, shaped as offline.
	if _, err := cl.Get("/home/remote-only.txt"); !errors.Is(err, types.ErrOffline) {
		t.Fatalf("fast-fail get = %v, want offline", err)
	}

	// The open breaker is visible on the admin endpoint.
	metrics := scrape(t, adminAddr)
	if !strings.Contains(metrics, "breaker.peer.srb2.state 2") {
		t.Errorf("/metrics missing open peer breaker:\n%s", grepLines(metrics, "breaker."))
	}

	// Phase 3 — heal the uplink. After the cooldown the breaker goes
	// half-open; the probe read succeeds and closes it.
	inj.Target("uplink").Revive()
	clock.Advance(2 * time.Minute)
	data, err = cl.Get("/home/remote-only.txt")
	if err != nil || string(data) != "only on disk2" {
		t.Fatalf("post-recovery get = %q, %v", data, err)
	}
	if st := b1.Breakers().States()["peer.srb2"]; st != resilience.Closed {
		t.Errorf("peer.srb2 breaker = %v, want Closed after probe", st)
	}
}

// scrape fetches the admin /metrics page (legacy dotted-name dump).
func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestChaosTraceSpanTree is the observability end-to-end: the same
// two-server zone with an injected resource failure, but the assertion
// target is the trace. One client Get rides out the outage (local
// attempts fail, the resource breaker trips, the read fails over to the
// peer's replica); fetching that call's trace afterwards must return a
// span tree spanning both servers, carrying the retry and breaker-trip
// events and the failover child span, and the usage table must charge
// the read to the right user and collection.
func TestChaosTraceSpanTree(t *testing.T) {
	inj := faultnet.New(chaosSeed)

	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.MkColl("/home", "admin")
	cat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(cat, "srb1")
	b2 := core.New(cat, "srb2")
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs",
		inj.WrapDriver("disk1", memfs.New())); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs",
		inj.WrapDriver("disk2", memfs.New())); err != nil {
		t.Fatal(err)
	}

	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	s1 := server.New(b1, authn, server.Proxy)
	s2 := server.New(b2, authn, server.Proxy)
	t.Cleanup(func() { s1.Close(); s2.Close() })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.AddPeer("srb2", addr2, "zone-secret")
	s2.AddPeer("srb1", addr1, "zone-secret")
	b1.Breakers().SetConfig(resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute})

	adminAddr, err := s1.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cl, err := client.Dial(addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	payload := []byte("survives chaos")
	if _, err := cl.Put("/home/chaos.txt", payload, client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Replicate("/home/chaos.txt", "disk2"); err != nil {
		t.Fatal(err)
	}

	// Readiness flips once the resource dies and its breaker opens.
	if code := probe(t, adminAddr, "/healthz"); code != http.StatusOK {
		t.Fatalf("pre-outage /healthz = %d, want 200", code)
	}

	inj.Target("disk1").Kill()
	data, err := cl.Get("/home/chaos.txt")
	if err != nil || string(data) != string(payload) {
		t.Fatalf("failover get = %q, %v", data, err)
	}
	if cl.Retries() == 0 {
		t.Fatal("get succeeded without retrying — outage not exercised")
	}
	id := cl.LastTrace()
	if id == "" {
		t.Fatal("client recorded no trace ID")
	}

	// The trace op fans out to srb2, so the reply holds both hops.
	rep, err := cl.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	servers := map[string]bool{}
	events := map[string]bool{}
	for _, r := range rep.Spans {
		if r.Trace != id {
			t.Errorf("span %s belongs to trace %s, want %s", r.Span, r.Trace, id)
		}
		servers[r.Server] = true
		for _, ev := range r.Events {
			events[ev.Kind] = true
		}
	}
	if len(servers) < 2 || !servers["srb1"] || !servers["srb2"] {
		t.Errorf("trace covers servers %v, want srb1 and srb2", servers)
	}
	for _, want := range []string{obs.EventRetry, obs.EventBreakerTrip, obs.EventFailover} {
		if !events[want] {
			t.Errorf("trace is missing a %q event (have %v)", want, events)
		}
	}

	// The srb2 hop must be a child of an srb1 span — the failover is a
	// subtree, not a disconnected record.
	roots := obs.AssembleTree(rep.Spans)
	foundChild := false
	for _, root := range roots {
		if root.Server != "srb1" {
			continue
		}
		for _, c := range root.Children {
			if c.Server == "srb2" && c.Op == "get" {
				foundChild = true
			}
		}
	}
	if !foundChild {
		var tree strings.Builder
		obs.WriteTree(&tree, roots)
		t.Errorf("no srb2 get child under an srb1 root:\n%s", tree.String())
	}

	// Usage accounting: the put and the failed-over get are charged to
	// alice under /home, with the payload counted both directions.
	urep, err := cl.Usage("alice", "/home")
	if err != nil {
		t.Fatal(err)
	}
	if len(urep.Entries) != 1 {
		t.Fatalf("usage entries = %+v, want exactly alice@/home", urep.Entries)
	}
	u := urep.Entries[0]
	if u.User != "alice" || u.Collection != "/home" {
		t.Fatalf("usage key = %s@%s", u.User, u.Collection)
	}
	if u.Ops < 2 {
		t.Errorf("usage ops = %d, want at least put+get", u.Ops)
	}
	if u.BytesIn < int64(len(payload)) || u.BytesOut < int64(len(payload)) {
		t.Errorf("usage bytes in/out = %d/%d, want >= %d each", u.BytesIn, u.BytesOut, len(payload))
	}
	if u.LastTrace == "" {
		t.Error("usage entry carries no trace join key")
	}

	// The open disk1 breaker degrades readiness to 503.
	if code := probe(t, adminAddr, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("post-outage /healthz = %d, want 503", code)
	}
}

// probe fetches an admin path and returns just the status code.
func probe(t *testing.T, addr, path string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// grepLines keeps only lines containing pat, for focused failure output.
func grepLines(s, pat string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, pat) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
