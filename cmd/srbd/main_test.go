package main

import (
	"testing"

	"gosrb/internal/types"
)

func TestBuildDriver(t *testing.T) {
	cases := []struct {
		spec   string
		class  types.ResourceClass
		driver string
	}{
		{"disk1=posixfs:" + t.TempDir(), types.ClassFileSystem, "posixfs"},
		{"cache=memfs:", types.ClassCache, "memfs"},
		{"cache2=memfs", types.ClassCache, "memfs"},
		{"tape=archivefs:50ms", types.ClassArchive, "archivefs"},
		{"tape2=archivefs:", types.ClassArchive, "archivefs"},
		{"db=dbfs:", types.ClassDatabase, "dbfs"},
	}
	for _, c := range cases {
		name, d, class, driver, err := buildDriver(c.spec)
		if err != nil {
			t.Errorf("buildDriver(%q): %v", c.spec, err)
			continue
		}
		if d == nil || class != c.class || driver != c.driver || name == "" {
			t.Errorf("buildDriver(%q) = %q %v %q", c.spec, name, class, driver)
		}
	}
	for _, bad := range []string{
		"noequals",
		"x=unknown:arg",
		"x=posixfs:", // posixfs needs a root
		"x=archivefs:notaduration",
	} {
		if _, _, _, _, err := buildDriver(bad); err == nil {
			t.Errorf("buildDriver(%q) should fail", bad)
		}
	}
}
