package main

import (
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/faultnet"
	"gosrb/internal/mcat"
	"gosrb/internal/obs"
	"gosrb/internal/server"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// gridZone is a three-server zone with fault injection on every disk:
// the smallest deployment where a grid snapshot is more than a pair and
// a dead member leaves a visible hole.
type gridZone struct {
	inj     *faultnet.Injector
	brokers [3]*core.Broker
	servers [3]*server.Server
	addrs   [3]string
}

func newGridZone(t *testing.T) *gridZone {
	t.Helper()
	z := &gridZone{inj: faultnet.New(chaosSeed)}
	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.MkColl("/home", "admin")
	cat.SetACL("/home", "alice", acl.Write)
	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	names := [3]string{"srb1", "srb2", "srb3"}
	disks := [3]string{"disk1", "disk2", "disk3"}
	for i := range names {
		b := core.New(cat, names[i])
		if err := b.AddPhysicalResource("admin", disks[i], types.ClassFileSystem, "memfs",
			z.inj.WrapDriver(disks[i], memfs.New())); err != nil {
			t.Fatal(err)
		}
		z.brokers[i] = b
		z.servers[i] = server.New(b, authn, server.Proxy)
		addr, err := z.servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		z.addrs[i] = addr
	}
	for i := range names {
		for j := range names {
			if i != j {
				z.servers[i].AddPeer(names[j], z.addrs[j], "zone-secret")
			}
		}
	}
	t.Cleanup(func() {
		for _, s := range z.servers {
			s.Close()
		}
	})
	return z
}

// put writes one object through the given member and closes the client
// before returning, so a later member kill has no connection to drain.
func (z *gridZone) put(t *testing.T, member int, path, resource string) {
	t.Helper()
	cl, err := client.Dial(z.addrs[member], "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Put(path, []byte("grid chaos"), client.PutOpts{Resource: resource})
	cl.Close()
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosGridSnapshotWithDeadMember is the grid-console end-to-end: a
// three-server zone produces traffic on every member, then one member
// dies. A deadline-bounded grid gather from a survivor must return a
// merged snapshot that flags the dead member unreachable and still
// aggregates the survivors — a partial answer, visibly partial, on
// time.
func TestChaosGridSnapshotWithDeadMember(t *testing.T) {
	z := newGridZone(t)
	now := time.Now()
	for _, b := range z.brokers {
		b.Metrics().CaptureRollup(now.Add(-5 * time.Minute))
	}
	z.put(t, 0, "/home/a.dat", "disk1")
	z.put(t, 1, "/home/b.dat", "disk2")
	z.put(t, 2, "/home/c.dat", "disk3")

	// srb3 dies. The gather must not hang on it: one failed dial, one
	// unreachable slot.
	z.servers[2].Close()

	cl, err := client.Dial(z.addrs[0], "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(5 * time.Second)
	start := time.Now()
	rep, err := cl.GridStat(5*time.Minute, true)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("gather took %s, want within the 5s deadline", elapsed)
	}
	if len(rep.Members) != 3 {
		t.Fatalf("members = %+v, want all three slots kept", rep.Members)
	}
	var unreachable []string
	for _, m := range rep.Members {
		if m.Unreachable {
			unreachable = append(unreachable, m.Server)
			if m.Err == "" {
				t.Errorf("unreachable member %s carries no error", m.Server)
			}
		} else if len(m.Window.Ops) == 0 {
			t.Errorf("live member %s reports no window activity", m.Server)
		}
	}
	if len(unreachable) != 1 || unreachable[0] != "srb3" {
		t.Fatalf("unreachable = %v, want exactly srb3", unreachable)
	}
	// The merged aggregate holds the two survivors' ingests.
	if o := rep.Grid.Ops["server.ingest"]; o.Count != 2 {
		t.Errorf("partial grid ingest count = %d, want 2 (survivors only)", o.Count)
	}
}

// TestChaosLatencySpikeTripsSLO injects a deterministic latency spike
// under every read on srb1's disk and drives the SLO evaluator by hand
// (explicit clock, no scheduler): the declared p99 objective must fire
// into the alert log, surface over the wire alerts op, and resolve once
// the spike stops and the window moves past it.
func TestChaosLatencySpikeTripsSLO(t *testing.T) {
	z := newGridZone(t)
	now := time.Now()
	b1 := z.brokers[0]
	b1.Metrics().CaptureRollup(now.Add(-5 * time.Minute))

	rules, err := obs.ParseSLORules("get p99 < 5ms over 5m")
	if err != nil {
		t.Fatal(err)
	}
	ev := obs.NewSLOEvaluator(b1.Metrics(), rules)
	b1.SetSLO(ev)

	z.put(t, 0, "/home/slow.dat", "disk1")
	// Probability 1.0: every disk1 read pays the spike, so the windowed
	// p99 breaches the 5ms objective on every run of the chaos loop.
	z.inj.Target("disk1").SpikeLatency(20*time.Millisecond, 1.0)

	cl, err := client.Dial(z.addrs[0], "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 8; i++ {
		if _, err := cl.Get("/home/slow.dat"); err != nil {
			t.Fatal(err)
		}
	}

	st := ev.Evaluate(now)
	if len(st) != 1 || !st[0].Violating {
		t.Fatalf("spiked eval = %+v, want the p99 rule violating", st)
	}
	if st[0].BurnPct < 100 {
		t.Errorf("burn = %v%%, want the budget blown (>= 100)", st[0].BurnPct)
	}
	alerts := ev.AlertLog().Recent(0)
	if len(alerts) != 1 || !alerts[0].Firing || alerts[0].Rule != "get_p99_5m" {
		t.Fatalf("alert log = %+v, want one FIRED get_p99_5m", alerts)
	}
	if b1.Metrics().Gauge("slo.get_p99_5m.violating").Value() != 1 {
		t.Error("violation gauge not set")
	}

	// The standing is visible over the wire, where `srb alerts` reads.
	rep, err := cl.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || len(rep.Rules) != 1 || !rep.Rules[0].Violating || len(rep.Alerts) != 1 {
		t.Fatalf("wire alerts = %+v, want the firing rule and its transition", rep)
	}

	// Spike ends; the breach ages out of the window and the rule
	// resolves with a second transition.
	z.inj.Target("disk1").Clear()
	b1.Metrics().CaptureRollup(now)
	for i := 0; i < 8; i++ {
		if _, err := cl.Get("/home/slow.dat"); err != nil {
			t.Fatal(err)
		}
	}
	st = ev.Evaluate(now.Add(5 * time.Minute))
	if st[0].Violating {
		t.Fatalf("post-spike eval = %+v, want resolved", st[0])
	}
	alerts = ev.AlertLog().Recent(0)
	if len(alerts) != 2 || alerts[1].Firing {
		t.Fatalf("alert log = %+v, want FIRED then RESOLVED", alerts)
	}
}
