package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"gosrb/internal/client"
)

// buildSrbd compiles the daemon once per test run.
func buildSrbd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "srbd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startSrbd launches the daemon and returns its bound address and a
// stop function that shuts it down gracefully.
func startSrbd(t *testing.T, bin string, extraArgs ...string) (string, func()) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-name", "srb-e2e",
		"-admin-pw", "adminpw",
		"-user", "alice=alicepw",
		"-resource", "disk1=memfs:",
		"-save-every", "0",
	}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The daemon logs "<name> listening on <addr>".
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("srbd did not report a listen address")
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	t.Cleanup(stop)
	return addr, stop
}

// TestDaemonEndToEnd drives the real binary: put/get over TCP, graceful
// shutdown with a snapshot + journal, and recovery on restart.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildSrbd(t)
	state := t.TempDir()
	catalog := filepath.Join(state, "mcat.json")
	journal := filepath.Join(state, "mcat.journal")

	addr, stop := startSrbd(t, bin, "-catalog", catalog, "-journal", journal)

	cl, err := client.Dial(addr, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Mkdir("/home"); err == nil {
		t.Fatal("alice should not create top-level collections")
	}
	admin, err := client.Dial(addr, "admin", "adminpw")
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.Mkdir("/home"); err != nil {
		t.Fatal(err)
	}
	if err := admin.Chmod("/home", "alice", "write"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("/home/persisted.txt", []byte("across restarts"), client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}
	data, err := cl.Get("/home/persisted.txt")
	if err != nil || string(data) != "across restarts" {
		t.Fatalf("get = %q, %v", data, err)
	}
	// Audit over the wire (admin only).
	if _, err := cl.Audit("", "", "", 10); err == nil {
		t.Error("non-admin audit should fail")
	}
	recs, err := admin.Audit("alice", "", "", 10)
	if err != nil || len(recs) == 0 {
		t.Errorf("admin audit = %d records, %v", len(recs), err)
	}
	cl.Close()
	admin.Close()

	// Graceful shutdown snapshots the catalog.
	stop()
	if _, err := os.Stat(catalog); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	// Restart: the catalog (namespace + metadata + ACLs) survives. The
	// bytes do not — disk1 is an in-memory resource — which is exactly
	// what the catalog records as a now-unreachable replica.
	addr2, stop2 := startSrbd(t, bin, "-catalog", catalog, "-journal", journal)
	defer stop2()
	cl2, err := client.Dial(addr2, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	st, err := cl2.Stat("/home/persisted.txt")
	if err != nil {
		t.Fatalf("catalog entry lost across restart: %v", err)
	}
	if st.Size != int64(len("across restarts")) {
		t.Errorf("stat after restart = %+v", st)
	}
	// ACLs survived too: alice can still create under /home.
	if err := cl2.Mkdir("/home/again"); err != nil {
		t.Errorf("ACL lost across restart: %v", err)
	}
}

// TestDaemonJournalRecovery kills the daemon without a graceful
// shutdown: the snapshot is stale, but the journal tail replays.
func TestDaemonJournalRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildSrbd(t)
	state := t.TempDir()
	catalog := filepath.Join(state, "mcat.json")
	journal := filepath.Join(state, "mcat.journal")

	args := []string{
		"-addr", "127.0.0.1:0", "-name", "srb-e2e", "-admin-pw", "adminpw",
		"-resource", "disk1=memfs:", "-save-every", "0",
		"-catalog", catalog, "-journal", journal,
	}
	cmd := exec.Command(bin, args...)
	stderr, _ := cmd.StderrPipe()
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	sc := bufio.NewScanner(stderr)
	deadline := time.After(10 * time.Second)
	found := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				found <- m[1]
				return
			}
		}
	}()
	select {
	case addr = <-found:
	case <-deadline:
		cmd.Process.Kill()
		t.Fatal("no listen address")
	}

	admin, err := client.Dial(addr, "admin", "adminpw")
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.Mkdir("/crash-survivor"); err != nil {
		t.Fatal(err)
	}
	admin.Close()
	// Give the journal writer a moment, then kill hard: no snapshot.
	time.Sleep(200 * time.Millisecond)
	cmd.Process.Kill()
	cmd.Wait()
	if _, err := os.Stat(catalog); err == nil {
		t.Log("note: snapshot exists (unexpected but harmless)")
	}
	raw, err := os.ReadFile(journal)
	if err != nil || !strings.Contains(string(raw), "crash-survivor") {
		t.Fatalf("journal missing the mutation: %v", err)
	}

	// Restart: the journal replays the lost mutation.
	addr2, stop2 := startSrbd(t, bin, "-catalog", catalog, "-journal", journal)
	defer stop2()
	admin2, err := client.Dial(addr2, "admin", "adminpw")
	if err != nil {
		t.Fatal(err)
	}
	defer admin2.Close()
	if _, err := admin2.Stat("/crash-survivor"); err != nil {
		t.Errorf("journal recovery failed: %v", err)
	}
}
