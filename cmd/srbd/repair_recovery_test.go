package main

import (
	"path/filepath"
	"testing"
	"time"

	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/repair"
	"gosrb/internal/replica"
	"gosrb/internal/resilience"
	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// TestRepairQueueRestartRecovery proves the async-replication promise
// survives a daemon crash: an ingest onto an async:1 resource leaves
// two deferred fan-out tasks in the journaled queue, the daemon dies
// before any repair worker runs, and a fresh catalog replayed from the
// journal restores the queue exactly — whereupon a new engine drains it
// and the grid converges to three clean, byte-identical replicas.
func TestRepairQueueRestartRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "mcat.journal")
	members := []string{"d1", "d2", "d3"}
	mems := map[string]*memfs.FS{}
	for _, name := range members {
		mems[name] = memfs.New()
	}

	// First daemon lifetime: journal attached, no repair engine ever
	// started (the "crash" happens before the queue drains).
	j, err := mcat.OpenJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cat1 := mcat.New("admin", "sdsc")
	cat1.SetJournal(j)
	cat1.MkColl("/home", "admin")
	b1 := core.New(cat1, "srb1")
	for _, name := range members {
		if err := b1.AddPhysicalResource("admin", name, types.ClassFileSystem, "memfs", mems[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b1.AddLogicalResourcePolicy("admin", "lr", members, "async:1"); err != nil {
		t.Fatal(err)
	}

	payload := []byte("queued before the crash")
	o, err := b1.Ingest("admin", core.IngestOpts{Path: "/home/f.txt", Data: payload, Resource: "lr"})
	if err != nil {
		t.Fatal(err)
	}
	clean := 0
	for _, r := range o.Replicas {
		if r.Status == types.ReplicaClean {
			clean++
		}
	}
	if clean != 1 || len(o.Replicas) != 3 {
		t.Fatalf("ingest landed %d/%d clean replicas, want 1/3", clean, len(o.Replicas))
	}
	if n, _ := cat1.RepairBacklog(); n != 2 {
		t.Fatalf("backlog after async ingest = %d, want 2", n)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay the journal into a fresh catalog. The queue must
	// come back exactly as it stood.
	cat2 := mcat.New("admin", "sdsc")
	if _, err := cat2.ReplayFile(jpath); err != nil {
		t.Fatal(err)
	}
	pending := cat2.PendingRepairs()
	if len(pending) != 2 {
		t.Fatalf("replayed queue = %d tasks, want 2: %+v", len(pending), pending)
	}
	want := map[string]bool{
		types.RepairKey("/home/f.txt", "d2"): true,
		types.RepairKey("/home/f.txt", "d3"): true,
	}
	for _, p := range pending {
		if !want[p.Key] {
			t.Errorf("unexpected replayed task %+v", p)
		}
		if p.Kind != "replicate" || p.Enqueued.IsZero() {
			t.Errorf("task lost fields in replay: %+v", p)
		}
	}

	// Re-attach the surviving storage and start the engine; the
	// restored queue must converge without any new enqueue.
	b2 := core.New(cat2, "srb1")
	for _, name := range members {
		if err := b2.Remount(name, mems[name]); err != nil {
			t.Fatal(err)
		}
	}
	eng := repair.New(repair.Config{
		Workers: 2,
		Queue:   cat2,
		Exec:    b2.RunRepairTask,
		Metrics: b2.Metrics(),
		Backoff: resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Poll:    5 * time.Millisecond,
		Server:  "srb1",
		Seed:    chaosSeed,
	})
	b2.SetRepair(eng)
	eng.Start()
	t.Cleanup(eng.Stop)

	pollUntil(t, 10*time.Second, func() bool {
		n, _ := cat2.RepairBacklog()
		if n != 0 {
			return false
		}
		obj, err := cat2.GetObject("/home/f.txt")
		if err != nil {
			return false
		}
		for _, r := range obj.Replicas {
			if r.Status != types.ReplicaClean {
				return false
			}
		}
		return true
	}, "restored queue convergence")

	obj, err := cat2.GetObject("/home/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range obj.Replicas {
		data, err := storage.ReadAll(mems[r.Resource], r.PhysicalPath)
		if err != nil {
			t.Fatalf("read %s: %v", r.Resource, err)
		}
		if replica.Checksum(data) != obj.Checksum {
			t.Errorf("replica on %s diverges from catalog checksum", r.Resource)
		}
	}
}
