package main

import (
	"encoding/json"
	"testing"
	"time"

	"gosrb/internal/client"
	"gosrb/internal/obs"
)

// TestChaosFlightRecorder is the flight-recorder end-to-end: a seeded
// latency spike trips the p99 SLO rule, the FIRED transition captures
// an incident bundle (profiles, span trees, window stats), and the
// bundle is retrievable over the wire. Then the daemon "restarts" —
// telemetry is flushed, a fresh registry restores from disk — and the
// windowed history over the pre-restart interval, the alert log and the
// peer transfer table all survive. Deterministic: explicit clocks, a
// 1.0-probability spike and a synchronous on-fire hook, so the 10x
// -race chaos loop replays it exactly.
func TestChaosFlightRecorder(t *testing.T) {
	z := newGridZone(t)
	now := time.Now()
	b1 := z.brokers[0]
	b1.Metrics().CaptureRollup(now.Add(-5 * time.Minute))

	dir := t.TempDir()
	telem, err := obs.OpenTelemetryStore(dir, "srb1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := obs.NewIncidentRecorder(obs.IncidentConfig{
		Dir:        dir + "/incidents",
		Server:     "srb1",
		Registry:   b1.Metrics(),
		MinGap:     time.Minute,
		ProfileDur: 10 * time.Millisecond,
		Extra: func() map[string][]byte {
			b, _ := json.Marshal(b1.Breakers().States())
			return map[string][]byte{"breakers.json": b}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b1.SetIncidents(rec)

	rules, err := obs.ParseSLORules("get p99 < 5ms over 5m")
	if err != nil {
		t.Fatal(err)
	}
	ev := obs.NewSLOEvaluator(b1.Metrics(), rules)
	b1.SetSLO(ev)
	// Synchronous on-fire capture: the daemons run this on a goroutine
	// (the CPU profile sleeps), but the test wants the bundle on disk the
	// moment Evaluate returns.
	var fired []obs.IncidentMeta
	ev.SetOnFire(func(at time.Time, rule obs.SLORule, alert obs.Alert) {
		m, err := rec.Capture(at, rule.Name, "slo-fired", alert.Detail, rule.Window)
		if err != nil {
			t.Errorf("on-fire capture: %v", err)
			return
		}
		fired = append(fired, m)
	})

	z.put(t, 0, "/home/slow.dat", "disk1")
	z.inj.Target("disk1").SpikeLatency(20*time.Millisecond, 1.0)
	cl, err := client.Dial(z.addrs[0], "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 8; i++ {
		if _, err := cl.Get("/home/slow.dat"); err != nil {
			t.Fatal(err)
		}
	}

	st := ev.Evaluate(now)
	if len(st) != 1 || !st[0].Violating {
		t.Fatalf("spiked eval = %+v, want the p99 rule violating", st)
	}
	if len(fired) != 1 {
		t.Fatalf("on-fire captured %d bundles, want exactly 1", len(fired))
	}
	// A second violating evaluation within MinGap must not double up.
	if ev.Evaluate(now.Add(time.Second)); len(fired) != 1 {
		t.Fatalf("re-evaluation grew the bundle count to %d (FIRED-only hook broken)", len(fired))
	}

	// The bundle is complete and served over the wire ops `srb incident
	// list` / `srb incident get` read.
	lrep, err := cl.Incidents()
	if err != nil {
		t.Fatal(err)
	}
	if !lrep.Enabled || len(lrep.Incidents) != 1 || lrep.Incidents[0].ID != fired[0].ID {
		t.Fatalf("wire incident index = %+v, want the captured bundle", lrep)
	}
	grep, err := cl.IncidentGet(fired[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if grep.Meta.Rule != "get_p99_5m" || grep.Meta.Reason != "slo-fired" {
		t.Fatalf("bundle meta = %+v", grep.Meta)
	}
	for _, want := range []string{"cpu.pprof", "heap.pprof", "spans.txt", "window.json", "breakers.json"} {
		if len(grep.Files[want]) == 0 {
			t.Errorf("bundle missing %s (have %d files)", want, len(grep.Files))
		}
	}
	var ws obs.WindowStats
	if err := json.Unmarshal(grep.Files["window.json"], &ws); err != nil {
		t.Fatalf("window.json: %v", err)
	}
	if o := ws.Ops["server.get"]; o.Count != 8 || o.P99Micros < 5000 {
		t.Errorf("bundle window = %d gets p99 %vµs, want 8 gets over the 5ms objective", o.Count, o.P99Micros)
	}

	// Manual capture over the wire (a different rule slot, so the SLO
	// gap does not suppress it).
	crep, err := cl.IncidentCapture("operator drill")
	if err != nil {
		t.Fatal(err)
	}
	if crep.Meta.Rule != "manual" || crep.Meta.Detail != "operator drill" {
		t.Fatalf("manual capture meta = %+v", crep.Meta)
	}

	// The observatory saw the spiked disk reads (resource rows ride the
	// replica read path) and answers over the wire.
	prep, err := cl.Peers()
	if err != nil {
		t.Fatal(err)
	}
	var disk1 *obs.PeerStat
	for i := range prep.Peers {
		if prep.Peers[i].Resource == "disk1" && prep.Peers[i].Peer == "" {
			disk1 = &prep.Peers[i]
		}
	}
	if disk1 == nil || disk1.Ops < 8 {
		t.Fatalf("peer observatory = %+v, want a disk1 resource row with >= 8 reads", prep.Peers)
	}
	if disk1.EWMALatMicros < 5000 {
		t.Errorf("disk1 EWMA latency %vµs, want the 20ms spike visible", disk1.EWMALatMicros)
	}

	// "Restart": capture the tail, flush, close; restore into a fresh
	// registry. The pre-restart window, alert history and peer table must
	// all come back.
	b1.Metrics().CaptureRollup(now)
	if err := telem.Flush(b1.Metrics(), ev.AlertLog(), now); err != nil {
		t.Fatal(err)
	}
	if err := telem.Close(b1.Metrics(), ev.AlertLog(), now); err != nil {
		t.Fatal(err)
	}
	telem2, err := obs.OpenTelemetryStore(dir, "srb1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	snap, err := telem2.Restore(reg2)
	if err != nil {
		t.Fatal(err)
	}
	rws := reg2.WindowAt(now, 5*time.Minute)
	if o := rws.Ops["server.get"]; o.Count != 8 || o.P99Micros < 5000 {
		t.Fatalf("restored window = %d gets p99 %vµs, want the pre-restart 8 spiked gets", o.Count, o.P99Micros)
	}
	if len(snap.Alerts) == 0 || !snap.Alerts[0].Firing || snap.Alerts[0].Rule != "get_p99_5m" {
		t.Fatalf("restored alerts = %+v, want the FIRED transition first", snap.Alerts)
	}
	var rdisk1 *obs.PeerStat
	peers := reg2.Peers().Snapshot()
	for i := range peers {
		if peers[i].Resource == "disk1" && peers[i].Peer == "" {
			rdisk1 = &peers[i]
		}
	}
	if rdisk1 == nil || rdisk1.Ops != disk1.Ops || rdisk1.EWMALatMicros != disk1.EWMALatMicros {
		t.Fatalf("restored peer table = %+v, want the disk1 row intact (%+v)", peers, disk1)
	}
	// The incident index survives restarts by construction (it is the
	// directory listing).
	rec2, err := obs.NewIncidentRecorder(obs.IncidentConfig{Dir: dir + "/incidents", Server: "srb1", Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec2.List()); got != 2 {
		t.Fatalf("post-restart incident index holds %d bundles, want 2", got)
	}
}
