package main

import (
	"errors"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/server"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// TestChaosShardFailover is the sharded-catalog chaos end-to-end: two
// in-process servers, the first the leader of every catalog shard, the
// second a follower replicating over the real wire protocol
// (shardpull). The leader dies mid-write; during the outage window the
// follower's queries must still answer but report the stale shards as
// partial and its mutations must be rejected as read-only; after the
// failover threshold the follower promotes itself, accepts writes, and
// serves complete queries again. Replication is pull-driven through
// explicit SyncOnce calls, so every run replays the same schedule.
func TestChaosShardFailover(t *testing.T) {
	const shards = 2

	leadCat := shard.NewRouter(shards, "admin", "sdsc")
	leadCat.EnableMemoryJournals()
	leadCat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	leadCat.MkColl("/home", "admin")
	leadCat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(leadCat, "srb1")
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		t.Fatal(err)
	}

	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	s1 := server.New(b1, authn, server.Proxy)
	t.Cleanup(func() { s1.Close() })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The follower server mirrors every shard off srb1 over the wire:
	// each pull is a fresh authenticated dial, so killing srb1 fails
	// pulls the way a dead peer would.
	folCat := shard.NewRouter(shards, "admin", "sdsc")
	folCat.EnableMemoryJournals()
	for i := 0; i < shards; i++ {
		folCat.SetFollower(i, addr1)
	}
	folCat.SetPuller(func(peer string, idx int, after uint64) (shard.PullResult, error) {
		pc, err := client.Dial(peer, "admin", "adminpw")
		if err != nil {
			return shard.PullResult{}, err
		}
		defer pc.Close()
		rep, err := pc.ShardPull(idx, after)
		if err != nil {
			return shard.PullResult{}, err
		}
		return shard.PullResult{Entries: rep.Entries, Snapshot: rep.Snapshot, Seq: rep.Seq}, nil
	}, 3)

	b2 := core.New(folCat, "srb2")
	s2 := server.New(b2, authn, server.Proxy)
	t.Cleanup(func() { s2.Close() })
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cl1, err := client.Dial(addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := client.Dial(addr2, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	// Seed the leader and replicate: collections on both sides of the
	// shard split, objects with queryable metadata.
	for _, p := range []string{"/home/alice", "/home/alice/run1", "/home/bob", "/home/bob/run2"} {
		if err := cl1.Mkdir(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{"/home/alice/run1/a.dat", "/home/bob/run2/b.dat"} {
		if _, err := cl1.Put(p, []byte("payload"), client.PutOpts{Resource: "disk1"}); err != nil {
			t.Fatal(err)
		}
		if err := cl1.AddMeta(p, types.MetaUser, types.AVU{Name: "experiment", Value: "e1"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := folCat.SyncOnce(); err != nil {
		t.Fatalf("initial sync: %v", err)
	}

	q := mcat.Query{Scope: "/home", Conds: []mcat.Condition{{Attr: "experiment", Op: "=", Value: "e1"}}}
	hits, partial, err := cl2.QueryPartial(q)
	if err != nil || len(hits) != 2 || len(partial) != 0 {
		t.Fatalf("replicated query = %d hits, partial %v, err %v", len(hits), partial, err)
	}

	// Kill the leader mid-write: this mutation lands in the leader's
	// journal after the last pull, inside the asynchronous replication
	// window, and dies with the server.
	if err := cl1.AddMeta("/home/alice/run1/a.dat", types.MetaUser, types.AVU{Name: "lost", Value: "in-flight"}); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Outage window: the first failed pull marks every shard stale.
	if err := folCat.SyncOnce(); err == nil {
		t.Fatal("SyncOnce against a dead leader must fail")
	}
	hits, partial, err = cl2.QueryPartial(q)
	if err != nil {
		t.Fatalf("query during outage: %v", err)
	}
	if len(hits) != 2 {
		t.Errorf("stale query lost data: %d hits", len(hits))
	}
	if len(partial) != shards {
		t.Errorf("partial = %v, want every shard named", partial)
	}
	for i, want := 0, map[string]bool{"shard-0": true, "shard-1": true}; i < len(partial); i++ {
		if !want[partial[i]] {
			t.Errorf("partial[%d] = %q, not a shard name", i, partial[i])
		}
	}
	// Follower shards reject writes while they still follow.
	if err := cl2.Mkdir("/home/alice/blocked"); !errors.Is(err, types.ErrReadOnly) {
		t.Errorf("write to follower = %v, want %v", err, types.ErrReadOnly)
	}

	// Two more failed pulls reach the threshold: self-promotion.
	folCat.SyncOnce()
	folCat.SyncOnce()
	for i := 0; i < shards; i++ {
		if role, _ := folCat.Role(i); role != shard.Leader {
			t.Fatalf("shard %d role = %v after threshold, want leader", i, role)
		}
	}

	// Promoted: writes land, queries are complete again, and the state
	// is everything that replicated before the crash — the in-flight
	// mutation died inside the async window.
	if err := cl2.Mkdir("/home/alice/after-failover"); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	hits, partial, err = cl2.QueryPartial(q)
	if err != nil || len(hits) != 2 || len(partial) != 0 {
		t.Fatalf("post-failover query = %d hits, partial %v, err %v", len(hits), partial, err)
	}
	avus, err := cl2.GetMeta("/home/alice/run1/a.dat", types.MetaUser)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range avus {
		if a.Name == "lost" {
			t.Error("mutation from inside the replication window survived the crash")
		}
	}

	// The shard-status op reflects the takeover.
	rep, err := cl2.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != shards {
		t.Fatalf("Shards() = %d rows", len(rep.Shards))
	}
	for _, st := range rep.Shards {
		if st.Role != string(shard.Leader) || st.Stale {
			t.Errorf("shard %d status = %+v after promotion", st.Shard, st)
		}
	}
}
