// Command srbd runs a federated SRB server: it mounts storage drivers
// for the resources it owns, serves the wire protocol, and participates
// in a zone with peer servers.
//
// Example:
//
//	srbd -addr :5544 -name srb1 \
//	     -resource disk1=posixfs:/var/srb/vault1 \
//	     -resource cache1=memfs: \
//	     -resource arch1=archivefs:50ms \
//	     -user alice=alicepw \
//	     -peer srb2=host2:5544=zonesecret \
//	     -catalog /var/srb/mcat.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/obs"
	"gosrb/internal/repair"
	"gosrb/internal/resilience"
	"gosrb/internal/server"
	"gosrb/internal/storage"
	"gosrb/internal/storage/archivefs"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/storage/posixfs"
	"gosrb/internal/types"
)

// repeated collects repeatable string flags.
type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var (
		addr      = flag.String("addr", ":5544", "listen address")
		adminAddr = flag.String("admin-addr", "", "admin HTTP listen address for /metrics, /healthz and /debug/pprof (empty disables)")
		quiet     = flag.Bool("quiet", false, "log only errors (default logs every failed operation with op/remote/trace context)")
		name      = flag.String("name", "srb1", "server name within the federation")
		adminUser = flag.String("admin", "admin", "administrator user name")
		adminPw   = flag.String("admin-pw", os.Getenv("SRB_ADMIN_PW"), "administrator password (or $SRB_ADMIN_PW)")
		catalog   = flag.String("catalog", "", "MCAT snapshot file to load at start and save on exit")
		journal   = flag.String("journal", "", "MCAT append log; replayed over the snapshot at start, rotated at each snapshot")

		mcatShards    = flag.Int("mcat-shards", 1, "MCAT partition count; 1 keeps the monolithic catalog and its on-disk layout, N shards the namespace across <catalog>.shard<i> files with scatter-gather queries")
		mcatFollow    = flag.String("mcat-follow", "", "leader daemon address: this daemon's catalog becomes a read-only follower replicating every shard's journal stream from it (admin credentials must match)")
		mcatSyncEvery = flag.Duration("mcat-sync-every", 2*time.Second, "follower replication pull interval (with -mcat-follow)")
		mode          = flag.String("mode", "proxy", "federation mode: proxy or redirect")
		saveEvery     = flag.Duration("save-every", time.Minute, "catalog autosave interval (0 disables)")
		syncEvery     = flag.Duration("sync-every", time.Minute, "dirty-replica sweep interval (0 disables)")
		dialTO        = flag.Duration("dial-timeout", resilience.DialTimeout, "TCP dial timeout for federation peers")
		brkTrip       = flag.Int("breaker-threshold", resilience.DefaultBreakerConfig.Threshold, "consecutive failures before a peer/resource circuit breaker opens")
		brkCool       = flag.Duration("breaker-cooldown", resilience.DefaultBreakerConfig.Cooldown, "how long an open circuit breaker waits before a half-open probe")
		slowOp        = flag.Duration("slow-op", 0, "log the full span tree of any operation slower than this (0 disables)")

		repairWorkers = flag.Int("repair-workers", 2, "background repair worker goroutines draining the async-replication/scrub queue (0 leaves the queue undrained)")
		scrubEvery    = flag.Duration("scrub-interval", 0, "anti-entropy scrub interval: re-hash every replica against the catalog checksum and repair divergence (0 disables)")

		rollupEvery = flag.Duration("rollup-interval", obs.DefaultRollupInterval, "telemetry rollup capture interval feeding /metrics?window=, /grid and srb top (0 disables windowed stats)")
	heatDecay   = flag.Duration("heat-decay", time.Minute, "hot-key/hot-object score decay interval: each tick halves the heat scores so the top-K tracks the current workload, not all-time totals (0 disables decay)")
	adviseEvery = flag.Duration("advise-interval", time.Minute, "rebalance advisor interval: joins shard heat, key balance and ring ownership into a dry-run migration plan served by srb heat and /heat (0 disables)")
		sloRules    = flag.String("slo-rules", "", "SLO rules file, one rule per line (e.g. 'get p99 < 50ms over 5m'); empty disables SLO evaluation")
		sloEvery    = flag.Duration("slo-interval", 30*time.Second, "how often declared SLO rules are evaluated against the rollup ring")

		exemplarMin = flag.Duration("exemplar-threshold", obs.DefaultExemplarThreshold, "retain a tail exemplar (trace ID) on latency buckets at or above this duration; 0 keeps one per bucket regardless")

		telemetryDir = flag.String("telemetry-dir", "", "flight recorder directory: durable telemetry journal plus incident bundles, restored at boot (empty disables)")
		telemetryRet = flag.Duration("telemetry-retention", 24*time.Hour, "how much telemetry and incident history survives compaction (0 keeps whatever the rings retain)")
	)
	var resources, users, peers, logicals, asyncRepl repeated
	flag.Var(&resources, "resource", "physical resource: name=driver:arg (driver: posixfs|memfs|archivefs|dbfs); repeatable")
	flag.Var(&logicals, "logical", "logical resource: name=member1,member2; repeatable")
	flag.Var(&asyncRepl, "async-repl", "async replication policy for a logical resource: name=k (k replicas written synchronously, the rest via the repair queue); repeatable")
	flag.Var(&users, "user", "user account: name=password; repeatable")
	flag.Var(&peers, "peer", "federation peer: name=addr=secret; repeatable")
	flag.Parse()

	logger := log.New(os.Stderr, "srbd: ", log.LstdFlags)
	if *adminPw == "" {
		*adminPw = "admin"
		logger.Printf("warning: using default admin password; set -admin-pw")
	}

	// The catalog boots through the shard store. With -mcat-shards 1
	// (the default) this is exactly the old monolithic sequence — same
	// snapshot file, same journal file, same replay order; with N it
	// loads the journaled shard map and the per-shard file layout,
	// rebalancing first when the configured count changed.
	store, err := shard.Open(shard.OpenOptions{
		Shards:      *mcatShards,
		CatalogPath: *catalog,
		JournalPath: *journal,
		Admin:       *adminUser,
		Domain:      "local",
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Fatalf("mcat: %v", err)
	}
	cat := store.Router()
	// snapshot saves every shard and rotates its journal; the fresh
	// journal swaps in *before* each save, so mutations concurrent with
	// the snapshot land in the new journal (replay is idempotent, so an
	// entry captured by both is harmless on recovery).
	snapshot := func() {
		if err := store.Snapshot(); err != nil {
			logger.Printf("snapshot: %v", err)
		}
	}
	broker := core.New(cat, *name)
	broker.Metrics().SetExemplarThreshold(*exemplarMin)
	cat.SetMetrics(broker.Metrics())
	// Corrupt or truncated journal lines skipped during boot replay are
	// kept visible as a metric, not just a boot log line.
	broker.Metrics().Counter("mcat.journal.replay.skipped").Add(int64(store.ReplaySkipped))

	// Durable telemetry: restore the previous run's windowed history,
	// usage and peer observatory before any job captures new rollups, so
	// `srb top -window 1h` and SLO burn math answer across the restart.
	var telem *obs.TelemetryStore
	var restoredAlerts []obs.Alert
	if *telemetryDir != "" {
		var err error
		telem, err = obs.OpenTelemetryStore(*telemetryDir, *name, *telemetryRet)
		if err != nil {
			logger.Fatalf("telemetry: %v", err)
		}
		snap, err := telem.Restore(broker.Metrics())
		if err != nil {
			logger.Fatalf("telemetry restore: %v", err)
		}
		restoredAlerts = snap.Alerts
		if len(snap.Rollups)+len(snap.Alerts)+len(snap.Peers) > 0 {
			logger.Printf("telemetry restored: %d rollups, %d alerts, %d peer rows",
				len(snap.Rollups), len(snap.Alerts), len(snap.Peers))
		}
	}

	authn := auth.New()
	authn.Register(*adminUser, *adminPw)
	for _, u := range users {
		parts := strings.SplitN(u, "=", 2)
		if len(parts) != 2 {
			logger.Fatalf("bad -user %q (want name=password)", u)
		}
		authn.Register(parts[0], parts[1])
		if _, err := cat.GetUser(parts[0]); err != nil {
			cat.AddUser(types.User{Name: parts[0], Domain: "local"})
		}
	}

	for _, spec := range resources {
		rname, d, class, driver, err := buildDriver(spec)
		if err != nil {
			logger.Fatalf("-resource %q: %v", spec, err)
		}
		if _, err := cat.GetResource(rname); err == nil {
			logger.Printf("resource %s already in catalog; mounting driver", rname)
			// Re-mount after a catalog reload: driver registration only.
			if err := remount(broker, rname, d); err != nil {
				logger.Fatalf("remount %s: %v", rname, err)
			}
			continue
		}
		if err := broker.AddPhysicalResource(*adminUser, rname, class, driver, d); err != nil {
			logger.Fatalf("register %s: %v", rname, err)
		}
	}
	for _, spec := range logicals {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			logger.Fatalf("bad -logical %q (want name=m1,m2)", spec)
		}
		if _, err := cat.GetResource(parts[0]); err == nil {
			continue
		}
		if err := broker.AddLogicalResource(*adminUser, parts[0], strings.Split(parts[1], ",")); err != nil {
			logger.Fatalf("logical %s: %v", parts[0], err)
		}
	}
	for _, spec := range asyncRepl {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			logger.Fatalf("bad -async-repl %q (want name=k)", spec)
		}
		if err := cat.SetResourcePolicy(parts[0], "async:"+parts[1]); err != nil {
			logger.Fatalf("async-repl %s: %v", parts[0], err)
		}
		logger.Printf("resource %s replication policy async:%s", parts[0], parts[1])
	}

	fedMode := server.Proxy
	if *mode == "redirect" {
		fedMode = server.Redirect
	}
	srv := server.New(broker, authn, fedMode)
	srv.SetDialTimeout(*dialTO)
	srv.SetSlowOpThreshold(*slowOp)
	broker.Breakers().SetConfig(resilience.BreakerConfig{Threshold: *brkTrip, Cooldown: *brkCool})
	srv.Logger = obs.NewLogger(os.Stderr, *name, obs.LevelInfo)
	if *quiet {
		srv.Logger.SetLevel(obs.LevelError)
	}
	for _, p := range peers {
		parts := strings.SplitN(p, "=", 3)
		if len(parts) != 3 {
			logger.Fatalf("bad -peer %q (want name=addr=secret)", p)
		}
		srv.AddPeer(parts[0], parts[1], parts[2])
	}

	// Background maintenance: the repair engine drains the journaled
	// async-replication queue and, when enabled, runs the anti-entropy
	// scrubber on a jittered schedule.
	eng := repair.New(repair.Config{
		Workers:  *repairWorkers,
		Queue:    cat,
		Exec:     broker.RunRepairTask,
		Metrics:  broker.Metrics(),
		Breakers: broker.Breakers(),
		Server:   *name,
	})
	if *scrubEvery > 0 {
		eng.AddJob("scrub", *scrubEvery, 0.2, func(sp *obs.Span) error {
			rpt := broker.ScrubSubtree("/", sp)
			if rpt.Corrupt+rpt.Repaired+rpt.Replicated+rpt.Enqueued > 0 {
				logger.Printf("scrub: %d corrupt, %d repaired, %d replicated, %d enqueued (%d objects)",
					rpt.Corrupt, rpt.Repaired, rpt.Replicated, rpt.Enqueued, rpt.Objects)
			}
			return nil
		})
	}
	// Windowed telemetry rides the same scheduler: the rollup job
	// snapshots the registry into the time-series ring, the SLO job
	// evaluates declared objectives against it.
	if *rollupEvery > 0 {
		eng.AddJob("rollup", *rollupEvery, 0.1, func(sp *obs.Span) error {
			broker.Metrics().CaptureRollup(time.Now())
			return nil
		})
	}
	// The heat observatory rides the scheduler too: the decay job keeps
	// the top-K tracking the current workload, the advisor job refreshes
	// replication-lag gauges and recomputes the dry-run rebalance plan.
	if *heatDecay > 0 {
		eng.AddJob("heat.decay", *heatDecay, 0.1, func(sp *obs.Span) error {
			broker.Metrics().HeatKeys().Decay(0.5)
			broker.Metrics().HeatObjects().Decay(0.5)
			return nil
		})
	}
	if *adviseEvery > 0 {
		eng.AddJob("advisor", *adviseEvery, 0.1, func(sp *obs.Span) error {
			now := time.Now()
			cat.RefreshReplag(now)
			plan := cat.Advise(broker.Metrics().HeatKeys().Snapshot(), now)
			if len(plan.Moves) > 0 {
				logger.Printf("advisor: imbalance %.2fx, %d move(s) proposed (projected %.2fx); see srb heat",
					plan.Imbalance, len(plan.Moves), plan.Projected)
			}
			return nil
		})
	}
	if *sloRules != "" {
		src, err := os.ReadFile(*sloRules)
		if err != nil {
			logger.Fatalf("slo rules: %v", err)
		}
		rules, err := obs.ParseSLORules(string(src))
		if err != nil {
			logger.Fatalf("slo rules: %v", err)
		}
		ev := obs.NewSLOEvaluator(broker.Metrics(), rules)
		// Restored alert history seeds the fresh log so `srb alerts` and
		// the telemetry journal's sequence numbers continue seamlessly.
		for _, a := range restoredAlerts {
			ev.AlertLog().Add(a)
		}
		broker.SetSLO(ev)
		eng.AddJob("slo", *sloEvery, 0.1, func(sp *obs.Span) error {
			for _, st := range ev.Evaluate(time.Now()) {
				if st.Violating {
					sp.Event(obs.EventSLO, fmt.Sprintf("%s violating burn=%.0f%%", st.Rule, st.BurnPct))
				}
			}
			return nil
		})
		logger.Printf("%d SLO rule(s) from %s, evaluated every %s", len(rules), *sloRules, *sloEvery)
	}
	// The flight recorder: incident bundles on SLO fire (or on demand via
	// `srb incident capture`), and a journal flush job riding the repair
	// scheduler that also prunes aged-out bundles.
	if telem != nil {
		rec, err := obs.NewIncidentRecorder(obs.IncidentConfig{
			Dir:      filepath.Join(*telemetryDir, "incidents"),
			Server:   *name,
			Registry: broker.Metrics(),
			Extra: func() map[string][]byte {
				files := make(map[string][]byte)
				if b, err := json.Marshal(srv.GridStat(5 * time.Minute)); err == nil {
					files["grid.json"] = b
				}
				if b, err := json.Marshal(broker.Breakers().States()); err == nil {
					files["breakers.json"] = b
				}
				if b, err := json.Marshal(eng.Status()); err == nil {
					files["repair.json"] = b
				}
				return files
			},
		})
		if err != nil {
			logger.Fatalf("flight recorder: %v", err)
		}
		broker.SetIncidents(rec)
		if ev := broker.SLO(); ev != nil {
			ev.SetOnFire(func(now time.Time, rule obs.SLORule, alert obs.Alert) {
				// Capture off the evaluation goroutine: the CPU profile
				// sleeps ~2s and must not stall the SLO job.
				go func() {
					meta, err := rec.Capture(now, rule.Name, "slo-fired", alert.Detail, rule.Window)
					switch {
					case err == nil:
						logger.Printf("incident captured: %s", meta.ID)
					case !errors.Is(err, obs.ErrRateLimited):
						logger.Printf("incident capture: %v", err)
					}
				}()
			})
		}
		eng.AddJob("telemetry", obs.DefaultTelemetryFlush, 0.1, func(sp *obs.Span) error {
			var alog *obs.AlertLog
			if ev := broker.SLO(); ev != nil {
				alog = ev.AlertLog()
			}
			if err := telem.Flush(broker.Metrics(), alog, time.Now()); err != nil {
				return err
			}
			if *telemetryRet > 0 {
				rec.Prune(time.Now().Add(-*telemetryRet))
			}
			return nil
		})
		logger.Printf("flight recorder on %s (retention %s)", *telemetryDir, *telemetryRet)
	}
	// Follower mode: every shard of this daemon's catalog replicates
	// the same-numbered shard of the leader daemon, pulling journal
	// entries (or a snapshot when too far behind) on a repair-engine
	// job. Repeated pull failures promote the shards to leader.
	if *mcatFollow != "" {
		leader := *mcatFollow
		for i := 0; i < cat.N(); i++ {
			cat.SetFollower(i, leader)
		}
		cat.SetPuller(func(peer string, shardIdx int, after uint64) (shard.PullResult, error) {
			cl, err := client.Dial(peer, *adminUser, *adminPw)
			if err != nil {
				return shard.PullResult{}, err
			}
			defer cl.Close()
			rep, err := cl.ShardPull(shardIdx, after)
			if err != nil {
				return shard.PullResult{}, err
			}
			return shard.PullResult{Entries: rep.Entries, Snapshot: rep.Snapshot, Seq: rep.Seq}, nil
		}, shard.DefaultPromoteAfter)
		eng.AddJob("shard.sync", *mcatSyncEvery, 0.1, func(sp *obs.Span) error {
			err := cat.SyncOnce()
			cat.RefreshReplag(time.Now())
			return err
		})
		logger.Printf("mcat follower of %s (pull every %s)", leader, *mcatSyncEvery)
	}
	broker.SetRepair(eng)
	eng.Start()
	if n, _ := cat.RepairBacklog(); n > 0 {
		logger.Printf("repair queue restored with %d pending task(s)", n)
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("%s version %s listening on %s (%s federation)", *name, obs.Version, bound, *mode)
	if *adminAddr != "" {
		abound, err := srv.ServeAdmin(*adminAddr)
		if err != nil {
			logger.Fatalf("admin listen: %v", err)
		}
		logger.Printf("admin endpoint on http://%s (/metrics /healthz /debug/pprof)", abound)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *catalog != "" && *saveEvery > 0 {
		go func() {
			for range time.Tick(*saveEvery) {
				snapshot()
			}
		}()
	}
	if *syncEvery > 0 {
		go func() {
			for range time.Tick(*syncEvery) {
				if n, err := broker.SyncAllDirty(*adminUser); err == nil && n > 0 {
					logger.Printf("replica sweep refreshed %d replicas", n)
				}
			}
		}()
	}
	<-stop
	logger.Printf("shutting down")
	srv.Close()
	eng.Stop()
	if n, _ := cat.RepairBacklog(); n > 0 {
		logger.Printf("repair queue holds %d task(s); journal preserves them for the next start", n)
	}
	// One final stats line so the run's totals survive in the log even
	// when no scraper ever hit the admin endpoint.
	snap := broker.Metrics().Snapshot()
	var totalOps, totalErrs int64
	for _, o := range snap.Ops {
		totalOps += o.Count
		totalErrs += o.Errors
	}
	logger.Printf("final stats: uptime=%.0fs ops=%d errors=%d audit_dropped=%d",
		snap.UptimeSeconds, totalOps, totalErrs, cat.AuditLog().Dropped())
	if telem != nil {
		var alog *obs.AlertLog
		if ev := broker.SLO(); ev != nil {
			alog = ev.AlertLog()
		}
		if err := telem.Close(broker.Metrics(), alog, time.Now()); err != nil {
			logger.Printf("telemetry close: %v", err)
		}
	}
	snapshot()
	store.Close()
	if *catalog != "" {
		logger.Printf("catalog saved to %s", *catalog)
	}
}

// buildDriver parses name=driver:arg and constructs the storage driver.
func buildDriver(spec string) (name string, d storage.Driver, class types.ResourceClass, driver string, err error) {
	eq := strings.SplitN(spec, "=", 2)
	if len(eq) != 2 {
		return "", nil, 0, "", fmt.Errorf("want name=driver:arg")
	}
	name = eq[0]
	da := strings.SplitN(eq[1], ":", 2)
	driver = da[0]
	arg := ""
	if len(da) == 2 {
		arg = da[1]
	}
	switch driver {
	case "posixfs":
		if arg == "" {
			return "", nil, 0, "", fmt.Errorf("posixfs needs a root directory")
		}
		fs, ferr := posixfs.New(arg)
		return name, fs, types.ClassFileSystem, driver, ferr
	case "memfs":
		return name, memfs.New(), types.ClassCache, driver, nil
	case "archivefs":
		cfg := archivefs.Config{StageLatency: 100 * time.Millisecond}
		if arg != "" {
			lat, perr := time.ParseDuration(arg)
			if perr != nil {
				return "", nil, 0, "", fmt.Errorf("archivefs latency %q: %v", arg, perr)
			}
			cfg.StageLatency = lat
		}
		return name, archivefs.New(cfg), types.ClassArchive, driver, nil
	case "dbfs":
		return name, dbfs.New(), types.ClassDatabase, driver, nil
	default:
		return "", nil, 0, "", fmt.Errorf("unknown driver %q", driver)
	}
}

// remount installs a driver for a resource already present in a loaded
// catalog. It bypasses AddPhysicalResource's catalog insert.
func remount(b *core.Broker, name string, d storage.Driver) error {
	// The broker has no public remount; register under a throwaway
	// catalog entry is wrong, so reach the maps through a tiny shim.
	return b.Remount(name, d)
}
