package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/mysrb"
	"gosrb/internal/obs"
	"gosrb/internal/server"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// TestChaosHeatObservatory is the heat-observatory end-to-end: a
// four-shard leader runs a seeded hot-key workload while a wire-
// replicated follower lags behind. The hot prefix must surface in the
// top-K on every surface (the heat wire op, the admin /heat endpoint,
// the MySRB heat page), the follower's lag gauge must trip a declared
// replag_seconds SLO rule that FIREs and then RESOLVEs after a sync,
// /healthz must warn about the lag without going 503, and the rebalance
// advisor must propose moving the hot prefix off the overloaded shard.
// All timing-sensitive state is driven by explicit RefreshReplag calls
// with synthetic clocks so the schedule replays identically under -race.
func TestChaosHeatObservatory(t *testing.T) {
	const shards = 4

	leadCat := shard.NewRouter(shards, "admin", "sdsc")
	leadCat.EnableMemoryJournals()
	leadCat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	leadCat.MkColl("/home", "admin")
	leadCat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(leadCat, "srb1")
	leadCat.SetMetrics(b1.Metrics())
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		t.Fatal(err)
	}

	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	s1 := server.New(b1, authn, server.Proxy)
	t.Cleanup(func() { s1.Close() })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	admin1, err := s1.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Pick workload prefixes off the deterministic ring: a hot and a
	// warm prefix co-homed on one shard (the overload target), plus a
	// background prefix somewhere else.
	var hot, warm, cold string
	candidates := make([]string, 0, 16)
	for c := 'a'; c <= 'p'; c++ {
		candidates = append(candidates, fmt.Sprintf("/home/proj-%c", c))
	}
	hot = candidates[0]
	home := leadCat.Map().Shard(hot)
	for _, p := range candidates[1:] {
		switch {
		case warm == "" && leadCat.Map().Shard(p) == home:
			warm = p
		case cold == "" && leadCat.Map().Shard(p) != home:
			cold = p
		}
	}
	if warm == "" || cold == "" {
		t.Fatalf("ring layout gave no co-homed pair among %v", candidates)
	}

	cl1, err := client.Dial(addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()

	// Seed and run the skewed workload: the hot prefix takes an order of
	// magnitude more reads than the background one.
	reads := map[string]int{hot: 60, warm: 20, cold: 5}
	for _, prefix := range []string{hot, warm, cold} {
		if err := cl1.Mkdir(prefix); err != nil {
			t.Fatal(err)
		}
		obj := prefix + "/data.dat"
		if _, err := cl1.Put(obj, []byte(strings.Repeat("x", 256)), client.PutOpts{Resource: "disk1"}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < reads[prefix]; i++ {
			if _, err := cl1.Get(obj); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Surface 1: the wire op. The hot prefix must lead the key top-K,
	// the hot object must be tracked, and all four shards must report.
	rep, err := cl1.Heat()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Keys) == 0 || rep.Keys[0].Key != hot {
		t.Fatalf("heat keys top = %+v, want %q first", rep.Keys, hot)
	}
	foundObj := false
	for _, o := range rep.Objects {
		if o.Key == hot+"/data.dat" {
			foundObj = true
		}
	}
	if !foundObj {
		t.Fatalf("hot object missing from object table: %+v", rep.Objects)
	}
	if len(rep.Shards) != shards {
		t.Fatalf("heat reply carries %d shards, want %d", len(rep.Shards), shards)
	}
	if rep.Plan == nil {
		t.Fatal("heat reply carries no advisor plan")
	}

	// The advisor: the plan must move the hot prefix off its overloaded
	// home shard to a cooler one.
	plan := leadCat.Advise(b1.Metrics().HeatKeys().Snapshot(), time.Now())
	if len(plan.Moves) == 0 {
		t.Fatalf("advisor proposed no moves for a skewed workload: %+v", plan)
	}
	if plan.Moves[0].Key != hot || plan.Moves[0].From != home || plan.Moves[0].To == home {
		t.Fatalf("move = %+v, want %q off shard %d", plan.Moves[0], hot, home)
	}
	if plan.Projected >= plan.Imbalance {
		t.Fatalf("plan projects no improvement: %.2f -> %.2f", plan.Imbalance, plan.Projected)
	}
	if plan.Moves[0].EstKeys < 1 {
		t.Fatalf("move estimates no keys: %+v", plan.Moves[0])
	}

	// Surface 2: the admin endpoint, JSON and text.
	var arep wire.HeatReply
	resp, err := http.Get("http://" + admin1 + "/heat?format=json")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&arep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(arep.Keys) == 0 || arep.Keys[0].Key != hot {
		t.Fatalf("admin /heat top key = %+v, want %q", arep.Keys, hot)
	}
	if arep.Plan == nil || len(arep.Plan.Moves) == 0 || arep.Plan.Moves[0].Key != hot {
		t.Fatalf("admin /heat plan = %+v, want the stored advisor plan", arep.Plan)
	}
	text := adminBody(t, admin1, "/heat")
	if !strings.Contains(text, hot) || !strings.Contains(text, "rebalance plan") {
		t.Fatalf("admin /heat text missing hot prefix or plan:\n%s", text)
	}

	// Surface 3: the MySRB heat page over the same broker.
	app := mysrb.New(b1, authn)
	web := httptest.NewServer(app)
	t.Cleanup(web.Close)
	wc := &http.Client{Jar: &heatJar{}}
	if _, err := wc.PostForm(web.URL+"/login", url.Values{"user": {"alice"}, "password": {"alicepw"}}); err != nil {
		t.Fatal(err)
	}
	page := httpBody(t, wc, web.URL+"/heat")
	if !strings.Contains(page, hot) || !strings.Contains(page, "Shard heat") || !strings.Contains(page, "Rebalance advisor") {
		t.Fatalf("mysrb /heat page missing hot prefix, heat bars or plan:\n%s", page[:min(600, len(page))])
	}

	// The follower: four shards replicating over the real wire protocol.
	folCat := shard.NewRouter(shards, "admin", "sdsc")
	folCat.EnableMemoryJournals()
	b2 := core.New(folCat, "srb2")
	folCat.SetMetrics(b2.Metrics())
	for i := 0; i < shards; i++ {
		folCat.SetFollower(i, addr1)
	}
	folCat.SetPuller(func(peer string, idx int, after uint64) (shard.PullResult, error) {
		pc, err := client.Dial(peer, "admin", "adminpw")
		if err != nil {
			return shard.PullResult{}, err
		}
		defer pc.Close()
		r, err := pc.ShardPull(idx, after)
		if err != nil {
			return shard.PullResult{}, err
		}
		return shard.PullResult{Entries: r.Entries, Snapshot: r.Snapshot, Seq: r.Seq}, nil
	}, 1000)

	s2 := server.New(b2, authn, server.Proxy)
	t.Cleanup(func() { s2.Close() })
	if _, err := s2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	admin2, err := s2.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A lag SLO on the follower. Evaluation reads the replag gauges
	// live, so the schedule below drives them with explicit clocks.
	rules, err := obs.ParseSLORules("replag_seconds < 30s over 5m")
	if err != nil {
		t.Fatal(err)
	}
	ev := obs.NewSLOEvaluator(b2.Metrics(), rules)
	b2.SetSLO(ev)

	if err := folCat.SyncOnce(); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	now := time.Now()
	if st := ev.Evaluate(now); st[0].Violating {
		t.Fatalf("caught-up follower violates the lag SLO: %+v", st[0])
	}

	// The leader keeps writing; the follower stops pulling. A synthetic
	// minute of silence pushes the lag gauge past the 30s objective.
	if err := cl1.Mkdir(hot + "/run2"); err != nil {
		t.Fatal(err)
	}
	folCat.RefreshReplag(now.Add(time.Minute))
	st := ev.Evaluate(now.Add(time.Minute))
	if !st[0].Violating {
		t.Fatalf("lagging follower eval = %+v, want violating", st[0])
	}
	alerts := ev.AlertLog().Recent(0)
	if len(alerts) != 1 || !alerts[0].Firing {
		t.Fatalf("alerts = %+v, want one FIRED transition", alerts)
	}

	// /healthz mirrors the repair-backlog treatment: the lag is a warn
	// line, never a 503. The probe reads the exported gauges (which the
	// synthetic refresh above set), so the check replays identically.
	resp, err = http.Get("http://" + admin2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d during lag, want 200 (warn, not degraded):\n%s", resp.StatusCode, hbody)
	}
	if !strings.Contains(string(hbody), "replication lag") {
		t.Fatalf("/healthz carries no replication-lag warn line:\n%s", hbody)
	}

	// The follower catches up: the sync's own gauge refresh clears the
	// lag and the rule RESOLVEs.
	if err := folCat.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if st := ev.Evaluate(now.Add(2 * time.Minute)); st[0].Violating {
		t.Fatalf("caught-up eval = %+v, want resolved", st[0])
	}
	alerts = ev.AlertLog().Recent(0)
	if len(alerts) != 2 || alerts[1].Firing {
		t.Fatalf("alerts = %+v, want FIRED then RESOLVED", alerts)
	}
	if body := adminBody(t, admin2, "/healthz"); strings.Contains(body, "replication lag") {
		t.Fatalf("/healthz still warns after catch-up:\n%s", body)
	}

	// `srb shards` on the leader now reports the follower's ack: the
	// replag fields ride the status op.
	srep, err := cl1.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(srep.Shards) != shards {
		t.Fatalf("Shards() = %d rows, want %d", len(srep.Shards), shards)
	}
}

// adminBody fetches an admin endpoint's body.
func adminBody(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// httpBody fetches a URL with the given (cookie-carrying) client.
func httpBody(t *testing.T, c *http.Client, url string) string {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// heatJar is a minimal single-host cookie jar for the MySRB login.
type heatJar struct{ cookies []*http.Cookie }

func (j *heatJar) SetCookies(u *url.URL, cs []*http.Cookie) { j.cookies = cs }
func (j *heatJar) Cookies(u *url.URL) []*http.Cookie        { return j.cookies }
