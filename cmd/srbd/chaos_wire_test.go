package main

import (
	"errors"
	"net"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/faultnet"
	"gosrb/internal/mcat"
	"gosrb/internal/resilience"
	"gosrb/internal/server"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// TestChaosPipelinedFederation is the wire-throughput chaos e2e: batched
// ops ride the pooled, pipelined federation link between two servers,
// then the uplink dies mid-workload. Remote items in a batch must fail
// with named per-item errors while local items in the same batch keep
// succeeding, the peer breaker must trip, the pool must evict the dead
// connection, and a failed (non-idempotent) bulk ingest must leave no
// torn row. After the link heals, the retried ops land exactly once on
// the survivor.
func TestChaosPipelinedFederation(t *testing.T) {
	inj := faultnet.New(chaosSeed)

	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.MkColl("/home", "admin")
	cat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(cat, "srb1")
	b2 := core.New(cat, "srb2")
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		t.Fatal(err)
	}

	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	s1 := server.New(b1, authn, server.Proxy)
	s2 := server.New(b2, authn, server.Proxy)
	t.Cleanup(func() { s1.Close(); s2.Close() })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.AddPeer("srb2", addr2, "zone-secret")
	s2.AddPeer("srb1", addr1, "zone-secret")

	s1.SetPeerDialer(inj.WrapDial("uplink", func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	}))
	s1.SetRetryPolicy(resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	clock := &fakeTicker{now: time.Unix(1_000_000, 0)}
	b1.Breakers().SetConfig(resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	b1.Breakers().SetClock(clock.Now)

	cl, err := client.Dial(addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	// Seed: two local objects on disk1 (through srb1) and two remote
	// objects on disk2 (through srb2 directly, like a zone peer would).
	locals := map[string]string{"/home/l0.txt": "local zero", "/home/l1.txt": "local one"}
	remotes := map[string]string{"/home/r0.txt": "remote zero", "/home/r1.txt": "remote one"}
	for p, body := range locals {
		if _, err := cl.Put(p, []byte(body), client.PutOpts{Resource: "disk1"}); err != nil {
			t.Fatal(err)
		}
	}
	func() {
		cl2, err := client.Dial(addr2, "alice", "alicepw")
		if err != nil {
			t.Fatal(err)
		}
		defer cl2.Close()
		for p, body := range remotes {
			if _, err := cl2.Put(p, []byte(body), client.PutOpts{Resource: "disk2"}); err != nil {
				t.Fatal(err)
			}
		}
	}()

	// Phase 1 — healthy pipelined batches. A mixed MultiGet federates
	// its remote items over the pooled uplink, preserving request order.
	paths := []string{"/home/l0.txt", "/home/r0.txt", "/home/l1.txt", "/home/r1.txt"}
	want := []string{"local zero", "remote zero", "local one", "remote one"}
	res, err := cl.MultiGet(paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || string(r.Data) != want[i] {
			t.Fatalf("multiget[%d] %s = %q, %v; want %q", i, r.Path, r.Data, r.Err, want[i])
		}
	}
	// A second remote batch must reuse the pooled peer conn, not redial.
	if res, err = cl.MultiGet([]string{"/home/r1.txt", "/home/r0.txt"}); err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("repeat multiget %s: %v", r.Path, r.Err)
		}
	}
	if st := s1.PeerPoolStats(); st.Dialed != 1 {
		t.Fatalf("healthy federation dialed %d times, want 1 pooled conn (stats %+v)", st.Dialed, st)
	}

	// Phase 2 — kill the uplink. In one batch: the local item still
	// succeeds, remote items fail with named per-item errors, and the
	// repeated failures trip the peer breaker.
	inj.Target("uplink").Kill()
	res, err = cl.MultiGet([]string{"/home/l0.txt", "/home/r0.txt", "/home/r1.txt"})
	if err != nil {
		t.Fatalf("whole batch died with the uplink (want per-item isolation): %v", err)
	}
	if res[0].Err != nil || string(res[0].Data) != "local zero" {
		t.Fatalf("local item lost to a remote outage: %q, %v", res[0].Data, res[0].Err)
	}
	for _, r := range res[1:] {
		if r.Err == nil {
			t.Fatalf("remote item %s succeeded over a dead uplink", r.Path)
		}
	}
	if st := b1.Breakers().States()["peer.srb2"]; st != resilience.Open {
		t.Fatalf("peer.srb2 breaker = %v, want Open", st)
	}
	if st := s1.PeerPoolStats(); st.Evicted == 0 {
		t.Fatalf("dead peer conn was never evicted from the pool (stats %+v)", st)
	}
	// Open breaker: remote items now fast-fail, shaped as offline.
	res, err = cl.MultiGet([]string{"/home/r0.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, types.ErrOffline) {
		t.Fatalf("fast-fail item error = %v, want offline", res[0].Err)
	}
	// The shared catalog keeps metadata batches alive through a
	// data-plane outage: BulkStat answers without touching the uplink.
	stats, err := cl.BulkStat(paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range stats {
		if !it.OK || it.Stat.Size != int64(len(want[i])) {
			t.Fatalf("bulkstat %s during outage = %+v, want size %d", it.Path, it, len(want[i]))
		}
	}
	// A bulk ingest aimed at the unreachable owner fails item-by-item
	// and must not leave a torn row behind.
	puts, err := cl.BulkPut([]client.BulkPut{
		{Path: "/home/fresh.txt", Data: []byte("lands exactly once"), Opts: client.PutOpts{Resource: "disk2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if puts[0].OK {
		t.Fatal("bulk ingest to an unreachable resource owner reported success")
	}
	if puts[0].ErrKind == "" {
		t.Fatalf("failed bulk item carries no named error kind: %+v", puts[0])
	}
	if _, err := cl.Stat("/home/fresh.txt"); err == nil {
		t.Fatal("failed bulk ingest left a torn catalog row")
	}

	// Phase 3 — heal the uplink, let the breaker cool down. The retried
	// batch lands exactly once on the survivor: one object, one replica.
	inj.Target("uplink").Revive()
	clock.Advance(2 * time.Minute)
	puts, err = cl.BulkPut([]client.BulkPut{
		{Path: "/home/fresh.txt", Data: []byte("lands exactly once"), Opts: client.PutOpts{Resource: "disk2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !puts[0].OK {
		t.Fatalf("post-recovery bulk ingest failed: %+v", puts[0])
	}
	obj, err := cl.GetObject("/home/fresh.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Replicas) != 1 {
		t.Fatalf("retried ingest landed %d replicas, want exactly 1", len(obj.Replicas))
	}
	res, err = cl.MultiGet([]string{"/home/fresh.txt", "/home/r0.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || string(res[0].Data) != "lands exactly once" {
		t.Fatalf("post-recovery get = %q, %v", res[0].Data, res[0].Err)
	}
	if res[1].Err != nil || string(res[1].Data) != "remote zero" {
		t.Fatalf("post-recovery remote get = %q, %v", res[1].Data, res[1].Err)
	}
	if st := b1.Breakers().States()["peer.srb2"]; st != resilience.Closed {
		t.Fatalf("peer.srb2 breaker = %v, want Closed after recovery", st)
	}
}
