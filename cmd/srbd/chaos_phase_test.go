package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/faultnet"
	"gosrb/internal/mcat"
	"gosrb/internal/obs"
	"gosrb/internal/server"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// TestChaosPhaseAttribution is the latency-decomposition end-to-end: a
// seeded latency spike in exactly one phase (the storage driver) must be
// attributed to that phase — and no other — by every surface built on
// the decomposition: the span waterfall (`srb why`), the windowed grid
// fan-out (`srb top -phases -grid`), the admin /phases JSON, and the
// OpenMetrics exemplars joining tail buckets back to the trace. Rides
// the 10x -race chaos loop (make test-faults).
func TestChaosPhaseAttribution(t *testing.T) {
	const spike = 5 * time.Millisecond
	inj := faultnet.New(chaosSeed)

	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.MkColl("/home", "admin")
	cat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(cat, "srb1")
	b2 := core.New(cat, "srb2")
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs",
		inj.WrapDriver("disk1", memfs.New())); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs",
		inj.WrapDriver("disk2", memfs.New())); err != nil {
		t.Fatal(err)
	}

	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")

	s1 := server.New(b1, authn, server.Proxy)
	s2 := server.New(b2, authn, server.Proxy)
	t.Cleanup(func() { s1.Close(); s2.Close() })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.AddPeer("srb2", addr2, "zone-secret")
	s2.AddPeer("srb1", addr1, "zone-secret")

	adminAddr, err := s1.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cl, err := client.Dial(addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	clientReg := obs.NewRegistry()
	clientReg.SetExemplarThreshold(0)
	cl.SetMetrics(clientReg)

	if _, err := cl.Put("/home/slow.txt", []byte("spiked payload"), client.PutOpts{Resource: "disk1"}); err != nil {
		t.Fatal(err)
	}

	// The seeded fault: every disk1 driver op stalls 5ms. Nothing else
	// in the path is slowed, so the decomposition must pin the slowdown
	// on storage.read and not on queue wait, catalog lookup, or the
	// federation.
	inj.Target("disk1").SpikeLatency(spike, 1.0)
	const gets = 5
	for i := 0; i < gets; i++ {
		if data, err := cl.Get("/home/slow.txt"); err != nil || string(data) != "spiked payload" {
			t.Fatalf("get %d = %q, %v", i, data, err)
		}
	}
	id := cl.LastTrace()
	if id == "" {
		t.Fatal("client recorded no trace ID")
	}

	// --- srb why: the span waterfall attributes the spike. ---
	rep, err := cl.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	var get *obs.SpanNode
	for _, n := range obs.AssembleTree(rep.Spans) {
		if n.Op == "get" && n.Server == "srb1" {
			get = n
		}
	}
	if get == nil {
		t.Fatalf("no srb1 get span in trace %s (%d spans)", id, len(rep.Spans))
	}
	// Acceptance: top-level phases sum to the span's wall time within 5%.
	sum := obs.PhaseSum(get.Events)
	if slack := get.Micros / 20; sum < get.Micros-slack || sum > get.Micros+slack {
		t.Errorf("phase sum %dus vs span %dus: off by more than 5%%", sum, get.Micros)
	}
	phases := map[string]int64{}
	for _, ev := range get.Events {
		if ev.Kind == obs.EventPhase {
			phases[ev.Detail] += ev.DurMicros
		}
	}
	read := phases[obs.PhaseStorageRead]
	if read < spike.Microseconds() {
		t.Errorf("storage.read %dus, want >= the injected %v", read, spike)
	}
	for name, d := range phases {
		if name != obs.PhaseStorageRead && name != obs.PhaseDispatch && d > read {
			t.Errorf("spike misattributed: %s (%dus) > storage.read (%dus)", name, d, read)
		}
	}
	if phases[obs.PhaseDispatch] < read {
		t.Errorf("dispatch (%dus) does not contain its storage.read sub-phase (%dus)",
			phases[obs.PhaseDispatch], read)
	}
	var waterfall strings.Builder
	if err := obs.WriteWaterfall(&waterfall, obs.AssembleTree(rep.Spans)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(waterfall.String(), "storage.read") {
		t.Errorf("waterfall missing the spiked phase:\n%s", waterfall.String())
	}

	// --- srb top -phases -grid: the windowed fan-out agrees. ---
	grid, err := cl.GridStat(time.Minute, true)
	if err != nil {
		t.Fatal(err)
	}
	rows := obs.PhaseRows(grid.Grid.Ops)
	var readRow, lookupRow *obs.PhaseRow
	for i := range rows {
		r := &rows[i]
		if r.Family != "server" || r.Op != "get" {
			continue
		}
		switch r.Phase {
		case obs.PhaseStorageRead:
			readRow = r
		case obs.PhaseMCATLookup:
			lookupRow = r
		}
	}
	if readRow == nil {
		t.Fatalf("grid window has no server.get storage.read row: %+v", rows)
	}
	if readRow.Count < gets || readRow.TotalMicros < int64(gets)*spike.Microseconds() {
		t.Errorf("grid storage.read count=%d total=%dus, want >= %d gets of %v",
			readRow.Count, readRow.TotalMicros, gets, spike)
	}
	if lookupRow != nil && lookupRow.TotalMicros > readRow.TotalMicros {
		t.Errorf("grid misattributes spike to mcat.lookup (%dus) over storage.read (%dus)",
			lookupRow.TotalMicros, readRow.TotalMicros)
	}

	// --- the client side of the path decomposed too. ---
	mux := clientReg.Op("phase.client.get." + obs.PhaseMuxInflight).Snapshot()
	if mux.Count < gets {
		t.Errorf("client mux.inflight phase count = %d, want >= %d", mux.Count, gets)
	}
	if ser := clientReg.Op("phase.client.get." + obs.PhaseSerialize).Snapshot(); ser.Count < gets {
		t.Errorf("client serialize phase count = %d, want >= %d", ser.Count, gets)
	}

	// --- admin surfaces: /phases JSON and OpenMetrics exemplars. ---
	phasesJSON := fetch(t, adminAddr, "/phases?window=1m")
	if !strings.Contains(phasesJSON, obs.PhaseStorageRead) || !strings.Contains(phasesJSON, `"ExemplarMicros"`) {
		t.Errorf("/phases missing decomposition:\n%s", phasesJSON)
	}
	om := fetch(t, adminAddr, "/metrics?format=openmetrics")
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("openmetrics scrape not EOF-terminated")
	}
	// The spiked gets ran >= 10ms, over the 1ms default threshold: some
	// phase bucket must join back to a trace.
	if !strings.Contains(om, "srb_phase_server_get_dispatch_storage_read_duration_seconds_bucket") ||
		!strings.Contains(om, `# {trace_id="`) {
		t.Errorf("openmetrics missing phase histogram exemplars:\n%s",
			grepLines(om, "storage_read"))
	}
}

// fetch GETs an admin path and returns the body.
func fetch(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
