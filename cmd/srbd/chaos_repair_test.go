package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/faultnet"
	"gosrb/internal/mcat"
	"gosrb/internal/obs"
	"gosrb/internal/repair"
	"gosrb/internal/resilience"
	"gosrb/internal/server"
	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// pollUntil spins on cond until it holds or the deadline passes —
// convergence tests assert on the steady state, not on timing.
func pollUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fetchBody fetches an admin path and returns status code plus body.
func fetchBody(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestChaosAsyncReplRepairScrub is the repair-engine chaos end-to-end:
// a logical resource with an async:1 policy loses one member before an
// ingest, so the deferred fan-out meets a dead resource. The repair
// engine must retry under backoff, trip the member's breaker, converge
// once the member revives, then survive silent at-rest corruption: the
// scrubber re-hashes the stored bytes, marks the divergent replica
// dirty and repairs it from a verified sibling. The end state is fully
// deterministic — every replica clean and byte-identical — which is
// what lets this run stably under -race -count=10.
func TestChaosAsyncReplRepairScrub(t *testing.T) {
	inj := faultnet.New(chaosSeed)

	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	cat.MkColl("/home", "admin")
	cat.SetACL("/home", "alice", acl.Write)

	b1 := core.New(cat, "srb1")
	members := []string{"d1", "d2", "d3"}
	mems := map[string]*memfs.FS{}
	for _, name := range members {
		mem := memfs.New()
		mems[name] = mem
		if err := b1.AddPhysicalResource("admin", name, types.ClassFileSystem, "memfs",
			inj.WrapDriver(name, mem)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b1.AddLogicalResourcePolicy("admin", "lr", members, "async:1"); err != nil {
		t.Fatal(err)
	}
	b1.Breakers().SetConfig(resilience.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond})

	authn := auth.New()
	authn.Register("alice", "alicepw")
	authn.Register("admin", "adminpw")
	s1 := server.New(b1, authn, server.Proxy)
	t.Cleanup(func() { s1.Close() })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminAddr, err := s1.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	eng := repair.New(repair.Config{
		Workers:  2,
		Queue:    cat,
		Exec:     b1.RunRepairTask,
		Metrics:  b1.Metrics(),
		Breakers: b1.Breakers(),
		Backoff:  resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: 0.5},
		Poll:     5 * time.Millisecond,
		Server:   "srb1",
		Seed:     chaosSeed,
	})
	eng.AddJob("scrub", time.Hour, 0, func(sp *obs.Span) error {
		b1.ScrubSubtree("/", sp)
		return nil
	})
	b1.SetRepair(eng)
	eng.Start()
	t.Cleanup(eng.Stop)

	cl, err := client.Dial(addr1, "alice", "alicepw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Phase 1 — kill d3, then ingest onto the async logical resource.
	// The write path lands one replica synchronously; the deferred
	// fan-out to d2 succeeds, the one to d3 keeps failing and must trip
	// the member breaker instead of hot-looping.
	inj.Target("d3").Kill()
	payload := []byte("async replication survives a dead member")
	if _, err := cl.Put("/home/async.txt", payload, client.PutOpts{Resource: "lr"}); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, 5*time.Second, func() bool {
		return b1.Breakers().States()["resource.d3"] == resilience.Open
	}, "resource.d3 breaker to open")

	// The outage is visible: /healthz degrades (open breaker) and the
	// repair line reports the stuck backlog.
	code, body := fetchBody(t, adminAddr, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/healthz during outage = %d, want 503:\n%s", code, body)
	}
	if !strings.Contains(body, "repair backlog=") {
		t.Errorf("/healthz missing repair backlog line:\n%s", body)
	}

	// Phase 2 — revive d3. After the breaker cooldown, a half-open
	// probe lets the queued task through and the grid converges: three
	// clean replicas, an empty queue, readiness restored.
	inj.Target("d3").Revive()
	pollUntil(t, 10*time.Second, func() bool {
		n, _ := cat.RepairBacklog()
		if n != 0 {
			return false
		}
		o, err := cat.GetObject("/home/async.txt")
		if err != nil || len(o.Replicas) != 3 {
			return false
		}
		for _, r := range o.Replicas {
			if r.Status != types.ReplicaClean {
				return false
			}
		}
		return true
	}, "async fan-out convergence after revival")
	pollUntil(t, 5*time.Second, func() bool {
		return probe(t, adminAddr, "/healthz") == http.StatusOK
	}, "readiness to recover")

	// Phase 3 — silent at-rest corruption on d2. The data path cannot
	// see it; `srb checksum` must, per replica.
	o, err := cat.GetObject("/home/async.txt")
	if err != nil {
		t.Fatal(err)
	}
	var d2path string
	for _, r := range o.Replicas {
		if r.Resource == "d2" {
			d2path = r.PhysicalPath
		}
	}
	if err := inj.Target("d2").CorruptAtRest(d2path, 7); err != nil {
		t.Fatal(err)
	}
	crep, err := cl.Checksum("/home/async.txt")
	if err != nil {
		t.Fatal(err)
	}
	corrupt := 0
	for _, v := range crep.Verdicts {
		if v.Verdict == "corrupt" {
			corrupt++
			if v.Resource != "d2" {
				t.Errorf("corrupt verdict on %s, want d2", v.Resource)
			}
		}
	}
	if corrupt != 1 {
		t.Fatalf("checksum verdicts = %+v, want exactly one corrupt", crep.Verdicts)
	}

	// The scrubber re-hashes, marks d2 dirty and repairs it from a
	// just-verified sibling.
	if err := eng.RunJob("scrub"); err != nil {
		t.Fatalf("scrub job: %v", err)
	}
	pollUntil(t, 10*time.Second, func() bool {
		n, _ := cat.RepairBacklog()
		if n != 0 {
			return false
		}
		o, err := cat.GetObject("/home/async.txt")
		if err != nil {
			return false
		}
		for _, r := range o.Replicas {
			if r.Status != types.ReplicaClean {
				return false
			}
		}
		return true
	}, "scrub convergence")

	// End state: zero dirty rows anywhere, every stored replica
	// byte-identical to the catalog checksum.
	for _, p := range cat.SubtreeObjects("/") {
		obj, err := cat.GetObject(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range obj.Replicas {
			if r.Status != types.ReplicaClean {
				t.Errorf("%s replica on %s = %v, want clean", p, r.Resource, r.Status)
			}
			data, err := storage.ReadAll(mems[r.Resource], r.PhysicalPath)
			if err != nil {
				t.Errorf("read %s on %s: %v", p, r.Resource, err)
				continue
			}
			if string(data) != string(payload) {
				t.Errorf("%s on %s diverged from payload", p, r.Resource)
			}
		}
	}
	crep, err = cl.Checksum("/home/async.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range crep.Verdicts {
		if v.Verdict != "ok" {
			t.Errorf("post-scrub verdict on %s = %s (%s), want ok", v.Resource, v.Verdict, v.Detail)
		}
	}

	// The story is on the trace ring: repair completions, breaker
	// activity around the dead member, and scrub divergence events.
	events := map[string]bool{}
	for _, r := range b1.Metrics().Traces().Recent(512) {
		for _, ev := range r.Events {
			events[ev.Kind] = true
		}
	}
	for _, want := range []string{obs.EventRepair, obs.EventScrub} {
		if !events[want] {
			t.Errorf("trace ring missing a %q event (have %v)", want, events)
		}
	}
	if !events[obs.EventBreakerTrip] && !events[obs.EventBreakerFast] {
		t.Errorf("trace ring missing breaker events (have %v)", events)
	}

	// The wire-level status matches: engine enabled, queue drained,
	// lifetime counters show both the failures and the completions.
	srep, err := cl.RepairStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !srep.Enabled || !srep.Status.Running || srep.Status.Backlog != 0 {
		t.Errorf("repair status = %+v, want running with empty backlog", srep.Status)
	}
	if srep.Status.Done == 0 || srep.Status.Retries == 0 {
		t.Errorf("repair counters done=%d retries=%d, want both > 0", srep.Status.Done, srep.Status.Retries)
	}
}

// TestHealthzWedgedRepair pins the 503 contract for the repair engine:
// a non-empty queue with zero live workers is wedged and degrades
// readiness; an operator pause with the same backlog is intentional
// and does not.
func TestHealthzWedgedRepair(t *testing.T) {
	cat := mcat.New("admin", "sdsc")
	b := core.New(cat, "srb1")
	authn := auth.New()
	authn.Register("admin", "adminpw")
	s := server.New(b, authn, server.Proxy)
	t.Cleanup(func() { s.Close() })
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	adminAddr, err := s.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	eng := repair.New(repair.Config{
		Workers: 0, // nothing drains the queue
		Queue:   cat,
		Exec:    func(task types.RepairTask, sp *obs.Span) error { return nil },
		Metrics: b.Metrics(),
		Server:  "srb1",
		Seed:    1,
	})
	b.SetRepair(eng)
	eng.Start()
	t.Cleanup(eng.Stop)

	code, body := fetchBody(t, adminAddr, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "repair backlog=0") {
		t.Fatalf("idle /healthz = %d:\n%s", code, body)
	}

	cat.EnqueueRepair(types.RepairTask{Path: "/stuck", Resource: "r1", Kind: "replicate"})
	code, body = fetchBody(t, adminAddr, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "repair engine wedged") {
		t.Fatalf("wedged /healthz = %d, want 503 with wedged line:\n%s", code, body)
	}

	eng.Pause()
	code, body = fetchBody(t, adminAddr, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "paused") {
		t.Fatalf("paused /healthz = %d, want 200 with paused note:\n%s", code, body)
	}
}
