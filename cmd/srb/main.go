// Command srb is the command-line client — the Scommands of the SRB
// distribution rolled into one binary with subcommands.
//
//	srb -server host:5544 -user alice ls /home
//	srb put local.dat /home/remote.dat -resource disk1
//	srb get /home/remote.dat out.dat
//	srb query /home survey=2mass 'mag>7'
//
// The password comes from $SRB_PASSWORD or -password.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gosrb/internal/client"
	"gosrb/internal/mcat"
	"gosrb/internal/obs"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

func main() {
	var (
		serverAddr = flag.String("server", "127.0.0.1:5544", "SRB server address")
		user       = flag.String("user", os.Getenv("SRB_USER"), "user name (or $SRB_USER)")
		password   = flag.String("password", os.Getenv("SRB_PASSWORD"), "password (or $SRB_PASSWORD)")
	)
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cl, err := client.Dial(*serverAddr, *user, *password)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	if err := run(cl, args[0], args[1:]); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "srb:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: srb [flags] <command> [args]

commands:
  ls <coll>                          list a collection
  stat [-json] [path...]             describe paths; several paths go in
                                     one batched round trip; without a
                                     path, show server telemetry (op
                                     counts, latency quantiles, byte
                                     totals); -json emits the raw snapshot
  opstats                            server telemetry (alias of bare stat)
  top [-grid] [-window 5m] [-sort rate|p99|errors] [-phases] [-json]
                                     windowed rates and p50/p95/p99 from
                                     the rollup ring; -grid merges every
                                     zone member (dead peers flagged
                                     unreachable, not fatal); -sort
                                     orders the op table (default: name);
                                     -phases shows the per-phase latency
                                     decomposition instead of per-op rows
  alerts [-json]                     SLO rule standings and the bounded
                                     fire/resolve alert log
  incident list [-json]              flight recorder bundle index
  incident get <id> [-json]          download one incident bundle into
                                     ./<id>/ (-json prints the meta)
  incident capture [reason...]       capture an on-demand bundle (blocks
                                     ~2s for the CPU profile)
  peers [-json]                      peer transfer observatory: EWMA
                                     latency/bandwidth and success rate
                                     per federation peer and resource
  trace <id>                         span tree of a recent operation,
                                     gathered from every zone server
  why <id>                           phase waterfall of a recent
                                     operation: where each microsecond
                                     went (queue wait, catalog lookup,
                                     storage, federation hop...)
  usage [-json] [user [collection]]  per-user/collection usage accounting
  repair status [-json]              background repair engine: queue
                                     backlog, worker health, job runs
  shards [-json]                     catalog shards: role, replication
                                     position, staleness, entry counts,
                                     replication lag (entries/seconds)
  heat [-json]                       heat observatory: hot-key/hot-object
                                     top-K, per-shard replication lag and
                                     the rebalance advisor plan
  scrub <path>                       re-hash replicas against the catalog
                                     checksum and repair divergence
                                     (object: write perm; subtree: admin)
  checksum <path>                    verify every replica of one object,
                                     per-resource verdicts (read-only)
  mkdir <coll>                       create a collection
  rmdir <coll>                       remove an empty collection
  put <local> <path> [-resource r | -container c] [-type t]
  put -bulk <coll> <local>... [-resource r] [-batch n]
      [-batch-bytes b] [-batch-period d]
                                     ingest many files in batched round
                                     trips (flush at n files, b bytes, or
                                     d after the first buffered file)
  get <path> [local]                 retrieve (stdout when no local file)
  pget <path> <local> <streams>      parallel retrieve
  rm <path>                          delete an object
  rmreplica <path> <n>               delete one replica
  mv <src> <dst>                     logical move
  cp <src> <dst> [resource]          copy
  ln <target> <link>                 soft link
  replicate <path> <resource>        add a replica
  meta add <path> <name> <value> [units]
  meta ls <path> [class]             show metadata (user|system|type|file)
  annotate <path> <text>             add a comment
  annotations <path>                 list commentary
  query <scope> <cond>...            conjunctive query, conds like mag>7 name=like:m%%
  attrs <scope>                      list queryable attribute names
  chmod <path> <grantee> <level>     grant (none|read|annotate|write|own|curate)
  lock <path> <shared|exclusive>     lock for an hour
  unlock <path>
  checkout <path> / checkin <path> <local> [comment]
  mkcontainer <path> <resource>      create a container
  sql <path> [suffix]                execute a registered SQL object
  invoke <path> [args...]            run a method object
  resources                          list storage resources
  audit [user]                       show the audit trail tail (admin)
  stats                              server statistics
`)
}

func run(cl *client.Client, cmd string, args []string) error {
	switch cmd {
	case "ls":
		coll := "/"
		if len(args) > 0 {
			coll = args[0]
		}
		stats, err := cl.List(coll)
		if err != nil {
			return err
		}
		for _, st := range stats {
			kind := st.Kind.String()
			if st.IsCollect {
				kind = "collection"
			}
			fmt.Printf("%-12s %10d  %-10s %s\n", kind, st.Size, st.Owner, st.Path)
		}
		return nil

	case "stat":
		// With a path: describe it. Without: the server's telemetry
		// (-json dumps the snapshot for scripting).
		if len(args) > 0 && args[0] == "-json" {
			st, err := cl.OpStats()
			if err != nil {
				return err
			}
			// The reply carries the server's federation pool (PeerPool);
			// the client-side wire pool only this process can see rides
			// along so one scrape covers both ends of the path.
			pool := cl.PoolStats()
			out := struct {
				wire.OpStatsReply
				ClientPool wire.PoolStats
			}{st, pool}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		}
		if len(args) == 0 {
			return printOpStats(cl)
		}
		if len(args) > 1 {
			// Many paths: one batched round trip, per-path outcomes.
			items, err := cl.BulkStat(args)
			if err != nil {
				return err
			}
			bad := 0
			for _, it := range items {
				if !it.OK {
					bad++
					fmt.Printf("%-12s %10s  %-10s %s  (%s)\n", "error", "-", "-", it.Path, it.ErrMsg)
					continue
				}
				st := it.Stat
				kind := st.Kind.String()
				if st.IsCollect {
					kind = "collection"
				}
				fmt.Printf("%-12s %10d  %-10s %s\n", kind, st.Size, st.Owner, st.Path)
			}
			if bad > 0 {
				return fmt.Errorf("%d path(s) failed", bad)
			}
			return nil
		}
		st, err := cl.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("path: %s\nkind: %v\nsize: %d\nowner: %s\nreplicas: %d\nmodified: %s\n",
			st.Path, st.Kind, st.Size, st.Owner, st.Replicas, st.ModifiedAt.Format(time.RFC3339))
		return nil

	case "opstats":
		return printOpStats(cl)

	case "trace":
		rep, err := cl.Trace(need(args, 0, "trace id"))
		if err != nil {
			return err
		}
		if len(rep.Spans) == 0 {
			return fmt.Errorf("trace %s not found (rings may have wrapped)", args[0])
		}
		servers := map[string]bool{}
		for _, r := range rep.Spans {
			servers[r.Server] = true
		}
		fmt.Printf("trace %s: %d spans across %d server(s)\n", args[0], len(rep.Spans), len(servers))
		obs.WriteTree(os.Stdout, obs.AssembleTree(rep.Spans))
		return nil

	case "why":
		// Latency decomposition of one operation: the same spans `srb
		// trace` shows, rendered as a phase waterfall — each phase's
		// share of the span's wall time, sub-phases indented under their
		// parent, and the unattributed remainder called out.
		rep, err := cl.Trace(need(args, 0, "trace id"))
		if err != nil {
			return err
		}
		if len(rep.Spans) == 0 {
			return fmt.Errorf("trace %s not found (rings may have wrapped)", args[0])
		}
		servers := map[string]bool{}
		for _, r := range rep.Spans {
			servers[r.Server] = true
		}
		fmt.Printf("trace %s: %d spans across %d server(s)\n", args[0], len(rep.Spans), len(servers))
		obs.WriteWaterfall(os.Stdout, obs.AssembleTree(rep.Spans))
		return nil

	case "top":
		window := 5 * time.Minute
		grid, jsonOut, phases := false, false, false
		sortKey := ""
		for i := 0; i < len(args); i++ {
			switch args[i] {
			case "-grid":
				grid = true
			case "-json":
				jsonOut = true
			case "-phases":
				phases = true
			case "-window":
				i++
				if i >= len(args) {
					return fmt.Errorf("-window needs a duration (like 5m)")
				}
				d, err := time.ParseDuration(args[i])
				if err != nil || d <= 0 {
					return fmt.Errorf("bad -window %q (want a duration like 5m)", args[i])
				}
				window = d
			case "-sort":
				i++
				if i >= len(args) {
					return fmt.Errorf("-sort needs a key (rate, p99 or errors)")
				}
				switch args[i] {
				case "rate", "p99", "errors":
					sortKey = args[i]
				default:
					return fmt.Errorf("bad -sort %q (want rate, p99 or errors)", args[i])
				}
			default:
				return fmt.Errorf("unknown top flag %q (want -grid, -window, -sort, -phases, -json)", args[i])
			}
		}
		rep, err := cl.GridStat(window, grid)
		if err != nil {
			return err
		}
		if phases {
			rows := obs.PhaseRows(rep.Grid.Ops)
			if jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(rows)
			}
			return printPhases(rep, rows)
		}
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		return printGrid(rep, sortKey)

	case "alerts":
		jsonOut := len(args) > 0 && args[0] == "-json"
		rep, err := cl.Alerts()
		if err != nil {
			return err
		}
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Printf("server: %s\n", rep.Server)
		if !rep.Enabled {
			fmt.Println("slo: no rules declared (start the daemon with -slo-rules)")
			return nil
		}
		for _, r := range rep.Rules {
			state := "ok"
			if r.Violating {
				state = "VIOLATING"
			}
			fmt.Printf("rule %-24s %-10s burn=%3.0f%%  (%s)\n", r.Rule, state, r.BurnPct, r.Raw)
		}
		if len(rep.Alerts) == 0 {
			fmt.Println("alert log: empty")
			return nil
		}
		fmt.Printf("\nalert log (%d transition(s)):\n", len(rep.Alerts))
		for _, a := range rep.Alerts {
			kind := "RESOLVED"
			if a.Firing {
				kind = "FIRED"
			}
			fmt.Printf("  %s %-8s %-24s %s\n", a.At.Format("15:04:05"), kind, a.Rule, a.Detail)
		}
		return nil

	case "incident":
		switch sub := need(args, 0, "subcommand (list|get|capture)"); sub {
		case "list":
			rep, err := cl.Incidents()
			if err != nil {
				return err
			}
			if len(args) > 1 && args[1] == "-json" {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(rep)
			}
			fmt.Printf("server: %s\n", rep.Server)
			if !rep.Enabled {
				fmt.Println("flight recorder: disabled (start the daemon with -telemetry-dir)")
				return nil
			}
			if len(rep.Incidents) == 0 {
				fmt.Println("no incidents captured")
				return nil
			}
			for _, m := range rep.Incidents {
				fmt.Printf("%s  %-20s %-10s %d file(s)  %s\n",
					m.At.Format(time.RFC3339), m.Rule, m.Reason, len(m.Files), m.ID)
			}
			return nil
		case "get":
			id := need(args, 1, "incident id")
			rep, err := cl.IncidentGet(id)
			if err != nil {
				return err
			}
			// Default: dump the bundle into a local directory named after
			// the incident; -json prints the meta + file listing instead.
			if len(args) > 2 && args[2] == "-json" {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(rep.Meta)
			}
			outDir := rep.Meta.ID
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			names := make([]string, 0, len(rep.Files))
			for name := range rep.Files {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if err := os.WriteFile(outDir+"/"+name, rep.Files[name], 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s/%s (%d bytes)\n", outDir, name, len(rep.Files[name]))
			}
			fmt.Printf("incident %s from %s: rule=%s reason=%s\n",
				rep.Meta.ID, rep.Server, rep.Meta.Rule, rep.Meta.Reason)
			return nil
		case "capture":
			reason := strings.Join(args[1:], " ")
			rep, err := cl.IncidentCapture(reason)
			if err != nil {
				return err
			}
			fmt.Printf("captured %s on %s (%d file(s))\n", rep.Meta.ID, rep.Server, len(rep.Meta.Files))
			return nil
		default:
			return fmt.Errorf("unknown incident subcommand %q (want list, get or capture)", sub)
		}

	case "peers":
		jsonOut := len(args) > 0 && args[0] == "-json"
		rep, err := cl.Peers()
		if err != nil {
			return err
		}
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Printf("server: %s\n", rep.Server)
		if len(rep.Peers) == 0 {
			fmt.Println("no transfer history recorded")
			return nil
		}
		fmt.Printf("%-16s %-12s %8s %6s %12s %10s %12s %8s\n",
			"PEER", "RESOURCE", "OPS", "ERRS", "BYTES", "EWMA_MS", "EWMA_MBPS", "SUCC%")
		for _, p := range rep.Peers {
			fmt.Printf("%-16s %-12s %8d %6d %12d %10.2f %12.2f %8.1f\n",
				p.Peer, p.Resource, p.Ops, p.Errors, p.Bytes,
				p.EWMALatMicros/1000, p.EWMABytesPerSec/1e6, p.SuccessPct)
		}
		return nil

	case "usage":
		jsonOut := false
		if len(args) > 0 && args[0] == "-json" {
			jsonOut = true
			args = args[1:]
		}
		filterUser, filterColl := "", ""
		if len(args) > 0 {
			filterUser = args[0]
		}
		if len(args) > 1 {
			filterColl = args[1]
		}
		rep, err := cl.Usage(filterUser, filterColl)
		if err != nil {
			return err
		}
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Printf("server: %s\n", rep.Server)
		fmt.Printf("%-12s %-24s %8s %6s %12s %12s %10s\n",
			"USER", "COLLECTION", "OPS", "ERRS", "BYTES_IN", "BYTES_OUT", "AVG_MS")
		for _, e := range rep.Entries {
			avgMS := float64(0)
			if e.Ops > 0 {
				avgMS = float64(e.TotalMicros) / float64(e.Ops) / 1000
			}
			fmt.Printf("%-12s %-24s %8d %6d %12d %12d %10.2f\n",
				e.User, e.Collection, e.Ops, e.Errors, e.BytesIn, e.BytesOut, avgMS)
		}
		return nil

	case "repair":
		if need(args, 0, "subcommand (status)") != "status" {
			return fmt.Errorf("unknown repair subcommand %q (want: status)", args[0])
		}
		rep, err := cl.RepairStatus()
		if err != nil {
			return err
		}
		if len(args) > 1 && args[1] == "-json" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Printf("server: %s\n", rep.Server)
		if !rep.Enabled {
			fmt.Println("repair engine: not running")
			return nil
		}
		st := rep.Status
		state := "running"
		switch {
		case st.Wedged:
			state = "WEDGED"
		case st.Paused:
			state = "paused"
		}
		fmt.Printf("state: %s (%d/%d workers alive)\n", state, st.WorkersAlive, st.Workers)
		fmt.Printf("backlog: %d task(s), oldest %s\n", st.Backlog, st.OldestAge.Truncate(time.Second))
		fmt.Printf("lifetime: %d done, %d failed, %d retries\n", st.Done, st.Failed, st.Retries)
		for _, j := range st.Jobs {
			line := fmt.Sprintf("job %-12s every %-8s runs=%d errors=%d", j.Name, j.Interval, j.Runs, j.Errors)
			if !j.LastRun.IsZero() {
				line += " last=" + j.LastRun.Format(time.RFC3339)
			}
			if j.LastErr != "" {
				line += " lasterr=" + j.LastErr
			}
			fmt.Println(line)
		}
		return nil

	case "shards":
		rep, err := cl.Shards()
		if err != nil {
			return err
		}
		if len(args) > 0 && args[0] == "-json" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Printf("server: %s (%d shard(s))\n", rep.Server, len(rep.Shards))
		for _, sh := range rep.Shards {
			line := fmt.Sprintf("shard %-3d %-8s objects=%-6d colls=%-6d meta=%-6d applied=%d head=%d",
				sh.Shard, sh.Role, sh.Objects, sh.Collections, sh.MetaEntries, sh.Applied, sh.Head)
			if sh.Leader != "" {
				line += " leader=" + sh.Leader
			}
			if sh.Stale {
				line += " STALE"
			}
			if sh.PullFails > 0 {
				line += fmt.Sprintf(" pullfails=%d", sh.PullFails)
			}
			if sh.ReplagEntries > 0 || sh.ReplagSeconds > 0 {
				line += fmt.Sprintf(" replag=%d/%.0fs", sh.ReplagEntries, sh.ReplagSeconds)
			}
			fmt.Println(line)
		}
		return nil

	case "heat":
		rep, err := cl.Heat()
		if err != nil {
			return err
		}
		if len(args) > 0 && args[0] == "-json" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Printf("server: %s\n", rep.Server)
		if len(rep.Keys) == 0 && len(rep.Objects) == 0 {
			fmt.Println("no heat recorded yet")
		}
		if len(rep.Keys) > 0 {
			fmt.Printf("hot catalog keys (top %d):\n", len(rep.Keys))
			fmt.Printf("%-32s %10s %10s %12s\n", "KEY", "COUNT", "SCORE", "BYTES")
			for _, k := range rep.Keys {
				fmt.Printf("%-32s %10d %10.1f %12d\n", k.Key, k.Count, k.Score, k.Bytes)
			}
		}
		if len(rep.Objects) > 0 {
			fmt.Printf("\nhot objects (top %d):\n", len(rep.Objects))
			fmt.Printf("%-48s %10s %10s %12s\n", "OBJECT", "COUNT", "SCORE", "BYTES")
			for _, o := range rep.Objects {
				fmt.Printf("%-48s %10d %10.1f %12d\n", o.Key, o.Count, o.Score, o.Bytes)
			}
		}
		if len(rep.Shards) > 0 {
			fmt.Printf("\nshards:\n")
			fmt.Printf("%-5s %-8s %10s %10s %10s\n", "SHARD", "ROLE", "OBJECTS", "REPLAG_N", "REPLAG_S")
			for _, st := range rep.Shards {
				fmt.Printf("%-5d %-8s %10d %10d %10.0f\n",
					st.Shard, st.Role, st.Objects, st.ReplagEntries, st.ReplagSeconds)
			}
		}
		if rep.Plan != nil {
			fmt.Printf("\nrebalance plan (imbalance %.2fx -> %.2fx):\n",
				rep.Plan.Imbalance, rep.Plan.Projected)
			if rep.Plan.Note != "" {
				fmt.Println(rep.Plan.Note)
			}
			for _, m := range rep.Plan.Moves {
				fmt.Printf("  move %-32s shard %d -> %d (score %.1f, ~%d keys, ~%d bytes)\n",
					m.Key, m.From, m.To, m.Score, m.EstKeys, m.EstBytes)
			}
		}
		return nil

	case "scrub":
		rep, err := cl.Scrub(need(args, 0, "path"))
		if err != nil {
			return err
		}
		r := rep.Report
		fmt.Printf("scrub on %s: %d object(s), %d replica(s) scanned\n", rep.Server, r.Objects, r.Scanned)
		fmt.Printf("corrupt=%d repaired=%d replicated=%d enqueued=%d skipped=%d\n",
			r.Corrupt, r.Repaired, r.Replicated, r.Enqueued, r.Skipped)
		return nil

	case "checksum":
		rep, err := cl.Checksum(need(args, 0, "path"))
		if err != nil {
			return err
		}
		fmt.Printf("%s catalog=%s\n", rep.Path, rep.Checksum)
		bad := 0
		for _, v := range rep.Verdicts {
			line := fmt.Sprintf("replica %d on %-12s %-8s %s", v.Number, v.Resource, v.Status, v.Verdict)
			if v.Detail != "" {
				line += " (" + v.Detail + ")"
			}
			fmt.Println(line)
			if v.Verdict == "corrupt" || v.Verdict == "unreadable" {
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d replica(s) failed verification", bad)
		}
		return nil

	case "mkdir":
		return cl.Mkdir(need(args, 0, "collection"))

	case "rmdir":
		return cl.RmColl(need(args, 0, "collection"))

	case "put":
		if len(args) > 0 && args[0] == "-bulk" {
			return runBulkPut(cl, args[1:])
		}
		local, remote := need(args, 0, "local file"), need(args, 1, "path")
		opts := client.PutOpts{}
		for i := 2; i < len(args)-1; i += 2 {
			switch args[i] {
			case "-resource":
				opts.Resource = args[i+1]
			case "-container":
				opts.Container = args[i+1]
			case "-type":
				opts.DataType = args[i+1]
			}
		}
		data, err := os.ReadFile(local)
		if err != nil {
			return err
		}
		o, err := cl.Put(remote, data, opts)
		if err != nil {
			return err
		}
		fmt.Printf("ingested %s (%d bytes, %d replicas)\n", o.Path(), o.Size, len(o.Replicas))
		return nil

	case "get":
		data, err := cl.Get(need(args, 0, "path"))
		if err != nil {
			return err
		}
		if len(args) > 1 {
			return os.WriteFile(args[1], data, 0o644)
		}
		os.Stdout.Write(data)
		return nil

	case "pget":
		path, local := need(args, 0, "path"), need(args, 1, "local file")
		streams := 4
		if len(args) > 2 {
			streams, _ = strconv.Atoi(args[2])
		}
		data, err := cl.ParallelGet(path, streams)
		if err != nil {
			return err
		}
		return os.WriteFile(local, data, 0o644)

	case "rm":
		return cl.Delete(need(args, 0, "path"))

	case "rmreplica":
		n, err := strconv.Atoi(need(args, 1, "replica number"))
		if err != nil {
			return err
		}
		return cl.DeleteReplica(args[0], n)

	case "mv":
		return cl.Move(need(args, 0, "src"), need(args, 1, "dst"))

	case "cp":
		res := ""
		if len(args) > 2 {
			res = args[2]
		}
		return cl.Copy(need(args, 0, "src"), need(args, 1, "dst"), res)

	case "ln":
		return cl.Link(need(args, 0, "target"), need(args, 1, "link path"))

	case "replicate":
		rep, err := cl.Replicate(need(args, 0, "path"), need(args, 1, "resource"))
		if err != nil {
			return err
		}
		fmt.Printf("replica %d on %s\n", rep.Number, rep.Resource)
		return nil

	case "meta":
		sub := need(args, 0, "add|ls")
		switch sub {
		case "add":
			avu := types.AVU{Name: need(args, 2, "name"), Value: need(args, 3, "value")}
			if len(args) > 4 {
				avu.Units = args[4]
			}
			return cl.AddMeta(args[1], types.MetaUser, avu)
		case "ls":
			class := types.MetaUser
			if len(args) > 2 {
				switch args[2] {
				case "system":
					class = types.MetaSystem
				case "type":
					class = types.MetaType
				case "file":
					class = types.MetaFile
				}
			}
			avus, err := cl.GetMeta(need(args, 1, "path"), class)
			if err != nil {
				return err
			}
			for _, a := range avus {
				fmt.Printf("%-24s %-32s %s\n", a.Name, a.Value, a.Units)
			}
			return nil
		default:
			return fmt.Errorf("unknown meta subcommand %q", sub)
		}

	case "annotate":
		return cl.Annotate(need(args, 0, "path"), types.Annotation{Text: strings.Join(args[1:], " "), Kind: "comment"})

	case "annotations":
		anns, err := cl.Annotations(need(args, 0, "path"))
		if err != nil {
			return err
		}
		for _, a := range anns {
			fmt.Printf("[%s] %s: %s\n", a.Kind, a.Author, a.Text)
		}
		return nil

	case "query":
		scope := need(args, 0, "scope")
		q := mcat.Query{Scope: scope}
		for _, cond := range args[1:] {
			c, err := parseCond(cond)
			if err != nil {
				return err
			}
			q.Conds = append(q.Conds, c)
		}
		hits, partial, err := cl.QueryPartial(q)
		if err != nil {
			return err
		}
		for _, h := range hits {
			fmt.Println(h.Path)
		}
		if len(partial) > 0 {
			fmt.Fprintf(os.Stderr, "warning: partial result, no answer from %s\n", strings.Join(partial, ", "))
		}
		fmt.Fprintf(os.Stderr, "%d objects\n", len(hits))
		return nil

	case "attrs":
		names, err := cl.QueryAttrNames(need(args, 0, "scope"))
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "chmod":
		return cl.Chmod(need(args, 0, "path"), need(args, 1, "grantee"), need(args, 2, "level"))

	case "lock":
		return cl.Lock(need(args, 0, "path"), need(args, 1, "shared|exclusive"), time.Hour)

	case "unlock":
		return cl.Unlock(need(args, 0, "path"))

	case "checkout":
		return cl.Checkout(need(args, 0, "path"))

	case "checkin":
		data, err := os.ReadFile(need(args, 1, "local file"))
		if err != nil {
			return err
		}
		comment := ""
		if len(args) > 2 {
			comment = strings.Join(args[2:], " ")
		}
		return cl.Checkin(args[0], data, comment)

	case "mkcontainer":
		o, err := cl.MkContainer(need(args, 0, "path"), need(args, 1, "resource"))
		if err != nil {
			return err
		}
		fmt.Printf("container %s (%d segment replicas)\n", o.Path(), len(o.Replicas))
		return nil

	case "sql":
		suffix := ""
		if len(args) > 1 {
			suffix = strings.Join(args[1:], " ")
		}
		out, err := cl.ExecSQL(need(args, 0, "path"), suffix)
		if err != nil {
			return err
		}
		os.Stdout.Write(out)
		return nil

	case "invoke":
		out, err := cl.Invoke(need(args, 0, "path"), args[1:])
		if err != nil {
			return err
		}
		os.Stdout.Write(out)
		return nil

	case "audit":
		// srb audit [user] — admin-only view of the audit trail tail.
		filterUser := ""
		if len(args) > 0 {
			filterUser = args[0]
		}
		recs, err := cl.Audit(filterUser, "", "", 50)
		if err != nil {
			return err
		}
		for _, r := range recs {
			status := "ok"
			if !r.OK {
				status = "DENIED"
			}
			fmt.Printf("%s  %-8s %-12s %-30s %s %s\n",
				r.Time.Format("15:04:05"), r.User, r.Op, r.Target, status, r.Detail)
		}
		return nil

	case "resources":
		rs, err := cl.Resources()
		if err != nil {
			return err
		}
		for _, r := range rs {
			extra := r.Driver
			if r.Kind == types.ResourceLogical {
				extra = "members: " + strings.Join(r.Members, ",")
			}
			state := "online"
			if !r.Online {
				state = "OFFLINE"
			}
			fmt.Printf("%-12s %-9s %-10s %-8s %s\n", r.Name, r.Kind, r.Class, state, extra)
		}
		return nil

	case "stats":
		st, err := cl.ServerStats()
		if err != nil {
			return err
		}
		fmt.Printf("server: %s\nobjects: %d\ncollections: %d\nresources: %d\nusers: %d\n",
			st.Server, st.Objects, st.Collections, st.Resources, st.Users)
		return nil

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printOpStats renders the server's telemetry snapshot: the `srb stat`
// view of what the admin /metrics endpoint serves.
func printOpStats(cl *client.Client) error {
	st, err := cl.OpStats()
	if err != nil {
		return err
	}
	s := st.Snapshot
	if s.Version != "" {
		fmt.Printf("server: %s  version: %s  uptime: %.0fs\n", st.Server, s.Version, s.UptimeSeconds)
	} else {
		fmt.Printf("server: %s  uptime: %.0fs\n", st.Server, s.UptimeSeconds)
	}

	var ops []string
	for name, o := range s.Ops {
		if o.Count > 0 {
			ops = append(ops, name)
		}
	}
	if len(ops) > 0 {
		sort.Strings(ops)
		fmt.Printf("\n%-26s %8s %7s %10s %10s %10s\n", "op", "count", "errors", "p50(us)", "p90(us)", "p99(us)")
		for _, name := range ops {
			o := s.Ops[name]
			fmt.Printf("%-26s %8d %7d %10.1f %10.1f %10.1f\n",
				name, o.Count, o.Errors, o.P50Micros, o.P90Micros, o.P99Micros)
		}
	}

	var counters []string
	for name, v := range s.Counters {
		if v != 0 {
			counters = append(counters, name)
		}
	}
	if len(counters) > 0 {
		sort.Strings(counters)
		fmt.Printf("\ncounters:\n")
		for _, name := range counters {
			fmt.Printf("  %-36s %d\n", name, s.Counters[name])
		}
	}

	var gauges []string
	for name := range s.Gauges {
		gauges = append(gauges, name)
	}
	if len(gauges) > 0 {
		sort.Strings(gauges)
		fmt.Printf("\ngauges:\n")
		for _, name := range gauges {
			fmt.Printf("  %-36s %d\n", name, s.Gauges[name])
		}
	}

	if st.PeerPool != nil {
		p := *st.PeerPool
		fmt.Printf("\nfederation pool: %d conn(s), %d idle, dialed=%d evicted=%d reaped=%d\n",
			p.Conns, p.Idle, p.Dialed, p.Evicted, p.Reaped)
	}
	cp := cl.PoolStats()
	fmt.Printf("client pool: %d conn(s), %d idle, dialed=%d evicted=%d reaped=%d\n",
		cp.Conns, cp.Idle, cp.Dialed, cp.Evicted, cp.Reaped)

	if n := len(s.Traces); n > 0 {
		fmt.Printf("\nrecent traces (%d):\n", n)
		show := s.Traces
		if len(show) > 10 {
			show = show[len(show)-10:]
		}
		for _, t := range show {
			line := fmt.Sprintf("  %s %-14s %6dus", t.Trace, t.Op, t.Micros)
			if t.Err != "" {
				line += "  err: " + t.Err
			}
			fmt.Println(line)
		}
	}
	return nil
}

// printGrid renders a grid-stat reply: one status line per member,
// then the merged aggregate's windowed rates and quantiles. sortKey
// orders the op table: "" by name, "rate" by ops/sec, "p99" by p99
// latency, "errors" by windowed error rate (all descending).
func printGrid(rep wire.GridStatReply, sortKey string) error {
	fmt.Printf("grid via %s  window: %.0fs  members: %d\n", rep.Server, rep.WindowSeconds, len(rep.Members))
	for _, m := range rep.Members {
		status := "ok"
		switch {
		case m.Unreachable:
			status = "UNREACHABLE"
		case m.Stale:
			status = "stale"
		}
		line := fmt.Sprintf("  %-12s %-12s covered=%.0fs", m.Server, status, m.Window.CoveredSeconds)
		if m.Err != "" {
			line += "  " + m.Err
		}
		fmt.Println(line)
	}

	var ops []string
	for name, o := range rep.Grid.Ops {
		if o.Count > 0 {
			ops = append(ops, name)
		}
	}
	if len(ops) == 0 {
		fmt.Println("\nno op activity in the window")
		return nil
	}
	sort.Strings(ops)
	switch sortKey {
	case "rate":
		sort.SliceStable(ops, func(i, j int) bool {
			return rep.Grid.Ops[ops[i]].PerSec > rep.Grid.Ops[ops[j]].PerSec
		})
	case "p99":
		sort.SliceStable(ops, func(i, j int) bool {
			return rep.Grid.Ops[ops[i]].P99Micros > rep.Grid.Ops[ops[j]].P99Micros
		})
	case "errors":
		sort.SliceStable(ops, func(i, j int) bool {
			return rep.Grid.Ops[ops[i]].ErrorPct > rep.Grid.Ops[ops[j]].ErrorPct
		})
	}
	fmt.Printf("\n%-26s %8s %9s %7s %10s %10s %10s\n",
		"op", "count", "per_sec", "err%", "p50(us)", "p95(us)", "p99(us)")
	for _, name := range ops {
		o := rep.Grid.Ops[name]
		fmt.Printf("%-26s %8d %9.2f %7.2f %10.1f %10.1f %10.1f\n",
			name, o.Count, o.PerSec, o.ErrorPct, o.P50Micros, o.P95Micros, o.P99Micros)
	}

	var counters []string
	for name := range rep.Grid.Counters {
		counters = append(counters, name)
	}
	if len(counters) > 0 {
		sort.Strings(counters)
		fmt.Printf("\ncounters (delta / per_sec):\n")
		for _, name := range counters {
			c := rep.Grid.Counters[name]
			fmt.Printf("  %-36s %10d %10.2f\n", name, c.Delta, c.PerSec)
		}
	}
	return nil
}

// printPhases renders the latency decomposition of a grid-stat reply:
// one row per (side, op, phase) histogram, share computed against the
// op's summed phase time so the dominant phase stands out at a glance.
func printPhases(rep wire.GridStatReply, rows []obs.PhaseRow) error {
	fmt.Printf("phases via %s  window: %.0fs  members: %d\n", rep.Server, rep.WindowSeconds, len(rep.Members))
	for _, m := range rep.Members {
		status := "ok"
		switch {
		case m.Unreachable:
			status = "UNREACHABLE"
		case m.Stale:
			status = "stale"
		}
		line := fmt.Sprintf("  %-12s %-12s covered=%.0fs", m.Server, status, m.Window.CoveredSeconds)
		if m.Err != "" {
			line += "  " + m.Err
		}
		fmt.Println(line)
	}
	if len(rows) == 0 {
		fmt.Println("\nno phase activity in the window (phases ride the rollup ring; is -rollup-interval enabled?)")
		return nil
	}
	totals := make(map[string]int64, len(rows))
	for _, r := range rows {
		totals[r.Family+"."+r.Op] += r.TotalMicros
	}
	fmt.Printf("\n%-7s %-10s %-26s %8s %12s %7s %10s %10s\n",
		"side", "op", "phase", "count", "total(us)", "share", "p50(us)", "p99(us)")
	for _, r := range rows {
		share := 0.0
		if t := totals[r.Family+"."+r.Op]; t > 0 {
			share = 100 * float64(r.TotalMicros) / float64(t)
		}
		fmt.Printf("%-7s %-10s %-26s %8d %12d %6.1f%% %10.1f %10.1f\n",
			r.Family, r.Op, r.Phase, r.Count, r.TotalMicros, share, r.P50Micros, r.P99Micros)
	}
	return nil
}

// runBulkPut ingests many local files under one destination collection
// using batched bulkput round trips: the batcher flushes at -batch
// files, -batch-bytes buffered payload, or -batch-period after the
// first buffered file, whichever fires first. Items fail independently;
// the command reports per-file outcomes and fails if any file did.
func runBulkPut(cl *client.Client, args []string) error {
	opts := client.PutOpts{}
	policy := client.DefaultBatchPolicy
	var pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") {
			pos = append(pos, a)
			continue
		}
		if i+1 >= len(args) {
			return fmt.Errorf("flag %s needs a value", a)
		}
		v := args[i+1]
		i++
		switch a {
		case "-resource":
			opts.Resource = v
		case "-container":
			opts.Container = v
		case "-type":
			opts.DataType = v
		case "-batch":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -batch %q", v)
			}
			policy.Count = n
		case "-batch-bytes":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -batch-bytes %q", v)
			}
			policy.Bytes = n
		case "-batch-period":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return fmt.Errorf("bad -batch-period %q", v)
			}
			policy.Period = d
		default:
			return fmt.Errorf("unknown flag %s", a)
		}
	}
	if len(pos) < 2 {
		return fmt.Errorf("put -bulk needs a destination collection and at least one local file")
	}
	coll, locals := strings.TrimSuffix(pos[0], "/"), pos[1:]
	// The period flush runs on a timer goroutine, so the result sink
	// must be safe against concurrent reporting.
	var mu sync.Mutex
	okCount, failCount := 0, 0
	b := client.NewPutBatcher(cl, policy)
	b.OnFlush(func(results []wire.BulkItemStatus) {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range results {
			if r.OK {
				okCount++
				fmt.Printf("ingested %s\n", r.Path)
			} else {
				failCount++
				fmt.Fprintf(os.Stderr, "srb: put %s: %s\n", r.Path, r.ErrMsg)
			}
		}
	})
	for _, local := range locals {
		data, err := os.ReadFile(local)
		if err != nil {
			return err
		}
		dest := coll + "/" + filepath.Base(local)
		if err := b.Add(client.BulkPut{Path: dest, Data: data, Opts: opts}); err != nil {
			return err
		}
	}
	if err := b.Close(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("bulk put: %d ok, %d failed (%d round trips)\n", okCount, failCount, b.Flushes())
	if failCount > 0 {
		return fmt.Errorf("%d file(s) failed", failCount)
	}
	return nil
}

// need returns args[i] or exits with a usage message.
func need(args []string, i int, what string) string {
	if i >= len(args) {
		fatal(fmt.Errorf("missing argument: %s", what))
	}
	return args[i]
}

// parseCond parses "attr=val", "attr>val", "attr=like:pattern", ...
func parseCond(s string) (mcat.Condition, error) {
	for _, op := range []string{">=", "<=", "<>", "=", ">", "<"} {
		if i := strings.Index(s, op); i > 0 {
			attr, val := s[:i], s[i+len(op):]
			if op == "=" && strings.HasPrefix(val, "like:") {
				return mcat.Condition{Attr: attr, Op: "like", Value: strings.TrimPrefix(val, "like:")}, nil
			}
			if op == "=" && strings.HasPrefix(val, "notlike:") {
				return mcat.Condition{Attr: attr, Op: "not like", Value: strings.TrimPrefix(val, "notlike:")}, nil
			}
			return mcat.Condition{Attr: attr, Op: op, Value: val}, nil
		}
	}
	return mcat.Condition{}, fmt.Errorf("cannot parse condition %q (want attr=value, attr>value, attr=like:pat)", s)
}
