package main

import "testing"

func TestParseCond(t *testing.T) {
	cases := []struct {
		in   string
		attr string
		op   string
		val  string
	}{
		{"survey=2mass", "survey", "=", "2mass"},
		{"mag>7", "mag", ">", "7"},
		{"mag>=7.5", "mag", ">=", "7.5"},
		{"mag<=2", "mag", "<=", "2"},
		{"mag<10", "mag", "<", "10"},
		{"band<>J", "band", "<>", "J"},
		{"name=like:m%", "name", "like", "m%"},
		{"name=notlike:tmp%", "name", "not like", "tmp%"},
	}
	for _, c := range cases {
		got, err := parseCond(c.in)
		if err != nil {
			t.Errorf("parseCond(%q): %v", c.in, err)
			continue
		}
		if got.Attr != c.attr || got.Op != c.op || got.Value != c.val {
			t.Errorf("parseCond(%q) = %+v, want %s %s %s", c.in, got, c.attr, c.op, c.val)
		}
	}
	for _, bad := range []string{"nocond", "=value", ""} {
		if _, err := parseCond(bad); err == nil {
			t.Errorf("parseCond(%q) should fail", bad)
		}
	}
}
