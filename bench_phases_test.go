// The latency-decomposition overhead harness: what does recording
// per-phase span events and folding them into phase.* histograms cost
// on top of the telemetry the broker already pays for? Both cells run
// the *instrumented* broker and both mint a span per op — per-request
// span creation is the flight recorder's pre-existing cost, not this
// layer's. The plain cell passes a nil span so the in-path phase
// stamps become no-ops; the delta therefore isolates exactly what the
// decomposition adds per request: the Span.Phase stamps in the get
// path plus the RecordPhases fold the server dispatch performs.
package gosrb_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"gosrb/internal/core"
	"gosrb/internal/obs"
	"gosrb/internal/workload"
)

// benchSpanSink keeps the plain cell's span alive so the compiler
// cannot elide its creation and skew the comparison.
var benchSpanSink *obs.Span

// phaseBenchOp is one get through the decomposition harness. Phased:
// a live span rides GetTraced (the mcat.lookup / storage.read stamps
// fire) and the dispatch-side fold runs — the exact per-request work
// srbd adds. Plain: the span is still minted (pre-existing flight
// recorder cost) but GetTraced sees nil, so stamps and fold are off.
// Paths mirror obsBenchBroker's preload naming.
func phaseBenchOp(br *core.Broker, i, objects int, phased bool) error {
	path := fmt.Sprintf("/d/f%03d", i%objects)
	sp := obs.StartSpan("", "get")
	if !phased {
		benchSpanSink = sp
		_, err := br.GetTraced("admin", path, nil)
		return err
	}
	_, err := br.GetTraced("admin", path, sp)
	sp.Phase(obs.PhaseDispatch, sp.Elapsed())
	br.Metrics().RecordPhases("server", "get", sp.Trace, sp.Events())
	return err
}

// BenchmarkPhaseOverhead compares a traced, phase-recorded get against
// the plain instrumented get on the same broker.
func BenchmarkPhaseOverhead(b *testing.B) {
	payload := workload.NewGen(23).Bytes(4 << 10)
	const objects = 64
	for _, mode := range []struct {
		name   string
		phased bool
	}{{"phased", true}, {"plain", false}} {
		b.Run("get/"+mode.name, func(b *testing.B) {
			br := obsBenchBroker(b, true, objects, payload)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := phaseBenchOp(br, i, objects, mode.phased); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPhasesBenchReport measures the phase-recording overhead and
// writes BENCH_phases.json. Gated behind BENCH_PHASES=1 (the Makefile's
// bench-phases target).
func TestPhasesBenchReport(t *testing.T) {
	if os.Getenv("BENCH_PHASES") == "" {
		t.Skip("set BENCH_PHASES=1 to emit BENCH_phases.json")
	}
	payload := workload.NewGen(23).Bytes(4 << 10)
	const objects = 64
	measure := func(phased bool) float64 {
		br := obsBenchBroker(t, true, objects, payload)
		best := 0.0
		for round := 0; round < 3; round++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := phaseBenchOp(br, i, objects, phased); err != nil {
						b.Fatal(err)
					}
				}
			})
			if v := float64(res.NsPerOp()); round == 0 || v < best {
				best = v
			}
		}
		return best
	}
	phased, plain := measure(true), measure(false)
	report := struct {
		Benchmark     string  `json:"benchmark"`
		PayloadBytes  int     `json:"payload_bytes"`
		Objects       int     `json:"objects"`
		PhasedNsPerOp float64 `json:"phased_ns_per_op"`
		PlainNsPerOp  float64 `json:"plain_ns_per_op"`
		OverheadPct   float64 `json:"overhead_pct"`
	}{
		Benchmark:     "phase-decomposition-overhead",
		PayloadBytes:  len(payload),
		Objects:       objects,
		PhasedNsPerOp: phased,
		PlainNsPerOp:  plain,
	}
	if plain > 0 {
		report.OverheadPct = (phased - plain) / plain * 100
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_phases.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("get: %.0f ns phased vs %.0f ns plain (%.2f%% overhead)", phased, plain, report.OverheadPct)
}

// TestPhasesBenchGate is the ISSUE's overhead budget made executable:
// the traced-and-folded get may cost at most 5% over the plain
// instrumented get. Unlike the drift fences, the bound is absolute —
// the decomposition is always on in production, so its budget does not
// ratchet with the recorded baseline. Gated behind BENCH_PHASES_GATE=1
// (make bench-phases-gate, wired into make check); skips when no
// baseline exists so fresh checkouts aren't blocked.
func TestPhasesBenchGate(t *testing.T) {
	if os.Getenv("BENCH_PHASES_GATE") == "" {
		t.Skip("set BENCH_PHASES_GATE=1 to check the phase overhead budget")
	}
	if _, err := os.Stat("BENCH_phases.json"); err != nil {
		t.Skipf("no baseline: %v (run `make bench-phases` first)", err)
	}
	payload := workload.NewGen(23).Bytes(4 << 10)
	const objects = 64
	run := func(br *core.Broker, phased bool) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := phaseBenchOp(br, i, objects, phased); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	// Pairwise rounds, min overhead kept: both cells see the same
	// scheduler interference each round (see TestObsOverheadGate).
	phasedBr := obsBenchBroker(t, true, objects, payload)
	plainBr := obsBenchBroker(t, true, objects, payload)
	overhead := 0.0
	for round := 0; round < 5; round++ {
		ph, pl := run(phasedBr, true), run(plainBr, false)
		v := 0.0
		if pl > 0 {
			v = (ph - pl) / pl * 100
		}
		if round == 0 || v < overhead {
			overhead = v
		}
	}
	if overhead < 0 {
		overhead = 0
	}
	const budgetPct = 5.0
	t.Logf("phase-recording overhead: %.2f%% (budget %.1f%%)", overhead, budgetPct)
	if overhead > budgetPct {
		t.Errorf("phase-recording overhead %.2f%% exceeds the %.1f%% budget", overhead, budgetPct)
	}
}
