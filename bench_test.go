// Package gosrb_test holds the benchmark harness: one benchmark (or
// sub-benchmark family) per reproduction experiment E1–E10 from
// DESIGN.md §3. The full tables print via `go run ./cmd/srbbench`;
// these benches expose each experiment's core operation to `go test
// -bench` with per-op numbers. WAN-dominated experiments report a
// "sim-ms/op" metric from the simulated clock instead of sleeping.
package gosrb_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/container"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/metadata"
	"gosrb/internal/obs"
	"gosrb/internal/repair"
	"gosrb/internal/replica"
	"gosrb/internal/resilience"
	"gosrb/internal/server"
	"gosrb/internal/simnet"
	"gosrb/internal/sqlengine"
	"gosrb/internal/storage"
	"gosrb/internal/storage/archivefs"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/tlang"
	"gosrb/internal/types"
	"gosrb/internal/workload"
)

// simClock accumulates simulated waits.
type simClock struct{ total time.Duration }

func (c *simClock) sleep(d time.Duration) { c.total += d }

// reportSim attaches the simulated per-op cost as a metric.
func reportSim(b *testing.B, clock *simClock) {
	b.ReportMetric(float64(clock.total.Microseconds())/1000/float64(b.N), "sim-ms/op")
}

// BenchmarkE1ContainerWAN compares per-file WAN access against reading
// members from a locally staged container (paper §2's container claim).
func BenchmarkE1ContainerWAN(b *testing.B) {
	profile := simnet.LinkProfile{RTT: 10 * time.Millisecond, BandwidthBytesPerSec: 10 << 20}
	payload := workload.NewGen(1).Bytes(2048)
	remote := memfs.New()
	storage.WriteAll(remote, "/f", payload)
	w, _ := container.NewWriter(remote, "/seg")
	off, _ := w.Append(payload)

	b.Run("direct", func(b *testing.B) {
		clock := &simClock{}
		wan := simnet.WrapDriver(remote, profile, clock.sleep)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := storage.ReadAll(wan, "/f"); err != nil {
				b.Fatal(err)
			}
		}
		reportSim(b, clock)
	})
	b.Run("container", func(b *testing.B) {
		clock := &simClock{}
		wan := simnet.WrapDriver(remote, profile, clock.sleep)
		local := memfs.New()
		if _, err := storage.Copy(local, "/seg", wan, "/seg"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := container.Read(local, "/seg", off, int64(len(payload))); err != nil {
				b.Fatal(err)
			}
		}
		reportSim(b, clock) // staging cost amortised over b.N member reads
	})
}

// benchCatalogs caches built catalogs: the benchmark framework re-runs
// each sub-benchmark with growing b.N, and rebuilding a 100k-object
// catalog every time would dominate the run.
var benchCatalogs sync.Map // int -> *mcat.Catalog

// benchCatalog builds (or reuses) an n-object catalog.
func benchCatalog(b *testing.B, n int) *mcat.Catalog {
	b.Helper()
	if c, ok := benchCatalogs.Load(n); ok {
		return c.(*mcat.Catalog)
	}
	cat := mcat.New("admin", "sdsc")
	gen := workload.NewGen(7)
	specs := gen.SkySurvey("/lib", n, 16)
	cat.MkCollAll("/lib", "admin")
	for i := 0; i < 16 && i < n; i++ {
		cat.MkCollAll(fmt.Sprintf("/lib/plate%03d", i), "admin")
	}
	for _, s := range specs {
		if _, err := cat.RegisterObject(&types.DataObject{
			Name: s.Name, Collection: s.Collection, Owner: "admin", DataType: s.DataType,
		}); err != nil {
			b.Fatal(err)
		}
		for _, m := range s.Meta {
			cat.AddMeta(s.Path(), types.MetaUser, m)
		}
	}
	benchCatalogs.Store(n, cat)
	return cat
}

// BenchmarkE2CatalogScaling measures equality-query latency at growing
// catalog sizes — "scalable to handle millions of datasets" (§2).
func BenchmarkE2CatalogScaling(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			cat := benchCatalog(b, n)
			q := mcat.Query{Scope: "/lib", Conds: []mcat.Condition{
				{Attr: "survey", Op: "=", Value: "2mass"},
				{Attr: "band", Op: "=", Value: "J"},
			}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cat.RunQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2Ingest measures catalog registration throughput.
func BenchmarkE2Ingest(b *testing.B) {
	cat := mcat.New("admin", "sdsc")
	cat.MkColl("/d", "admin")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.RegisterObject(&types.DataObject{
			Name: fmt.Sprintf("f%09d", i), Collection: "/d", Owner: "admin",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Failover measures reads while the primary resource is
// down: the automatic redirect to a live replica (§3.4).
func BenchmarkE3Failover(b *testing.B) {
	cat := mcat.New("admin", "sdsc")
	br := core.New(cat, "srb1")
	for _, r := range []string{"r1", "r2"} {
		br.AddPhysicalResource("admin", r, types.ClassFileSystem, "memfs", memfs.New())
	}
	cat.MkColl("/d", "admin")
	br.Ingest("admin", core.IngestOpts{Path: "/d/f", Data: workload.NewGen(1).Bytes(16 << 10), Resource: "r1"})
	br.Replicate("admin", "/d/f", "r2")
	b.Run("healthy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := br.Get("admin", "/d/f"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("failover", func(b *testing.B) {
		cat.SetResourceOnline("r1", false)
		defer cat.SetResourceOnline("r1", true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := br.Get("admin", "/d/f"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4LoadBalance measures concurrent reads over k replicas with
// both selection policies (§3.2 plus the E4a ablation).
func BenchmarkE4LoadBalance(b *testing.B) {
	payload := workload.NewGen(13).Bytes(4 << 10)
	for _, k := range []int{1, 2, 4} {
		for _, policy := range []replica.Policy{replica.FirstAlive, replica.RoundRobin} {
			name := fmt.Sprintf("replicas=%d/first-alive", k)
			if policy == replica.RoundRobin {
				name = fmt.Sprintf("replicas=%d/round-robin", k)
			}
			b.Run(name, func(b *testing.B) {
				cat := mcat.New("admin", "sdsc")
				br := core.New(cat, "srb1")
				for i := 0; i < k; i++ {
					br.AddPhysicalResource("admin", fmt.Sprintf("r%d", i), types.ClassFileSystem, "memfs", memfs.New())
				}
				cat.MkColl("/d", "admin")
				br.Ingest("admin", core.IngestOpts{Path: "/d/f", Data: payload, Resource: "r0"})
				for i := 1; i < k; i++ {
					br.Replicate("admin", "/d/f", fmt.Sprintf("r%d", i))
				}
				br.Replicas().SetPolicy(policy)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := br.Get("admin", "/d/f"); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// fedRig wires a two-server zone for the federation benches.
type fedRig struct {
	s1, s2       *server.Server
	addr1, addr2 string
}

func newFedRig(b *testing.B, mode server.FederationMode, payload []byte) *fedRig {
	b.Helper()
	cat := mcat.New("admin", "sdsc")
	b1 := core.New(cat, "srb1")
	b2 := core.New(cat, "srb2")
	b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New())
	b2.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs", memfs.New())
	cat.MkColl("/d", "admin")
	if _, err := b2.Ingest("admin", core.IngestOpts{Path: "/d/f", Data: payload, Resource: "disk2"}); err != nil {
		b.Fatal(err)
	}
	authn := auth.New()
	authn.Register("admin", "pw")
	s1 := server.New(b1, authn, mode)
	s2 := server.New(b2, authn, mode)
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s1.AddPeer("srb2", addr2, "zs")
	s2.AddPeer("srb1", addr1, "zs")
	b.Cleanup(func() { s1.Close(); s2.Close() })
	return &fedRig{s1: s1, s2: s2, addr1: addr1, addr2: addr2}
}

// BenchmarkE5Federation measures gets against the owner directly, via
// a proxying peer, and after a redirect (§3.1; E5a ablation).
func BenchmarkE5Federation(b *testing.B) {
	payload := workload.NewGen(17).Bytes(64 << 10)
	cases := []struct {
		name string
		mode server.FederationMode
		via  func(*fedRig) string
	}{
		{"direct", server.Proxy, func(r *fedRig) string { return r.addr2 }},
		{"proxy", server.Proxy, func(r *fedRig) string { return r.addr1 }},
		{"redirect", server.Redirect, func(r *fedRig) string { return r.addr1 }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			rig := newFedRig(b, tc.mode, payload)
			cl, err := client.Dial(tc.via(rig), "admin", "pw")
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.Get("/d/f"); err != nil { // warm (redirect hops here)
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Get("/d/f"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6ParallelTransfer measures multi-stream bulk retrieval of a
// 4 MiB object over loopback TCP.
func BenchmarkE6ParallelTransfer(b *testing.B) {
	size := 4 << 20
	payload := workload.NewGen(19).Bytes(size)
	rig := newFedRig(b, server.Proxy, payload)
	for _, streams := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			cl, err := client.Dial(rig.addr2, "admin", "pw")
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := cl.ParallelGet("/d/f", streams)
				if err != nil {
					b.Fatal(err)
				}
				if len(data) != size {
					b.Fatal("short read")
				}
			}
		})
	}
}

// BenchmarkE7SyncIngest measures ingest into logical resources of
// growing width, reporting the simulated synchronous-replication cost.
func BenchmarkE7SyncIngest(b *testing.B) {
	payload := workload.NewGen(3).Bytes(64 << 10)
	profile := simnet.LinkProfile{RTT: 5 * time.Millisecond, BandwidthBytesPerSec: 50 << 20}
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("members=%d", k), func(b *testing.B) {
			cat := mcat.New("admin", "sdsc")
			br := core.New(cat, "srb1")
			clock := &simClock{}
			names := make([]string, k)
			for i := 0; i < k; i++ {
				names[i] = fmt.Sprintf("disk%d", i)
				wan := simnet.WrapDriver(memfs.New(), profile, clock.sleep)
				br.AddPhysicalResource("admin", names[i], types.ClassFileSystem, "memfs", wan)
			}
			target := names[0]
			if k > 1 {
				br.AddLogicalResource("admin", "lr", names)
				target = "lr"
			}
			cat.MkColl("/d", "admin")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := br.Ingest("admin", core.IngestOpts{
					Path: fmt.Sprintf("/d/f%09d", i), Data: payload, Resource: target,
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, clock)
		})
	}
}

// BenchmarkE8MetadataQuery measures the MySRB operator set on a 50k
// catalog: indexed equality vs scanning comparisons (§6).
func BenchmarkE8MetadataQuery(b *testing.B) {
	cat := benchCatalog(b, 50000)
	cases := []struct {
		name  string
		conds []mcat.Condition
	}{
		{"eq-indexed", []mcat.Condition{{Attr: "survey", Op: "=", Value: "2mass"}}},
		{"eq-and-eq", []mcat.Condition{{Attr: "survey", Op: "=", Value: "2mass"}, {Attr: "band", Op: "=", Value: "J"}}},
		{"range-scan", []mcat.Condition{{Attr: "mag", Op: ">", Value: "12"}}},
		{"like-scan", []mcat.Condition{{Attr: "telescope", Op: "like", Value: "%palomar%"}}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			q := mcat.Query{Scope: "/lib", Conds: tc.conds}
			for i := 0; i < b.N; i++ {
				if _, err := cat.RunQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9TLang measures T-language extraction and the built-in
// result templates (§5).
func BenchmarkE9TLang(b *testing.B) {
	gen := workload.NewGen(9)
	spec := gen.SkySurvey("/lib", 1, 1)[0]
	header := gen.FITSHeader(spec)
	reg := metadata.NewRegistry()
	b.Run("extract-fits", func(b *testing.B) {
		b.SetBytes(int64(len(header)))
		for i := 0; i < b.N; i++ {
			if _, err := reg.Extract("fits image", "fits-cards", bytes.NewReader(header)); err != nil {
				b.Fatal(err)
			}
		}
	})
	res := &sqlengine.Result{Columns: []string{"survey", "name", "mag"}}
	for i := 0; i < 1000; i++ {
		res.Rows = append(res.Rows, sqlengine.Row{
			sqlengine.String("2mass"), sqlengine.String(fmt.Sprintf("obj%06d", i)), sqlengine.Number(float64(i % 17)),
		})
	}
	for _, tpl := range []string{"HTMLREL", "HTMLNEST", "XMLREL"} {
		b.Run("render-"+tpl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var sb bytes.Buffer
				if err := tlang.RenderBuiltin(tpl, &sb, res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10ArchiveCache measures archive reads cold (staging) and
// from a cache replica (§5's pin/purge machinery keeps the latter).
func BenchmarkE10ArchiveCache(b *testing.B) {
	cat := mcat.New("admin", "sdsc")
	br := core.New(cat, "srb1")
	clock := &simClock{}
	arch := archivefs.New(archivefs.Config{StageLatency: 50 * time.Millisecond, StageCapacity: 1})
	arch.SetSleep(clock.sleep)
	br.AddPhysicalResource("admin", "tape", types.ClassArchive, "archivefs", arch)
	br.AddPhysicalResource("admin", "cache1", types.ClassCache, "memfs", memfs.New())
	cat.MkColl("/a", "admin")
	gen := workload.NewGen(4)
	// Two objects so a capacity-1 stage cache always misses.
	br.Ingest("admin", core.IngestOpts{Path: "/a/o1", Data: gen.Bytes(8 << 10), Resource: "tape"})
	br.Ingest("admin", core.IngestOpts{Path: "/a/o2", Data: gen.Bytes(8 << 10), Resource: "tape"})
	b.Run("archive-cold", func(b *testing.B) {
		clock.total = 0
		for i := 0; i < b.N; i++ {
			p := "/a/o1"
			if i%2 == 1 {
				p = "/a/o2"
			}
			if _, err := br.Get("admin", p); err != nil {
				b.Fatal(err)
			}
		}
		reportSim(b, clock)
	})
	b.Run("cache-replica", func(b *testing.B) {
		br.Replicate("admin", "/a/o1", "cache1")
		clock.total = 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := br.Replicas().ReadAll("/a/o1", "cache1"); err != nil {
				b.Fatal(err)
			}
		}
		reportSim(b, clock)
	})
}

// BenchmarkE1aContainerGranularity is the member-size ablation.
func BenchmarkE1aContainerGranularity(b *testing.B) {
	gen := workload.NewGen(2)
	for _, size := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("member=%dB", size), func(b *testing.B) {
			d := memfs.New()
			w, _ := container.NewWriter(d, "/seg")
			off, _ := w.Append(gen.Bytes(size))
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := container.Read(d, "/seg", off, int64(size)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireRoundTrip isolates the protocol cost: an authenticated
// stat round trip on loopback.
func BenchmarkWireRoundTrip(b *testing.B) {
	rig := newFedRig(b, server.Proxy, []byte("x"))
	cl, err := client.Dial(rig.addr2, "admin", "pw")
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Stat("/d/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentBrokerOps drives mixed metadata/data load through
// one broker to expose catalog lock contention.
func BenchmarkConcurrentBrokerOps(b *testing.B) {
	cat := mcat.New("admin", "sdsc")
	br := core.New(cat, "srb1")
	br.AddPhysicalResource("admin", "r1", types.ClassFileSystem, "memfs", memfs.New())
	cat.MkColl("/d", "admin")
	payload := workload.NewGen(5).Bytes(1 << 10)
	for i := 0; i < 100; i++ {
		br.Ingest("admin", core.IngestOpts{
			Path: fmt.Sprintf("/d/f%03d", i), Data: payload, Resource: "r1",
			Meta: []types.AVU{{Name: "i", Value: fmt.Sprint(i % 10)}},
		})
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			switch i % 3 {
			case 0:
				br.Get("admin", fmt.Sprintf("/d/f%03d", i%100))
			case 1:
				br.Query("admin", mcat.Query{Scope: "/d", Conds: []mcat.Condition{{Attr: "i", Op: "=", Value: "3"}}})
			case 2:
				br.List("admin", "/d")
			}
			i++
		}
	})
}

// obsBenchBroker builds a one-disk broker preloaded with objects for
// the instrumentation-overhead benchmark. instrumented=false turns the
// registry off *before* mounting, so the baseline broker records no op
// latencies and its driver is not wrapped in the byte-counting
// decorator — the true zero-telemetry cost.
func obsBenchBroker(tb testing.TB, instrumented bool, objects int, payload []byte) *core.Broker {
	tb.Helper()
	cat := mcat.New("admin", "sdsc")
	br := core.New(cat, "srb1")
	if !instrumented {
		br.SetMetrics(nil)
	}
	br.AddPhysicalResource("admin", "r1", types.ClassFileSystem, "memfs", memfs.New())
	cat.MkColl("/d", "admin")
	for i := 0; i < objects; i++ {
		if _, err := br.Ingest("admin", core.IngestOpts{
			Path: fmt.Sprintf("/d/f%03d", i), Data: payload, Resource: "r1",
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return br
}

// obsBenchOp runs one iteration of the measured op: a Get, or for the
// put path a Reingest (rewrite-in-place, so the catalog stays the same
// size across b.N iterations).
func obsBenchOp(br *core.Broker, put bool, i, objects int, payload []byte) error {
	path := fmt.Sprintf("/d/f%03d", i%objects)
	if put {
		return br.Reingest("admin", path, payload)
	}
	_, err := br.Get("admin", path)
	return err
}

// BenchmarkObsOverhead compares broker Put/Get latency with telemetry
// on (the default registry) against the SetMetrics(nil) baseline. The
// delta is the full cost of this PR's instrumentation: op histograms,
// cached op handles and the storage byte-counting decorator.
func BenchmarkObsOverhead(b *testing.B) {
	payload := workload.NewGen(21).Bytes(4 << 10)
	const objects = 64
	for _, op := range []struct {
		name string
		put  bool
	}{{"get", false}, {"put", true}} {
		for _, mode := range []struct {
			name  string
			instr bool
		}{{"instrumented", true}, {"baseline", false}} {
			b.Run(op.name+"/"+mode.name, func(b *testing.B) {
				br := obsBenchBroker(b, mode.instr, objects, payload)
				b.SetBytes(int64(len(payload)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := obsBenchOp(br, op.put, i, objects, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestObsOverheadReport measures the same four cells with
// testing.Benchmark and writes BENCH_obs.json so the overhead is
// tracked from this PR onward. Gated behind BENCH_OBS=1 (the
// Makefile's bench-obs target) to keep the normal test run fast.
func TestObsOverheadReport(t *testing.T) {
	if os.Getenv("BENCH_OBS") == "" {
		t.Skip("set BENCH_OBS=1 to emit BENCH_obs.json")
	}
	payload := workload.NewGen(21).Bytes(4 << 10)
	const objects = 64
	// Best-of-3 rounds per cell: the minimum is the stable estimator for
	// a microbenchmark — scheduler noise only ever inflates a round.
	measure := func(instr, put bool) float64 {
		br := obsBenchBroker(t, instr, objects, payload)
		best := 0.0
		for round := 0; round < 3; round++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := obsBenchOp(br, put, i, objects, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
			if v := float64(res.NsPerOp()); round == 0 || v < best {
				best = v
			}
		}
		return best
	}
	type cell struct {
		InstrumentedNsPerOp float64 `json:"instrumented_ns_per_op"`
		BaselineNsPerOp     float64 `json:"baseline_ns_per_op"`
		OverheadPct         float64 `json:"overhead_pct"`
	}
	mk := func(put bool) cell {
		instr, base := measure(true, put), measure(false, put)
		c := cell{InstrumentedNsPerOp: instr, BaselineNsPerOp: base}
		if base > 0 {
			c.OverheadPct = (instr - base) / base * 100
		}
		return c
	}
	report := struct {
		Benchmark    string `json:"benchmark"`
		PayloadBytes int    `json:"payload_bytes"`
		Objects      int    `json:"objects"`
		Get          cell   `json:"get"`
		Put          cell   `json:"put"`
	}{
		Benchmark:    "broker-obs-overhead",
		PayloadBytes: len(payload),
		Objects:      objects,
		Get:          mk(false),
		Put:          mk(true),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("get: %.0f ns instrumented vs %.0f ns baseline (%.2f%% overhead)",
		report.Get.InstrumentedNsPerOp, report.Get.BaselineNsPerOp, report.Get.OverheadPct)
	t.Logf("put: %.0f ns instrumented vs %.0f ns baseline (%.2f%% overhead)",
		report.Put.InstrumentedNsPerOp, report.Put.BaselineNsPerOp, report.Put.OverheadPct)
}

// TestObsOverheadGate re-measures the instrumentation overhead and
// fails when it regressed more than 5 percentage points past the
// committed BENCH_obs.json baseline — the `make bench-obs-gate`
// regression fence. Gated behind BENCH_OBS_GATE=1; skips when no
// baseline has been recorded yet.
func TestObsOverheadGate(t *testing.T) {
	if os.Getenv("BENCH_OBS_GATE") == "" {
		t.Skip("set BENCH_OBS_GATE=1 to check against BENCH_obs.json")
	}
	raw, err := os.ReadFile("BENCH_obs.json")
	if err != nil {
		t.Skipf("no baseline: %v (run `make bench-obs` first)", err)
	}
	var baseline struct {
		Get struct {
			OverheadPct float64 `json:"overhead_pct"`
		} `json:"get"`
		Put struct {
			OverheadPct float64 `json:"overhead_pct"`
		} `json:"put"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("unreadable BENCH_obs.json: %v", err)
	}
	payload := workload.NewGen(21).Bytes(4 << 10)
	const objects = 64
	// Pairwise rounds: each round times the instrumented and the bare
	// broker back to back and the gate keeps the *lowest* overhead seen.
	// Measuring the two cells in separate phases lets one background
	// load burst inflate a whole phase and fake a regression; a paired
	// round exposes both cells to the same interference, and the min
	// over rounds is the run least distorted by the scheduler.
	run := func(br *core.Broker, put bool) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := obsBenchOp(br, put, i, objects, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	const slackPct = 5.0
	for _, op := range []struct {
		name     string
		put      bool
		baseline float64
	}{{"get", false, baseline.Get.OverheadPct}, {"put", true, baseline.Put.OverheadPct}} {
		instrBr := obsBenchBroker(t, true, objects, payload)
		baseBr := obsBenchBroker(t, false, objects, payload)
		overhead := 0.0
		for round := 0; round < 5; round++ {
			instr, base := run(instrBr, op.put), run(baseBr, op.put)
			v := 0.0
			if base > 0 {
				v = (instr - base) / base * 100
			}
			if round == 0 || v < overhead {
				overhead = v
			}
		}
		// A negative recorded baseline is scheduler luck at report time,
		// not a real speedup; clamping to 0 keeps the fence at "no more
		// than slack over free" instead of demanding negative overhead.
		allowed := op.baseline
		if allowed < 0 {
			allowed = 0
		}
		t.Logf("%s: %.2f%% overhead now vs %.2f%% at baseline", op.name, overhead, op.baseline)
		if overhead > allowed+slackPct {
			t.Errorf("%s instrumentation overhead %.2f%% exceeds baseline %.2f%% + %.1f points",
				op.name, overhead, allowed, slackPct)
		}
	}
}

// replBenchRig builds a one-broker rig with a 3-member logical
// resource whose members sit behind a simulated 2ms-RTT link (the
// regime where synchronous fan-out hurts), plus a running repair
// engine draining the deferred fan-out. policy "" is the sync default.
func replBenchRig(tb testing.TB, policy string) (*core.Broker, *mcat.Catalog, func()) {
	tb.Helper()
	cat := mcat.New("admin", "sdsc")
	br := core.New(cat, "srb1")
	profile := simnet.LinkProfile{RTT: 2 * time.Millisecond}
	names := []string{"w1", "w2", "w3"}
	for _, n := range names {
		if err := br.AddPhysicalResource("admin", n, types.ClassFileSystem, "memfs",
			simnet.WrapDriver(memfs.New(), profile, nil)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := br.AddLogicalResourcePolicy("admin", "lr", names, policy); err != nil {
		tb.Fatal(err)
	}
	cat.MkColl("/d", "admin")
	eng := repair.New(repair.Config{
		Workers: 4,
		Queue:   cat,
		Exec:    br.RunRepairTask,
		Metrics: br.Metrics(),
		Backoff: resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Poll:    time.Millisecond,
		Server:  "srb1",
		Seed:    1,
	})
	br.SetRepair(eng)
	eng.Start()
	return br, cat, eng.Stop
}

// BenchmarkRepairAsyncIngest compares client-visible ingest latency
// onto a 3-member logical resource under the sync default (the write
// path pays every member's RTT) against async:1 (one replica lands
// synchronously, the repair engine fans out the rest off the clock).
func BenchmarkRepairAsyncIngest(b *testing.B) {
	payload := workload.NewGen(23).Bytes(8 << 10)
	for _, tc := range []struct{ name, policy string }{
		{"sync", ""},
		{"async-1", "async:1"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			br, _, stop := replBenchRig(b, tc.policy)
			defer stop()
			n := 0
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n++
				if _, err := br.Ingest("admin", core.IngestOpts{
					Path: fmt.Sprintf("/d/f%09d", n), Data: payload, Resource: "lr",
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRepairBenchReport measures the sync-vs-async ingest cells with
// testing.Benchmark and writes BENCH_repair.json (the Makefile's
// bench-repair target, gated behind BENCH_REPAIR=1). The async write
// path must be at least 1.5x faster than the synchronous 3-way
// fan-out, and the report also records how long the repair engine took
// to drain the deferred replicas afterwards — the cost did not vanish,
// it moved off the client's clock.
func TestRepairBenchReport(t *testing.T) {
	if os.Getenv("BENCH_REPAIR") == "" {
		t.Skip("set BENCH_REPAIR=1 to emit BENCH_repair.json")
	}
	payload := workload.NewGen(23).Bytes(8 << 10)
	var drainMS float64
	measure := func(policy string) float64 {
		best := 0.0
		for round := 0; round < 3; round++ {
			br, cat, stop := replBenchRig(t, policy)
			n := 0
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					n++
					if _, err := br.Ingest("admin", core.IngestOpts{
						Path: fmt.Sprintf("/d/f%09d", n), Data: payload, Resource: "lr",
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
			if policy != "" {
				drainStart := time.Now()
				for {
					if n, _ := cat.RepairBacklog(); n == 0 {
						break
					}
					time.Sleep(time.Millisecond)
				}
				drainMS = float64(time.Since(drainStart).Microseconds()) / 1000
			}
			stop()
			if v := float64(res.NsPerOp()); round == 0 || v < best {
				best = v
			}
		}
		return best
	}
	syncNs := measure("")
	asyncNs := measure("async:1")
	speedup := 0.0
	if asyncNs > 0 {
		speedup = syncNs / asyncNs
	}
	report := struct {
		Benchmark    string  `json:"benchmark"`
		PayloadBytes int     `json:"payload_bytes"`
		Members      int     `json:"members"`
		SyncNsPerOp  float64 `json:"sync_ns_per_op"`
		AsyncNsPerOp float64 `json:"async_ns_per_op"`
		Speedup      float64 `json:"speedup"`
		AsyncDrainMS float64 `json:"async_drain_ms"`
	}{
		Benchmark:    "async-replication-ingest",
		PayloadBytes: len(payload),
		Members:      3,
		SyncNsPerOp:  syncNs,
		AsyncNsPerOp: asyncNs,
		Speedup:      speedup,
		AsyncDrainMS: drainMS,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_repair.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sync %.0f ns/op vs async %.0f ns/op: %.2fx speedup (drain %.1f ms)",
		syncNs, asyncNs, speedup, drainMS)
	if speedup < 1.5 {
		t.Errorf("async ingest speedup %.2fx, want >= 1.5x over sync fan-out", speedup)
	}
}

// gridBenchCaptures polls the registry the way the grid console does —
// a rollup capture plus a 1m window query per tick — at an interval far
// more aggressive than the 10s production default, so the measured
// overhead is a ceiling on what the console costs a busy broker.
func gridBenchCaptures(reg *obs.Registry, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				reg.CaptureRollup(time.Now())
				reg.Window(time.Minute)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// BenchmarkGridRollup isolates the windowed-telemetry primitives on a
// warm registry: one periodic capture, and one 5m window query (the
// /metrics?window= and `srb top` read path).
func BenchmarkGridRollup(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < 32; i++ {
		reg.Op(fmt.Sprintf("server.op%02d", i)).Observe(time.Millisecond, nil)
		reg.Counter(fmt.Sprintf("c%02d", i)).Inc()
	}
	b.Run("capture", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg.CaptureRollup(time.Now())
		}
	})
	b.Run("window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg.Window(5 * time.Minute)
		}
	})
}

// gridBenchMeasure times broker gets bare vs with the console polling
// loop running, best-of-rounds.
func gridBenchMeasure(tb testing.TB, rounds int, polling bool, payload []byte) float64 {
	tb.Helper()
	const objects = 64
	br := obsBenchBroker(tb, true, objects, payload)
	if polling {
		defer gridBenchCaptures(br.Metrics(), 2*time.Millisecond)()
	}
	best := 0.0
	for round := 0; round < rounds; round++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := obsBenchOp(br, false, i, objects, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		if v := float64(res.NsPerOp()); round == 0 || v < best {
			best = v
		}
	}
	return best
}

// TestGridBenchReport measures what the grid console costs the hot
// path: broker Get latency with a 2ms capture+window polling loop (vs
// idle telemetry), plus the raw capture and window-query costs. Writes
// BENCH_grid.json (the Makefile's bench-grid target, BENCH_GRID=1).
func TestGridBenchReport(t *testing.T) {
	if os.Getenv("BENCH_GRID") == "" {
		t.Skip("set BENCH_GRID=1 to emit BENCH_grid.json")
	}
	payload := workload.NewGen(29).Bytes(4 << 10)
	plain := gridBenchMeasure(t, 3, false, payload)
	polled := gridBenchMeasure(t, 3, true, payload)
	overhead := 0.0
	if plain > 0 {
		overhead = (polled - plain) / plain * 100
	}
	reg := obs.NewRegistry()
	for i := 0; i < 32; i++ {
		reg.Op(fmt.Sprintf("server.op%02d", i)).Observe(time.Millisecond, nil)
	}
	capRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg.CaptureRollup(time.Now())
		}
	})
	winRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg.Window(5 * time.Minute)
		}
	})
	report := struct {
		Benchmark      string  `json:"benchmark"`
		PayloadBytes   int     `json:"payload_bytes"`
		PollEveryMS    float64 `json:"poll_every_ms"`
		PlainNsPerOp   float64 `json:"plain_ns_per_op"`
		PolledNsPerOp  float64 `json:"polled_ns_per_op"`
		OverheadPct    float64 `json:"overhead_pct"`
		CaptureNsPerOp float64 `json:"capture_ns_per_op"`
		WindowNsPerOp  float64 `json:"window_ns_per_op"`
	}{
		Benchmark:      "grid-rollup-overhead",
		PayloadBytes:   len(payload),
		PollEveryMS:    2,
		PlainNsPerOp:   plain,
		PolledNsPerOp:  polled,
		OverheadPct:    overhead,
		CaptureNsPerOp: float64(capRes.NsPerOp()),
		WindowNsPerOp:  float64(winRes.NsPerOp()),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_grid.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("get: %.0f ns idle vs %.0f ns under 2ms console polling (%.2f%% overhead); capture %.0f ns, window %.0f ns",
		plain, polled, overhead, report.CaptureNsPerOp, report.WindowNsPerOp)
}

// TestGridBenchGate re-measures the console-polling overhead and fails
// when it regressed more than 5 percentage points past the committed
// BENCH_grid.json baseline — the `make bench-grid-gate` fence riding
// `make check`. Gated behind BENCH_GRID_GATE=1; skips with no baseline.
func TestGridBenchGate(t *testing.T) {
	if os.Getenv("BENCH_GRID_GATE") == "" {
		t.Skip("set BENCH_GRID_GATE=1 to check against BENCH_grid.json")
	}
	raw, err := os.ReadFile("BENCH_grid.json")
	if err != nil {
		t.Skipf("no baseline: %v (run `make bench-grid` first)", err)
	}
	var baseline struct {
		OverheadPct float64 `json:"overhead_pct"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("unreadable BENCH_grid.json: %v", err)
	}
	payload := workload.NewGen(29).Bytes(4 << 10)
	// Pairwise rounds, same reasoning as the obs gate: time the idle and
	// the polled broker back to back each round so one background load
	// burst cannot inflate a whole phase, and keep the round with the
	// lowest overhead — the one least distorted by the scheduler.
	const objects = 64
	plainBr := obsBenchBroker(t, true, objects, payload)
	polledBr := obsBenchBroker(t, true, objects, payload)
	defer gridBenchCaptures(polledBr.Metrics(), 2*time.Millisecond)()
	run := func(br *core.Broker) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := obsBenchOp(br, false, i, objects, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	overhead := 0.0
	for round := 0; round < 5; round++ {
		plain, polled := run(plainBr), run(polledBr)
		v := 0.0
		if plain > 0 {
			v = (polled - plain) / plain * 100
		}
		if round == 0 || v < overhead {
			overhead = v
		}
	}
	const slackPct = 5.0
	// A sub-zero baseline is measurement noise (polling happened to win
	// a round); the fence floor is "no overhead", not "negative".
	allowed := baseline.OverheadPct
	if allowed < 0 {
		allowed = 0
	}
	t.Logf("console-polling overhead %.2f%% now vs %.2f%% at baseline", overhead, baseline.OverheadPct)
	if overhead > allowed+slackPct {
		t.Errorf("rollup overhead %.2f%% exceeds baseline %.2f%% + %.1f points",
			overhead, allowed, slackPct)
	}
}

// flightBenchFlushes runs the flight recorder's journal flush loop at
// an aggressive cadence (vs the 30s production default): one rollup
// capture plus one incremental journal flush per tick, against a real
// on-disk TelemetryStore, so the measured overhead is a ceiling on what
// durable telemetry costs a busy broker.
func flightBenchFlushes(tb testing.TB, reg *obs.Registry, every time.Duration) (stop func()) {
	tb.Helper()
	telem, err := obs.OpenTelemetryStore(tb.TempDir(), "bench", time.Hour)
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				reg.CaptureRollup(time.Now())
				if err := telem.Flush(reg, nil, time.Now()); err != nil {
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		telem.Close(reg, nil, time.Now())
	}
}

// TestFlightBenchReport measures what durable telemetry costs the hot
// path: broker Get latency with a 2ms capture+journal-flush loop (vs
// idle telemetry). Writes BENCH_flight.json (the Makefile's
// bench-flight target, BENCH_FLIGHT=1).
func TestFlightBenchReport(t *testing.T) {
	if os.Getenv("BENCH_FLIGHT") == "" {
		t.Skip("set BENCH_FLIGHT=1 to emit BENCH_flight.json")
	}
	payload := workload.NewGen(31).Bytes(4 << 10)
	const objects = 64
	measure := func(flushing bool) float64 {
		br := obsBenchBroker(t, true, objects, payload)
		if flushing {
			defer flightBenchFlushes(t, br.Metrics(), 2*time.Millisecond)()
		}
		best := 0.0
		for round := 0; round < 3; round++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := obsBenchOp(br, false, i, objects, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
			if v := float64(res.NsPerOp()); round == 0 || v < best {
				best = v
			}
		}
		return best
	}
	plain := measure(false)
	flushed := measure(true)
	overhead := 0.0
	if plain > 0 {
		overhead = (flushed - plain) / plain * 100
	}
	report := struct {
		Benchmark      string  `json:"benchmark"`
		PayloadBytes   int     `json:"payload_bytes"`
		FlushEveryMS   float64 `json:"flush_every_ms"`
		PlainNsPerOp   float64 `json:"plain_ns_per_op"`
		FlushedNsPerOp float64 `json:"flushed_ns_per_op"`
		OverheadPct    float64 `json:"overhead_pct"`
	}{
		Benchmark:      "flight-flush-overhead",
		PayloadBytes:   len(payload),
		FlushEveryMS:   2,
		PlainNsPerOp:   plain,
		FlushedNsPerOp: flushed,
		OverheadPct:    overhead,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_flight.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("get: %.0f ns idle vs %.0f ns under 2ms journal flushing (%.2f%% overhead)",
		plain, flushed, overhead)
}

// TestFlightBenchGate re-measures the journal-flush overhead and fails
// when it regressed more than 5 percentage points past the committed
// BENCH_flight.json baseline — the `make bench-flight-gate` fence
// riding `make check`. Gated behind BENCH_FLIGHT_GATE=1; skips with no
// baseline.
func TestFlightBenchGate(t *testing.T) {
	if os.Getenv("BENCH_FLIGHT_GATE") == "" {
		t.Skip("set BENCH_FLIGHT_GATE=1 to check against BENCH_flight.json")
	}
	raw, err := os.ReadFile("BENCH_flight.json")
	if err != nil {
		t.Skipf("no baseline: %v (run `make bench-flight` first)", err)
	}
	var baseline struct {
		OverheadPct float64 `json:"overhead_pct"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("unreadable BENCH_flight.json: %v", err)
	}
	payload := workload.NewGen(31).Bytes(4 << 10)
	// Pairwise rounds, same reasoning as the obs and grid gates: time
	// the idle and the flushing broker back to back each round and keep
	// the round with the lowest overhead.
	const objects = 64
	plainBr := obsBenchBroker(t, true, objects, payload)
	flushBr := obsBenchBroker(t, true, objects, payload)
	defer flightBenchFlushes(t, flushBr.Metrics(), 2*time.Millisecond)()
	run := func(br *core.Broker) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := obsBenchOp(br, false, i, objects, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	overhead := 0.0
	for round := 0; round < 5; round++ {
		plain, flushed := run(plainBr), run(flushBr)
		v := 0.0
		if plain > 0 {
			v = (flushed - plain) / plain * 100
		}
		if round == 0 || v < overhead {
			overhead = v
		}
	}
	const slackPct = 5.0
	allowed := baseline.OverheadPct
	if allowed < 0 {
		allowed = 0
	}
	t.Logf("journal-flush overhead %.2f%% now vs %.2f%% at baseline", overhead, baseline.OverheadPct)
	if overhead > allowed+slackPct {
		t.Errorf("flush overhead %.2f%% exceeds baseline %.2f%% + %.1f points",
			overhead, allowed, slackPct)
	}
}
