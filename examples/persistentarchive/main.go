// Persistent archive: the paper's preservation story. Data is
// replicated for fault tolerance, survives a storage outage, carries
// versions through checkout/checkin, and migrates to a new storage
// generation "without changing the name by which the data is
// discovered and accessed" (§3.6).
//
//	go run ./examples/persistentarchive
package main

import (
	"errors"
	"fmt"
	"log"

	"gosrb/internal/audit"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

func main() {
	cat := mcat.New("admin", "nara")
	broker := core.New(cat, "srb1")

	// Two storage generations plus the one that will replace them.
	check(broker.AddPhysicalResource("admin", "gen1-disk", types.ClassFileSystem, "memfs", memfs.New()))
	check(broker.AddPhysicalResource("admin", "gen1-tape", types.ClassArchive, "memfs", memfs.New()))
	check(broker.AddLogicalResource("admin", "preserve", []string{"gen1-disk", "gen1-tape"}))

	check(cat.AddUser(types.User{Name: "archivist", Domain: "nara"}))
	check(cat.MkColl("/archive", "archivist"))
	check(cat.MkColl("/archive/1999", "archivist"))

	// Ingest into the logical resource: synchronous replication means
	// every record immediately exists on both storage systems.
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/archive/1999/record%02d", i)
		_, err := broker.Ingest("archivist", core.IngestOpts{
			Path:     path,
			Data:     []byte(fmt.Sprintf("record %d, accessioned 1999", i)),
			Resource: "preserve",
			Meta:     []types.AVU{{Name: "accession", Value: "1999"}},
		})
		check(err)
	}
	o, _ := cat.GetObject("/archive/1999/record00")
	fmt.Printf("each record has %d replicas (disk + tape), synchronously written\n", len(o.Replicas))

	// Disaster: the disk generation fails. Access continues from tape —
	// "the system automatically redirecting access to a replica" (§3.4).
	check(cat.SetResourceOnline("gen1-disk", false))
	data, err := broker.Get("archivist", "/archive/1999/record00")
	check(err)
	fmt.Printf("disk offline, read from tape replica: %q\n", data)
	check(cat.SetResourceOnline("gen1-disk", true))

	// Version control: checkout/checkin preserves earlier states.
	check(broker.Checkout("archivist", "/archive/1999/record00"))
	check(broker.Checkin("archivist", "/archive/1999/record00",
		[]byte("record 0, accessioned 1999 (redacted 2002)"), "privacy redaction"))
	vers, err := broker.Versions("archivist", "/archive/1999/record00")
	check(err)
	v1, err := broker.GetVersion("archivist", "/archive/1999/record00", 1)
	check(err)
	fmt.Printf("after redaction: %d preserved version(s); v1 = %q\n", len(vers), v1)

	// Technology refresh: a new storage generation arrives. Replicas
	// move physically; logical names never change.
	check(broker.AddPhysicalResource("admin", "gen2-disk", types.ClassFileSystem, "memfs", memfs.New()))
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/archive/1999/record%02d", i)
		obj, err := cat.GetObject(path)
		check(err)
		// Move the disk replica to the new generation.
		for _, rep := range obj.Replicas {
			if rep.Resource == "gen1-disk" {
				check(broker.PhysicalMove("archivist", path, rep.Number, "gen2-disk"))
			}
		}
	}
	// The old disk can now be retired; names and metadata are intact.
	check(cat.SetResourceOnline("gen1-disk", false))
	data, err = broker.Get("archivist", "/archive/1999/record01")
	check(err)
	fmt.Printf("after migration to gen2-disk, same name still reads: %q\n", data)
	hits, err := broker.Query("archivist", mcat.Query{Scope: "/archive",
		Conds: []mcat.Condition{{Attr: "accession", Op: "=", Value: "1999"}}})
	check(err)
	fmt.Printf("discovery unchanged: %d records found by accession year\n", len(hits))

	// A collection-level move also preserves everything (recursive
	// movement command, §3.6).
	check(cat.MkColl("/archive/accessions", "archivist"))
	check(broker.Move("archivist", "/archive/1999", "/archive/accessions/1999"))
	if _, err := broker.Get("archivist", "/archive/accessions/1999/record00"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("collection reorganised; objects, metadata and versions followed")

	// The audit trail recorded the whole preservation history.
	recs := cat.Audit.Query(audit.Filter{Op: "physmove"})
	fmt.Printf("audit: %d physical moves recorded\n", len(recs))
	if _, err := broker.Get("intruder", "/archive/accessions/1999/record00"); errors.Is(err, types.ErrPermission) {
		denied := cat.Audit.Query(audit.Filter{User: "intruder"})
		fmt.Printf("audit: %d denied access attempt(s) by 'intruder'\n", len(denied))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
