// Federation: two SRB servers at different "sites" sharing one MCAT.
// A client connected to either server reaches data held by the other —
// "users can connect to any SRB server to access data from any other
// SRB server" (§3.1) — via server-side proxying, with parallel-stream
// bulk transfer on top.
//
//	go run ./examples/federation
package main

import (
	"bytes"
	"fmt"
	"log"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/server"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
	"gosrb/internal/workload"
)

func main() {
	// One shared MCAT; two servers, each owning one site's storage.
	cat := mcat.New("admin", "zone")
	sdsc := core.New(cat, "srb-sdsc")
	caltech := core.New(cat, "srb-caltech")
	check(sdsc.AddPhysicalResource("admin", "unix-sdsc", types.ClassFileSystem, "memfs", memfs.New()))
	check(caltech.AddPhysicalResource("admin", "hpss-caltech", types.ClassArchive, "memfs", memfs.New()))

	// Zone-wide single sign-on: one credential registry.
	authn := auth.New()
	authn.Register("admin", "adminpw")
	authn.Register("alice", "alicepw")
	check(cat.AddUser(types.User{Name: "alice", Domain: "sdsc"}))
	check(cat.MkColl("/shared", "admin"))
	check(cat.SetACL("/shared", "alice", acl.Write))

	s1 := server.New(sdsc, authn, server.Proxy)
	s2 := server.New(caltech, authn, server.Proxy)
	addr1, err := s1.Listen("127.0.0.1:0")
	check(err)
	addr2, err := s2.Listen("127.0.0.1:0")
	check(err)
	defer s1.Close()
	defer s2.Close()
	const zoneSecret = "npaci-zone-secret"
	s1.AddPeer("srb-caltech", addr2, zoneSecret)
	s2.AddPeer("srb-sdsc", addr1, zoneSecret)
	fmt.Printf("federation up: srb-sdsc@%s srb-caltech@%s\n", addr1, addr2)

	// Alice connects to her local SDSC server only.
	cl, err := client.Dial(addr1, "alice", "alicepw")
	check(err)
	defer cl.Close()
	fmt.Printf("alice connected to %s\n", cl.Server())

	// She stores data onto the Caltech archive without ever connecting
	// there: the ingest proxies to the owning server.
	payload := workload.NewGen(42).Bytes(1 << 20)
	o, err := cl.Put("/shared/survey.dat", payload, client.PutOpts{Resource: "hpss-caltech"})
	check(err)
	fmt.Printf("stored %s on %s via %s (location transparency)\n",
		o.Path(), o.Replicas[0].Resource, cl.Server())

	// Reading it back proxies the bytes from Caltech through SDSC.
	data, err := cl.Get("/shared/survey.dat")
	check(err)
	fmt.Printf("read back %d bytes, intact=%v, still connected to %s\n",
		len(data), bytes.Equal(data, payload), cl.Server())

	// Replicate to the local site for fast access and fault tolerance.
	rep, err := cl.Replicate("/shared/survey.dat", "unix-sdsc")
	check(err)
	fmt.Printf("replica %d created on %s (cross-site replication)\n", rep.Number, rep.Resource)

	// Caltech goes dark; the name keeps resolving.
	check(cat.SetResourceOnline("hpss-caltech", false))
	data, err = cl.Get("/shared/survey.dat")
	check(err)
	fmt.Printf("caltech offline: read served from local replica (%d bytes)\n", len(data))
	check(cat.SetResourceOnline("hpss-caltech", true))

	// Parallel bulk transfer: four concurrent streams.
	data, err = cl.ParallelGet("/shared/survey.dat", 4)
	check(err)
	fmt.Printf("parallel get over 4 streams: %d bytes, intact=%v\n",
		len(data), bytes.Equal(data, payload))

	// The same query interface works over the wire.
	hits, err := cl.Query(mcat.Query{Scope: "/shared",
		Conds: []mcat.Condition{{Attr: "sys:name", Op: "like", Value: "survey%"}}})
	check(err)
	fmt.Printf("wire query found %d object(s)\n", len(hits))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
