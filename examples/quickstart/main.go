// Quickstart: the smallest useful data grid. An in-process broker with
// one storage resource; create a collection, ingest a file with
// metadata, read it back, annotate it, and find it again by query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

func main() {
	// The MCAT catalog is the single source of truth; the broker
	// enforces SRB semantics over it.
	cat := mcat.New("admin", "demo")
	broker := core.New(cat, "srb1")

	// One physical resource backed by an in-memory store. Real
	// deployments use posixfs (a directory) or archivefs (a simulated
	// tape archive).
	check(broker.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New()))

	// A user and her home collection.
	check(cat.AddUser(types.User{Name: "alice", Domain: "demo"}))
	check(cat.MkColl("/home", "admin"))
	check(cat.MkColl("/home/alice", "alice"))

	// Ingest a file with user metadata attached at ingestion time.
	obj, err := broker.Ingest("alice", core.IngestOpts{
		Path:     "/home/alice/notes.txt",
		Data:     []byte("The SRB brokers storage so clients do not have to."),
		Resource: "disk1",
		DataType: "ascii text",
		Meta: []types.AVU{
			{Name: "topic", Value: "data grids"},
			{Name: "year", Value: "2002"},
		},
	})
	check(err)
	fmt.Printf("ingested %s (%d bytes, object id %d)\n", obj.Path(), obj.Size, obj.ID)

	// Read it back through the logical name.
	data, err := broker.Get("alice", "/home/alice/notes.txt")
	check(err)
	fmt.Printf("contents: %s\n", data)

	// Any reader may annotate (the paper's commentary metadata).
	check(broker.Annotate("alice", "/home/alice/notes.txt", types.Annotation{
		Kind: "comment", Text: "worth keeping",
	}))

	// Discover by attribute, not by name: the MCAT query engine.
	hits, err := broker.Query("alice", mcat.Query{
		Scope: "/home",
		Conds: []mcat.Condition{
			{Attr: "topic", Op: "=", Value: "data grids"},
			{Attr: "year", Op: ">=", Value: "2000"},
		},
		Select: []string{"sys:size", "topic"},
	})
	check(err)
	for _, h := range hits {
		fmt.Printf("query hit: %s  size=%v topic=%v\n", h.Path, h.Values["sys:size"], h.Values["topic"])
	}

	// System metadata view.
	sys, err := broker.GetMeta("alice", "/home/alice/notes.txt", types.MetaSystem)
	check(err)
	fmt.Println("system metadata:")
	for _, a := range sys {
		fmt.Printf("  %-14s %s\n", a.Name, a.Value)
	}

	// Everything was audited.
	fmt.Printf("audit records so far: %d\n", cat.Audit.Len())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
