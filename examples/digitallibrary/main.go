// Digital library: a scaled-down 2-Micron All Sky Survey collection
// (the paper's 10 TB / 5-million-file exemplar). Small FITS images are
// aggregated into containers on a simulated tape archive, described
// with Dublin Core and extracted header metadata, and discovered
// through the query interface. A registered SQL object renders a
// survey report with the built-in HTMLREL template.
//
//	go run ./examples/digitallibrary
package main

import (
	"fmt"
	"log"
	"strings"

	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/storage/archivefs"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
	"gosrb/internal/workload"
	"time"
)

func main() {
	cat := mcat.New("admin", "sdsc")
	broker := core.New(cat, "srb1")

	// Resources: a disk cache, a tape archive (HPSS stand-in, 20 ms
	// stage latency) and a database for the survey catalog tables.
	check(broker.AddPhysicalResource("admin", "cache", types.ClassCache, "memfs", memfs.New()))
	arch := archivefs.New(archivefs.Config{StageLatency: 20 * time.Millisecond})
	check(broker.AddPhysicalResource("admin", "hpss", types.ClassArchive, "archivefs", arch))
	db := dbfs.New()
	check(broker.AddPhysicalResource("admin", "dblib", types.ClassDatabase, "dbfs", db))

	check(cat.AddUser(types.User{Name: "curator", Domain: "sdsc"}))
	check(cat.MkColl("/2mass", "curator"))

	// The curator requires survey metadata on everything ingested.
	check(cat.SetStructural("/2mass", types.StructuralAttr{
		Name: "survey", Mandatory: true, Comment: "source survey name",
	}))

	// Containers aggregate the small images for the archive (paper §2).
	_, err := broker.CreateContainer("curator", "/2mass/container-0", "hpss")
	check(err)

	// Bulk-ingest a scaled-down plate of images.
	gen := workload.NewGen(2002)
	specs := gen.SkySurvey("/2mass", 200, 4)
	for i := 0; i < 4; i++ {
		check(cat.MkColl(fmt.Sprintf("/2mass/plate%03d", i), "curator"))
	}
	for _, s := range specs {
		header := gen.FITSHeader(s)
		if _, err := broker.Ingest("curator", core.IngestOpts{
			Path:      s.Path(),
			Data:      header,
			Container: "/2mass/container-0",
			DataType:  "fits image",
			Meta:      s.Meta,
		}); err != nil {
			log.Fatalf("ingest %s: %v", s.Path(), err)
		}
	}
	fmt.Printf("ingested %d images into /2mass (container-aggregated on hpss)\n", len(specs))

	// Dublin Core on the collection; FITS-card extraction on a sample.
	for _, avu := range workload.DublinCore(
		"2MASS image library (demo)", "IPAC / UMass", "infrared astronomy",
		"Scaled-down Two Micron All Sky Survey image collection") {
		check(cat.AddMeta("/2mass", types.MetaType, avu))
	}
	sample := specs[0].Path()
	n, err := broker.ExtractMeta("curator", sample, "fits-cards", "")
	check(err)
	fmt.Printf("extracted %d header triplets from %s\n", n, sample)

	// Discovery: conjunctive attribute queries across the hierarchy.
	hits, err := broker.Query("curator", mcat.Query{
		Scope: "/2mass",
		Conds: []mcat.Condition{
			{Attr: "survey", Op: "=", Value: "2mass"},
			{Attr: "band", Op: "=", Value: "J"},
			{Attr: "mag", Op: "<", Value: "8"},
		},
		Select: []string{"mag", "band"},
	})
	check(err)
	fmt.Printf("bright J-band 2MASS images: %d\n", len(hits))
	for i, h := range hits {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s mag=%v\n", h.Path, h.Values["mag"])
	}

	// A registered SQL object over the survey database: executed at
	// retrieval time, rendered by the HTMLREL template (paper §5).
	_, err = db.Database().Exec("CREATE TABLE plates (plate, images, seeing)")
	check(err)
	for i := 0; i < 4; i++ {
		_, err = db.Database().Exec(fmt.Sprintf(
			"INSERT INTO plates VALUES ('plate%03d', %d, %0.1f)", i, 50, 1.0+float64(i)/10))
		check(err)
	}
	_, err = broker.RegisterSQL("curator", "/2mass/plate-report", types.SQLSpec{
		Resource: "dblib",
		Query:    "SELECT plate, images, seeing FROM plates ORDER BY plate",
		Template: "HTMLREL",
	})
	check(err)
	report, err := broker.Get("curator", "/2mass/plate-report")
	check(err)
	fmt.Printf("plate report (first line): %s\n", strings.SplitN(string(report), "\n", 2)[0])

	// Archive behaviour: the container segment staged once serves every
	// member without further tape mounts.
	before := arch.Stats()
	for _, s := range specs[:20] {
		if _, err := broker.Get("curator", s.Path()); err != nil {
			log.Fatal(err)
		}
	}
	after := arch.Stats()
	fmt.Printf("20 member reads: %d tape stages, %d staging-cache hits\n",
		after.Stages-before.Stages, after.CacheHits-before.CacheHits)

	st := cat.Stats()
	fmt.Printf("library: %d objects, %d collections, %d metadata triplets\n",
		st.Objects, st.Collections, st.MetaEntries)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
