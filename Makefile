# gosrb build/check entry points. `make check` is the gate every PR
# must keep green: vet, full build, and the test suite under the race
# detector (the telemetry registry is exercised concurrently, so -race
# is load-bearing, not decorative).

GO ?= go

.PHONY: all check vet build test race test-faults test-repair bench bench-obs bench-obs-gate bench-repair clean

all: check

check: vet build race test-faults test-repair bench-obs-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection sweep: the resilience and faultnet suites plus the
# chaos end-to-end, repeated under -race to prove the fixed-seed fault
# schedule replays deterministically.
test-faults:
	$(GO) test -race -count=1 ./internal/resilience/ ./internal/faultnet/
	$(GO) test -race -count=10 -run 'TestChaos' ./cmd/srbd/

# Repair-engine sweep: the engine unit suite, the journaled queue and
# replication-policy catalog tests, and the restart-recovery end-to-end
# (the async chaos e2e rides test-faults' 10x TestChaos loop).
test-repair:
	$(GO) test -race -count=1 ./internal/repair/ ./internal/mcat/
	$(GO) test -race -count=1 -run 'TestRepairQueueRestartRecovery|TestHealthzWedgedRepair' ./cmd/srbd/

# Full benchmark sweep (experiments E1–E10 plus the wire and broker
# concurrency benches).
bench:
	$(GO) test -bench . -benchtime 200ms -run '^$$' .

# Instrumentation-overhead report: measures broker Put/Get with
# telemetry on vs SetMetrics(nil) and writes BENCH_obs.json so the
# overhead is tracked from this PR onward.
bench-obs:
	BENCH_OBS=1 $(GO) test -run TestObsOverheadReport -v .

# Regression fence on the committed baseline: fails when the measured
# instrumentation overhead exceeds BENCH_obs.json's overhead_pct by
# more than 5 percentage points.
bench-obs-gate:
	BENCH_OBS_GATE=1 $(GO) test -run TestObsOverheadGate -v .

# Async-replication report: measures sync vs async:1 ingest onto a
# 3-member logical resource and writes BENCH_repair.json (the async
# write path must clear 1.5x over the synchronous fan-out).
bench-repair:
	BENCH_REPAIR=1 $(GO) test -run TestRepairBenchReport -v .

clean:
	rm -f BENCH_obs.json BENCH_repair.json
	$(GO) clean -testcache
