# gosrb build/check entry points. `make check` is the gate every PR
# must keep green: vet, full build, and the test suite under the race
# detector (the telemetry registry is exercised concurrently, so -race
# is load-bearing, not decorative).

GO ?= go

# Build stamp: surfaces on /healthz, `srb stat` and the srb_build_info
# Prometheus gauge. Override with `make VERSION=v1.2.3 build`.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X gosrb/internal/obs.Version=$(VERSION)"

.PHONY: all check lint vet build test race test-faults test-repair test-wire test-phases test-mcat test-heat bench bench-obs bench-obs-gate bench-repair bench-grid bench-grid-gate bench-flight bench-flight-gate bench-wire bench-wire-gate bench-phases bench-phases-gate bench-mcat bench-mcat-gate bench-heat bench-heat-gate clean

all: check

check: lint build race test-faults test-repair test-wire test-phases test-mcat test-heat bench-obs-gate bench-grid-gate bench-flight-gate bench-wire-gate bench-phases-gate bench-mcat-gate bench-heat-gate

# Static analysis: go vet always, then a pinned staticcheck. The pin
# keeps every checkout on the same analyzer; when the binary is absent
# it is installed into the repo-local bin/. The install is best-effort:
# an offline build image prints a warning and check proceeds on go vet
# alone rather than failing on a network error.
STATICCHECK_VERSION ?= 2024.1.1
STATICCHECK := $(CURDIR)/bin/staticcheck

lint: vet
	@if [ ! -x "$(STATICCHECK)" ] && command -v staticcheck >/dev/null 2>&1; then \
		cp "$$(command -v staticcheck)" "$(STATICCHECK)" 2>/dev/null || true; \
	fi; \
	if [ ! -x "$(STATICCHECK)" ]; then \
		echo "installing staticcheck@$(STATICCHECK_VERSION) into bin/"; \
		mkdir -p "$(CURDIR)/bin"; \
		GOBIN=$(CURDIR)/bin $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) \
			|| echo "staticcheck install failed (offline build image?); continuing on go vet"; \
	fi; \
	if [ -x "$(STATICCHECK)" ]; then \
		echo staticcheck ./...; "$(STATICCHECK)" ./...; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection sweep: the resilience and faultnet suites plus the
# chaos end-to-end, repeated under -race to prove the fixed-seed fault
# schedule replays deterministically.
test-faults:
	$(GO) test -race -count=1 ./internal/resilience/ ./internal/faultnet/
	$(GO) test -race -count=10 -run 'TestChaos' ./cmd/srbd/

# Repair-engine sweep: the engine unit suite, the journaled queue and
# replication-policy catalog tests, and the restart-recovery end-to-end
# (the async chaos e2e rides test-faults' 10x TestChaos loop).
test-repair:
	$(GO) test -race -count=1 ./internal/repair/ ./internal/mcat/
	$(GO) test -race -count=1 -run 'TestRepairQueueRestartRecovery|TestHealthzWedgedRepair' ./cmd/srbd/

# Wire-protocol sweep: the mux/pool race suite and the batch-semantics
# tests, repeated under -race — the checkout/checkin and out-of-order
# demux races only surface across many interleavings. (The pipelined
# chaos e2e rides test-faults' 10x TestChaos loop.)
test-wire:
	$(GO) test -race -count=10 -run 'TestMux|TestPool' ./internal/wire/
	$(GO) test -race -count=10 -run 'TestBatcher' ./internal/client/
	$(GO) test -race -count=1 -run 'TestBulk|TestMultiGet' ./internal/server/

# Exemplar-integrity sweep: the bucket→trace-ID retention race only
# surfaces across many interleavings; 10x under -race proves tail
# exemplars never tear (a trace ID paired with another observation's
# duration) and that threshold filtering stays exact. (The pool
# checkout-wait telemetry races ride test-wire's TestPool matcher; the
# phase-attribution chaos e2e rides test-faults' 10x TestChaos loop.)
test-phases:
	$(GO) test -race -count=10 -run 'TestExemplar' ./internal/obs/

# Sharded-catalog sweep: ring routing, scatter-gather, replication and
# reshard persistence, repeated under -race — the scatter fan-out, the
# journal-observer replication feed, and the deadline-partial path are
# all cross-goroutine. (The shard failover chaos e2e rides test-faults'
# 10x TestChaos loop.)
test-mcat:
	$(GO) test -race -count=10 ./internal/mcat/shard/

# Heat-observatory sweep: the top-K sketch (Zipf recall, decay,
# concurrent writers, rollup fold, persistence) and the replication-lag
# gauge/advisor suites, repeated under -race — the sketch is written
# from every request goroutine while snapshots, folds and decays run
# concurrently, so tears only surface across many interleavings. (The
# heat chaos e2e rides test-faults' 10x TestChaos loop.)
test-heat:
	$(GO) test -race -count=10 -run 'TestHeat|TestSLOReplag' ./internal/obs/
	$(GO) test -race -count=10 -run 'TestReplagGauges|TestReplogFallback|TestAdvisor' ./internal/mcat/shard/

# Full benchmark sweep (experiments E1–E10 plus the wire and broker
# concurrency benches).
bench:
	$(GO) test -bench . -benchtime 200ms -run '^$$' .

# Instrumentation-overhead report: measures broker Put/Get with
# telemetry on vs SetMetrics(nil) and writes BENCH_obs.json so the
# overhead is tracked from this PR onward.
bench-obs:
	BENCH_OBS=1 $(GO) test -run TestObsOverheadReport -v .

# Regression fence on the committed baseline: fails when the measured
# instrumentation overhead exceeds BENCH_obs.json's overhead_pct by
# more than 5 percentage points.
bench-obs-gate:
	BENCH_OBS_GATE=1 $(GO) test -run TestObsOverheadGate -v .

# Async-replication report: measures sync vs async:1 ingest onto a
# 3-member logical resource and writes BENCH_repair.json (the async
# write path must clear 1.5x over the synchronous fan-out).
bench-repair:
	BENCH_REPAIR=1 $(GO) test -run TestRepairBenchReport -v .

# Grid-console report: measures broker Get latency under an aggressive
# rollup-capture/window-query polling loop vs idle telemetry and writes
# BENCH_grid.json — the cost ceiling of windowed stats on the hot path.
bench-grid:
	BENCH_GRID=1 $(GO) test -run TestGridBenchReport -v .

# Regression fence on the committed baseline: fails when the measured
# console-polling overhead exceeds BENCH_grid.json's overhead_pct by
# more than 5 percentage points.
bench-grid-gate:
	BENCH_GRID_GATE=1 $(GO) test -run TestGridBenchGate -v .

# Flight-recorder report: measures broker Get latency under a 2ms
# rollup-capture/journal-flush loop vs idle telemetry and writes
# BENCH_flight.json — the cost ceiling of durable telemetry on the hot
# path.
bench-flight:
	BENCH_FLIGHT=1 $(GO) test -run TestFlightBenchReport -v .

# Regression fence on the committed baseline: fails when the measured
# journal-flush overhead exceeds BENCH_flight.json's overhead_pct by
# more than 5 percentage points.
bench-flight-gate:
	BENCH_FLIGHT_GATE=1 $(GO) test -run TestFlightBenchGate -v .

# Wire-throughput report: measures serial vs pipelined vs batched
# small-op throughput over a 5ms-RTT simnet link and writes
# BENCH_wire.json.
bench-wire:
	BENCH_WIRE=1 $(GO) test -run TestWireBenchReport -v .

# Throughput floor: pipelined and batched small-op throughput must both
# clear 3x serial at the 5ms RTT.
bench-wire-gate:
	BENCH_WIRE_GATE=1 $(GO) test -run TestWireBenchGate -v .

# Phase-decomposition report: measures a traced, phase-folded broker
# get against the plain instrumented get (both cells mint a span — that
# cost pre-dates the decomposition) and writes BENCH_phases.json.
bench-phases:
	BENCH_PHASES=1 $(GO) test -run TestPhasesBenchReport -v .

# Absolute instrumentation budget: the phase stamps plus the histogram
# fold may cost at most 5% per request. Unlike the drift fences this
# bound never ratchets — the decomposition is always on in production.
bench-phases-gate:
	BENCH_PHASES_GATE=1 $(GO) test -run TestPhasesBenchGate -v .

# Sharded-catalog report: mixed register / deep-scoped query
# throughput on a monolithic catalog vs the 4-shard router and writes
# BENCH_mcat.json — the partitioning payoff is a 1/N candidate scan,
# not parallelism, so it holds on one core.
bench-mcat:
	BENCH_MCAT=1 $(GO) test -run TestMcatBenchReport -v .

# Partitioning floor: the 4-shard catalog must clear 2x monolithic
# throughput on the mixed workload.
bench-mcat-gate:
	BENCH_MCAT_GATE=1 $(GO) test -run TestMcatBenchGate -v .

# Heat-tracking report: measures a heat-tracked broker get against the
# same instrumented get with the heat tables detached and writes
# BENCH_heat.json.
bench-heat:
	BENCH_HEAT=1 $(GO) test -run TestHeatBenchReport -v .

# Absolute instrumentation budget: the hot-key sketch update plus the
# hot-object record may cost at most 5% per request. Like the phase
# fence this bound never ratchets — heat tracking is always on in
# production.
bench-heat-gate:
	BENCH_HEAT_GATE=1 $(GO) test -run TestHeatBenchGate -v .

clean:
	rm -f BENCH_obs.json BENCH_repair.json BENCH_grid.json BENCH_flight.json BENCH_wire.json BENCH_phases.json BENCH_mcat.json BENCH_heat.json
	rm -rf bin
	$(GO) clean -testcache
