# gosrb build/check entry points. `make check` is the gate every PR
# must keep green: vet, full build, and the test suite under the race
# detector (the telemetry registry is exercised concurrently, so -race
# is load-bearing, not decorative).

GO ?= go

.PHONY: all check vet build test race test-faults bench bench-obs bench-obs-gate clean

all: check

check: vet build race test-faults bench-obs-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection sweep: the resilience and faultnet suites plus the
# chaos end-to-end, repeated under -race to prove the fixed-seed fault
# schedule replays deterministically.
test-faults:
	$(GO) test -race -count=1 ./internal/resilience/ ./internal/faultnet/
	$(GO) test -race -count=10 -run 'TestChaos' ./cmd/srbd/

# Full benchmark sweep (experiments E1–E10 plus the wire and broker
# concurrency benches).
bench:
	$(GO) test -bench . -benchtime 200ms -run '^$$' .

# Instrumentation-overhead report: measures broker Put/Get with
# telemetry on vs SetMetrics(nil) and writes BENCH_obs.json so the
# overhead is tracked from this PR onward.
bench-obs:
	BENCH_OBS=1 $(GO) test -run TestObsOverheadReport -v .

# Regression fence on the committed baseline: fails when the measured
# instrumentation overhead exceeds BENCH_obs.json's overhead_pct by
# more than 5 percentage points.
bench-obs-gate:
	BENCH_OBS_GATE=1 $(GO) test -run TestObsOverheadGate -v .

clean:
	rm -f BENCH_obs.json
	$(GO) clean -testcache
