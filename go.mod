module gosrb

go 1.22
